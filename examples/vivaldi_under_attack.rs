//! A full Vivaldi system under the colluding isolation attack, with and
//! without the paper's detection protocol.
//!
//! Builds a 200-node PlanetLab-like deployment, converges it cleanly,
//! calibrates Surveyors, then unleashes 30% colluding attackers that try
//! to repulse every node away from a target's exclusion zone — first
//! with detection off (watch the space distort), then with the Kalman
//! innovation test armed (watch it hold).
//!
//! Run with: `cargo run --release --example vivaldi_under_attack`

// Demo binary: panicking on an impossible state is the idiom here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use ices::attack::VivaldiIsolationAttack;
use ices::core::EmConfig;
use ices::sim::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use ices::sim::VivaldiSimulation;

fn scenario(detection: bool) -> ScenarioConfig {
    ScenarioConfig {
        seed: 2007,
        topology: TopologyKind::small_planetlab(200),
        surveyors: SurveyorPlacement::Random { fraction: 0.08 },
        malicious_fraction: 0.30,
        alpha: 0.05,
        detection,
        clean_cycles: 12,
        attack_cycles: 8,
        embed_against_surveyors_only: false,
    }
}

fn run(detection: bool) -> (f64, f64, Option<ices::stats::Confusion>) {
    let mut sim = VivaldiSimulation::new(scenario(detection));
    sim.run_clean(12);
    let clean_median = sim.accuracy_report(30).median();

    if detection {
        sim.calibrate_surveyors(&EmConfig::default());
        sim.arm_detection();
    }
    let target = sim.normal_nodes()[0];
    let radius = sim.network().median_base_rtt() / 2.0;
    let attack = VivaldiIsolationAttack::new(
        sim.malicious().iter().copied(),
        sim.coordinate(target).clone(),
        radius,
        99,
    );
    sim.run(8, &attack, false);
    let attacked_median = sim.accuracy_report(30).median();
    let confusion = detection.then(|| sim.report().confusion);
    (clean_median, attacked_median, confusion)
}

fn main() {
    println!("Vivaldi, 200 nodes, 8% Surveyors, 30% colluding isolation attackers");
    println!();

    let (clean, attacked, _) = run(false);
    println!("detection OFF:");
    println!("  median relative error, clean phase:  {clean:.4}");
    println!("  median relative error, under attack: {attacked:.4}");
    println!("  → the colluders distort the space unchecked");
    println!();

    let (clean, attacked, confusion) = run(true);
    let c = confusion.expect("detection was on");
    println!("detection ON (α = 5%):");
    println!("  median relative error, clean phase:  {clean:.4}");
    println!("  median relative error, under attack: {attacked:.4}");
    println!(
        "  test outcomes: TPR {:.3}, FPR {:.3}, FNR {:.3}, TPTF {:.3}",
        c.tpr(),
        c.fpr(),
        c.fnr(),
        c.tptf()
    );
    println!(
        "  ({} malicious and {} honest embedding steps vetted)",
        c.positives(),
        c.negatives()
    );
    println!();
    println!("with the innovation test in front of every honest node, malicious");
    println!("steps are aborted before they can move anyone's coordinate.");
}
