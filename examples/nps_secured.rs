//! NPS under the colluding reference-point attack with anti-detection.
//!
//! Builds an NPS hierarchy (landmarks, reference points, 8-d space) on a
//! 200-node deployment, lets conspirators work their way into
//! reference-point slots, and compares the system with NPS's built-in
//! sensitivity filter alone against the same system additionally
//! protected by the paper's Kalman detection.
//!
//! The attackers use the anti-detection trick of Kaafar et al. [11]:
//! they tamper probe RTTs so their coordinate lies stay *mutually
//! consistent*, which defeats NPS's fit-error filter — but not the
//! innovation test, which tracks the victim's relative-error history.
//!
//! Run with: `cargo run --release --example nps_secured`

// Demo binary: panicking on an impossible state is the idiom here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use ices::attack::NpsCollusionAttack;
use ices::core::EmConfig;
use ices::sim::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use ices::sim::NpsSimulation;

fn scenario(detection: bool) -> ScenarioConfig {
    ScenarioConfig {
        seed: 2007,
        topology: TopologyKind::small_planetlab(200),
        surveyors: SurveyorPlacement::Random { fraction: 0.10 },
        malicious_fraction: 0.30,
        alpha: 0.05,
        detection,
        clean_cycles: 8,
        attack_cycles: 6,
        embed_against_surveyors_only: false,
    }
}

fn run(detection: bool) -> (f64, f64, Option<ices::stats::Confusion>, bool) {
    let mut sim = NpsSimulation::new(scenario(detection));
    sim.run_clean(8);
    let clean_median = sim.accuracy_report(30).median();

    if detection {
        sim.calibrate_surveyors(&EmConfig::default());
        sim.arm_detection();
    }
    let mut attack = NpsCollusionAttack::new(
        sim.malicious().iter().copied(),
        8,
        3.0, // drag strength: each malicious sample demands a 3-RTT move
        0.5,
        99,
    );
    attack.observe_hierarchy(&sim.serving_map(), &sim.layer_members());
    let active = attack.is_active();
    sim.run(6, &attack, false);
    let attacked_median = sim.accuracy_report(30).median();
    let confusion = detection.then(|| sim.report().confusion);
    (clean_median, attacked_median, confusion, active)
}

fn main() {
    println!("NPS, 200 nodes, 4 layers, 20 landmarks, 30% conspirators");
    println!("(NPS's built-in sensitivity-4 filter is ON in both runs, as in the paper)");
    println!();

    let (clean, attacked, _, active) = run(false);
    println!("Kalman detection OFF:");
    println!("  conspiracy activated: {active}");
    println!("  median relative error, clean phase:  {clean:.4}");
    println!("  median relative error, under attack: {attacked:.4}");
    println!("  → the anti-detection lies slip past NPS's own filter");
    println!();

    let (clean, attacked, confusion, active) = run(true);
    let c = confusion.expect("detection was on");
    println!("Kalman detection ON (α = 5%):");
    println!("  conspiracy activated: {active}");
    println!("  median relative error, clean phase:  {clean:.4}");
    println!("  median relative error, under attack: {attacked:.4}");
    println!(
        "  test outcomes: TPR {:.3}, FPR {:.3}, FNR {:.3}",
        c.tpr(),
        c.fpr(),
        c.fnr()
    );
    println!(
        "  ({} malicious and {} honest embedding steps vetted)",
        c.positives(),
        c.negatives()
    );
}
