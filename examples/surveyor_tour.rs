//! A tour of the Surveyor infrastructure (§3.3 and §4.2 of the paper).
//!
//! Shows the full Surveyor life cycle on a clean King-like system:
//! Surveyors embed exclusively among themselves, calibrate their filters
//! by EM, publish parameters through the registrar; a joining node
//! probes a few random Surveyors, adopts the closest one's filter, and
//! later refreshes it by coordinate proximity. Along the way we verify
//! the paper's locality claim: nearby Surveyors' filters predict a
//! node's relative-error process better than distant ones.
//!
//! Run with: `cargo run --release --example surveyor_tour`

use ices::core::EmConfig;
use ices::sim::replay::prediction_errors;
use ices::sim::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use ices::sim::VivaldiSimulation;

fn main() {
    let config = ScenarioConfig {
        seed: 7,
        topology: TopologyKind::small_king(300),
        surveyors: SurveyorPlacement::Random { fraction: 0.08 },
        malicious_fraction: 0.0,
        alpha: 0.05,
        detection: true,
        clean_cycles: 12,
        attack_cycles: 0,
        embed_against_surveyors_only: false,
    };
    let mut sim = VivaldiSimulation::new(config);
    println!(
        "300-node King-like system; {} Surveyors chosen at random",
        sim.surveyors().len()
    );

    // Phase 1: clean convergence. Surveyors position using each other
    // exclusively, so what they observe is the system's normal behavior.
    sim.run_clean(12);
    println!("clean convergence done; calibrating every Surveyor by EM…");
    sim.calibrate_surveyors(&EmConfig::default());
    for info in sim.registry().all().iter().take(4) {
        let p = info.params;
        println!(
            "  surveyor {:>3}: β={:+.3} v_W={:.5} v_U={:.5} w̄={:+.4}",
            info.id, p.beta, p.v_w, p.v_u, p.w_bar
        );
    }
    println!("  … ({} registered in total)", sim.registry().len());
    println!();

    // A joining node adopts the closest of a few random Surveyors
    // (arm_detection runs exactly that join protocol for every node).
    sim.arm_detection();
    let node = sim.normal_nodes()[0];
    println!("node {node} joined; filter adopted from a nearby Surveyor");

    // The locality claim: replay this node's trace under every
    // Surveyor's parameters and compare prediction quality vs RTT.
    sim.clear_traces();
    sim.run_clean(6);
    let trace = sim.traces()[node].clone();
    let mut rows: Vec<(f64, f64, usize)> = sim
        .registry()
        .all()
        .iter()
        .map(|info| {
            let errors = prediction_errors(info.params, &trace);
            let mean = errors[10..].iter().sum::<f64>() / (errors.len() - 10) as f64;
            (sim.network().base_rtt(node, info.id), mean, info.id)
        })
        .collect();
    rows.sort_by(|a, b| a.0.total_cmp(&b.0));
    println!();
    println!("prediction quality of every Surveyor's filter for node {node}:");
    println!(
        "{:>10}  {:>10}  {:>22}",
        "surveyor", "RTT (ms)", "mean prediction error"
    );
    for (rtt, err, id) in rows.iter().take(6) {
        println!("{id:>10}  {rtt:>10.1}  {err:>22.4}");
    }
    println!("{:>10}  {:>10}  {:>22}", "…", "", "");
    for (rtt, err, id) in rows.iter().rev().take(3).collect::<Vec<_>>().iter().rev() {
        println!("{id:>10}  {rtt:>10.1}  {err:>22.4}");
    }
    // The locality trend is a population property (Fig 7), so average
    // the closest-vs-farthest comparison over many nodes rather than
    // trusting a single node's luck.
    let mut near_sum = 0.0;
    let mut far_sum = 0.0;
    let mut counted = 0usize;
    for &n in sim.normal_nodes().iter().take(40) {
        let trace = &sim.traces()[n];
        if trace.len() < 60 {
            continue;
        }
        let mut r: Vec<(f64, f64)> = sim
            .registry()
            .all()
            .iter()
            .map(|info| {
                let errors = prediction_errors(info.params, trace);
                let mean = errors[10..].iter().sum::<f64>() / (errors.len() - 10) as f64;
                (sim.network().base_rtt(n, info.id), mean)
            })
            .collect();
        r.sort_by(|a, b| a.0.total_cmp(&b.0));
        let k = 5.min(r.len() / 2);
        near_sum += r.iter().take(k).map(|x| x.1).sum::<f64>() / k as f64;
        far_sum += r.iter().rev().take(k).map(|x| x.1).sum::<f64>() / k as f64;
        counted += 1;
    }
    println!();
    println!(
        "averaged over {counted} nodes — mean prediction error using the 5 closest \
         Surveyors: {:.4}; using the 5 farthest: {:.4}",
        near_sum / counted as f64,
        far_sum / counted as f64
    );
    println!("(the paper's Fig 7: locality improves representativeness)");
}
