//! Quickstart: calibrate a Kalman filter on a clean relative-error trace
//! and use the innovation test to vet embedding steps.
//!
//! This walks the paper's pipeline at its smallest useful granularity —
//! no network simulation, just the model, the calibration, and the test:
//!
//! 1. obtain a clean trace of measured relative errors `D_n`;
//! 2. calibrate θ = (β, v_W, v_U, w̄, w₀, p₀) by EM (§2.2);
//! 3. run the filter and flag steps whose innovation exceeds
//!    `√v_η · Q⁻¹(α/2)` (§4.1).
//!
//! Run with: `cargo run --example quickstart`

use ices::core::{calibrate, Detector, EmConfig, StateSpaceParams};
use ices::stats::rng::stream_rng;

fn main() {
    // ── 1. A clean trace ────────────────────────────────────────────
    // In the deployed system this trace is a Surveyor's own embedding
    // history. Here we draw it from a known model so we can check the
    // calibration against ground truth.
    let truth = StateSpaceParams {
        beta: 0.85,
        v_w: 0.001,
        v_u: 0.004,
        w_bar: 0.02,
        w0: 0.6,
        p0: 0.05,
    };
    let mut rng = stream_rng(42, 0);
    let trace = truth.simulate(4000, &mut rng);
    println!("collected {} clean relative-error samples", trace.len());
    println!(
        "  stationary mean of the truth model: {:.4}",
        truth.stationary_mean()
    );

    // ── 2. EM calibration ───────────────────────────────────────────
    let outcome = calibrate(
        &trace,
        StateSpaceParams::em_initial_guess(),
        &EmConfig::default(),
    );
    println!(
        "EM converged after {} iterations (paper tolerance: all θ deltas < 0.02)",
        outcome.iterations
    );
    let p = outcome.params;
    println!(
        "  calibrated: β={:.3} v_W={:.5} v_U={:.5} w̄={:.4} w₀={:.3} p₀={:.4}",
        p.beta, p.v_w, p.v_u, p.w_bar, p.w0, p.p0
    );
    println!(
        "  implied stationary mean {:.4} (truth {:.4})",
        p.stationary_mean(),
        truth.stationary_mean()
    );

    // ── 3. The detection test ───────────────────────────────────────
    // Warm the filter on clean traffic first — a node always embeds
    // honestly for a while before an attacker shows up, and a converged
    // filter is what makes sudden manipulation stand out.
    let warmup = truth.simulate(500, &mut rng);
    let fresh = truth.simulate(2000, &mut rng);

    let mut detector = Detector::new(p, 0.05);
    for &d in &warmup {
        detector.assess(d);
    }
    let mut flagged = 0;
    for &d in &fresh {
        if detector.assess(d).suspicious {
            flagged += 1;
        }
    }
    println!(
        "clean stream: {flagged}/{} steps flagged ({:.1}%, α = 5%)",
        fresh.len(),
        100.0 * flagged as f64 / fresh.len() as f64
    );

    // Now the attack begins: tampered probes shift the relative error by
    // +0.4 on every step. Because rejected observations are *discarded*
    // (they never update the filter), the filter cannot be dragged along
    // — the attacker stays outside the confidence interval forever.
    let mut caught = 0;
    for &d in &fresh {
        if detector.assess(d + 0.4).suspicious {
            caught += 1;
        }
    }
    println!(
        "tampered stream (+0.4 shift): {caught}/{} steps flagged ({:.1}%)",
        fresh.len(),
        100.0 * caught as f64 / fresh.len() as f64
    );
    println!();
    println!("the detector accepts clean embedding steps at roughly the 1 − α rate");
    println!("and rejects tampered ones almost always; discarding rejected samples");
    println!("is what keeps the filter from being frog-boiled toward the attacker.");
}
