#!/usr/bin/env bash
# Workspace determinism & panic-hygiene audit (see DESIGN.md
# "Determinism invariants & enforcement"). Exits nonzero on any
# unsuppressed finding; pass --json for machine-readable output.
#
# Usage: scripts/audit.sh [--json]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run -q -p ices-audit -- --workspace "$@"
