#!/usr/bin/env bash
# Workspace determinism & panic-hygiene audit (see DESIGN.md
# "Determinism invariants & enforcement" and "Determinism dataflow
# analysis"). Exits nonzero on any unsuppressed error finding.
#
# Usage: scripts/audit.sh [--json] [--strict-allows]
#                         [--baseline FILE | --write-baseline FILE]
#
#   --json                 machine-readable findings + allow inventory
#   --strict-allows        stale audit:allow comments become errors
#   --baseline FILE        downgrade findings grandfathered in FILE
#                          (one `file:RULE` key per line) to warnings
#   --write-baseline FILE  regenerate FILE from the current findings
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run -q -p ices-audit -- --workspace "$@"
