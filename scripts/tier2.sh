#!/usr/bin/env bash
# Tier-2 gate: the tier-1 commands plus the tick-engine throughput
# benchmark, so every change leaves a perf trajectory (BENCH_sim.json)
# behind it.
#
# Usage: scripts/tier2.sh [bench_tick args, e.g. --scale test]
set -euo pipefail
cd "$(dirname "$0")/.."

# Tier 1: the repo must build and its tests must pass.
cargo build --release
cargo test -q

# Static analysis: determinism & panic-hygiene invariants (also gated
# in tier-1 via tests/audit_clean.rs; run here with --json for the
# machine-readable allowlist inventory). --strict-allows turns stale
# audit:allow comments into failures, and the committed audit.baseline
# (empty unless a finding was explicitly grandfathered) means only
# findings *newer* than the baseline fail the gate.
scripts/audit.sh --json --strict-allows --baseline audit.baseline

# Lint gate: the [workspace.lints] policy (root Cargo.toml) must hold
# across every target; deny-level lints (dbg!, todo!, mem::forget,
# suspicious groupings) fail the build here.
cargo clippy --workspace --all-targets

# Pool protocol model: re-runs the handoff protocol of
# crates/par/src/pool.rs on loom's instrumented primitives across many
# seeded schedules (see crates/par/tests/loom_pool.rs). Separate
# RUSTFLAGS value, so this build does not share the default cache.
RUSTFLAGS="--cfg loom" cargo test -q -p ices-par --test loom_pool

# Unsafe-island validation under Miri when a Miri toolchain exists
# (the stock container ships none): the pool's lifetime-erased
# dispatch is exactly what its borrow tracking checks.
if cargo miri --version >/dev/null 2>&1; then
    cargo miri test -p ices-par --test miri_smoke
else
    echo "tier2: cargo-miri not installed; skipping the miri_smoke step" >&2
fi

# Observability smoke: run a small journaled secured-Vivaldi pipeline,
# then re-validate the emitted JSONL against the schema (obs_report
# exits nonzero on any violation).
cargo run -q --release -p ices-bench --bin obs_report -- --smoke target/obs_smoke.jsonl
cargo run -q --release -p ices-bench --bin obs_report -- --check target/obs_smoke.jsonl

# Adversary smoke: one cell per attack (Sybil / eclipse / slow drift)
# with the cross-verification defense off and on; exits nonzero unless
# the sybil swarm stays blatant, cross-verification recovers eclipse
# detection, and sub-threshold slow drift evades (the reported
# negative result).
cargo run -q --release -p ices-bench --bin adversary_sweep -- --smoke

# Fast-tier equivalence: the ICES_FAST reassociated tier must stay
# statistically indistinguishable from the exact tier (TPR/FPR deltas
# and the chaos-cell median-error band — see crates/bench/src/bin/
# fast_equiv.rs). Exits nonzero on any breach. Harness scale so the
# reassociated reductions actually engage (test-scale arrays fall
# through to the scalar tail and compare bit-identical).
cargo run -q --release -p ices-bench --bin fast_equiv -- --scale harness --no-json

# Service loopback smoke: an in-process coordinate daemon plus 10k
# simulated clients driven by loadgen over 127.0.0.1 (two UDP
# round-trips each: certified probe + detector-vetted claim; ~10%
# liars must be rejected on the wire). --gate exits nonzero on any
# decode error, timeout, or short run; the grep additionally gates
# that the p50/p99 latency percentiles were measured and reported.
cargo run -q --release -p ices-svc --bin loadgen -- --clients 10000 --gate \
  | tee target/loadgen_smoke.txt
grep -Eq 'p50 [0-9]+ us, p99 [0-9]+ us' target/loadgen_smoke.txt

# Tier 2: time the two-phase tick engine sequentially and at host
# parallelism, plus one faulty-network configuration per driver
# (10% probe loss + churn), the streamed-topology scale sweep
# (280 / 1740 / 50k nodes on the matrix-free King generator; set
# ICES_SCALE=xl to add the million-node construction smoke), the
# persistent-pool dispatch microbenchmark, and the NPS solver
# microbenchmark; rewrites BENCH_sim.json at the repo root and warns
# (non-fatally) if any configuration regressed beyond its budget
# against the committed baseline — 20% for paper-scale rows, 30% for
# the ≥50k sweep rows, threads=1 rows only across differently-sized
# hosts.
scripts/bench_check.sh "$@"
