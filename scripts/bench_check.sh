#!/usr/bin/env bash
# Perf-regression guard: re-run the tick-engine benchmark and compare
# the fresh numbers against the committed BENCH_sim.json baseline.
# A >20% throughput drop in any configuration prints a loud PERF
# WARNING but never fails the build — timings on shared hardware are
# advisory; the warning is the signal to investigate (or to re-record
# the baseline with rationale).
#
# Usage: scripts/bench_check.sh [bench_tick args, e.g. --scale test]
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="$(mktemp)"
trap 'rm -f "$baseline"' EXIT
if [[ -f BENCH_sim.json ]]; then
  cp BENCH_sim.json "$baseline"
fi

# Re-record BENCH_sim.json, then merge the service loadgen row into it
# (10k simulated clients against an in-process loopback daemon; --gate
# makes any decode error, timeout, or short run fatal — service
# correctness is a hard gate even though timings stay advisory),
# then compare everything with the saved baseline.
cargo run --release -p ices-bench --bin bench_tick -- "$@"
cargo run --release -p ices-svc --bin loadgen -- \
  --clients 10000 --gate --merge-bench BENCH_sim.json
cargo run --release -p ices-bench --bin bench_check -- "$baseline" BENCH_sim.json
