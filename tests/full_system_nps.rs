//! Integration: the complete NPS pipeline — hierarchy, simplex
//! positioning, the built-in sensitivity filter, and the Kalman
//! detection protocol under the colluding reference-point attack.

use ices::attack::NpsCollusionAttack;
use ices::core::EmConfig;
use ices::nps::Role;
use ices::sim::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use ices::sim::NpsSimulation;

fn scenario(seed: u64, malicious: f64, detection: bool) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        topology: TopologyKind::small_planetlab(120),
        surveyors: SurveyorPlacement::Random { fraction: 0.12 },
        malicious_fraction: malicious,
        alpha: 0.05,
        detection,
        clean_cycles: 6,
        attack_cycles: 4,
        embed_against_surveyors_only: false,
    }
}

fn build_attack(sim: &NpsSimulation, seed: u64) -> NpsCollusionAttack {
    let mut attack = NpsCollusionAttack::new(
        sim.malicious().iter().copied(),
        8,
        3.0,
        0.5,
        seed,
    );
    attack.observe_hierarchy(&sim.serving_map(), &sim.layer_members());
    attack
}

#[test]
fn hierarchy_and_roles_are_consistent_through_the_driver() {
    let sim = NpsSimulation::new(scenario(21, 0.3, true));
    let h = sim.hierarchy();
    // All landmarks are Surveyors; the serving map exposes exactly the
    // landmarks and reference points.
    for l in h.landmarks() {
        assert!(sim.surveyors().contains(&l));
    }
    let serving = sim.serving_map();
    for (&node, &layer) in &serving {
        assert_eq!(h.layer[node], layer);
        assert!(matches!(
            h.role[node],
            Role::Landmark | Role::ReferencePoint
        ));
    }
}

#[test]
fn conspiracy_activates_with_biased_rp_assignment() {
    let sim = NpsSimulation::new(scenario(22, 0.3, true));
    let attack = build_attack(&sim, 22);
    assert!(
        attack.is_active(),
        "at 30% malicious with RP-seeking conspirators, some layer must activate"
    );
    assert!(attack.victims().count() > 0);
}

#[test]
fn detection_catches_consistent_lies_nps_filter_misses() {
    let mut sim = NpsSimulation::new(scenario(23, 0.3, true));
    sim.run_clean(6);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.arm_detection();
    let attack = build_attack(&sim, 23);
    assert!(attack.is_active());
    sim.run(4, &attack, false);
    let c = &sim.report().confusion;
    assert!(c.positives() > 0, "the attack must have produced steps");
    // At this small test scale the calibration windows are short; the
    // harness-scale run reaches TPR ≈ 0.7 at α = 5% (see EXPERIMENTS.md).
    assert!(
        c.tpr() > 0.35,
        "anti-detection lies must still be caught by the innovation test: {}",
        c.tpr()
    );
}

#[test]
fn protected_nps_stays_more_accurate_than_unprotected() {
    let run = |detection: bool| {
        let mut sim = NpsSimulation::new(scenario(24, 0.3, detection));
        sim.run_clean(6);
        if detection {
            sim.calibrate_surveyors(&EmConfig::default());
            sim.arm_detection();
        }
        let attack = build_attack(&sim, 24);
        sim.run(4, &attack, false);
        sim.accuracy_report(25).median()
    };
    let unprotected = run(false);
    let protected = run(true);
    assert!(
        protected <= unprotected * 1.05,
        "detection must not hurt: protected {protected:.3} vs unprotected {unprotected:.3}"
    );
}

#[test]
fn landmarks_position_against_landmarks_only() {
    let mut sim = NpsSimulation::new(scenario(25, 0.2, false));
    sim.run_clean(3);
    // A landmark's trace length equals (landmarks − 1) × rounds: it only
    // ever samples the other landmarks.
    let h = sim.hierarchy().clone();
    let landmarks = h.landmarks();
    for &l in &landmarks {
        assert_eq!(
            sim.traces()[l].len(),
            (landmarks.len() - 1) * 3,
            "landmark {l} sampled a non-landmark"
        );
    }
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let mut sim = NpsSimulation::new(scenario(26, 0.25, true));
        sim.run_clean(5);
        sim.calibrate_surveyors(&EmConfig::default());
        sim.arm_detection();
        let attack = build_attack(&sim, 26);
        sim.run(3, &attack, false);
        (sim.report().confusion, sim.accuracy_report(20).median())
    };
    assert_eq!(run(), run());
}
