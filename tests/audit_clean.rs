//! Tier-1 gate: the workspace must pass its own static analysis
//! (`ices-audit --workspace` — see DESIGN.md "Determinism invariants &
//! enforcement"). Any reintroduced HashMap iteration, wall-clock read,
//! raw thread spawn, or unjustified panic path fails this test.

use std::process::Command;

#[test]
fn workspace_audit_is_clean() {
    let root = env!("CARGO_MANIFEST_DIR");
    let out = Command::new(env!("CARGO"))
        .args(["run", "-q", "-p", "ices-audit", "--", "--workspace"])
        .current_dir(root)
        .output()
        .unwrap_or_else(|e| panic!("running ices-audit: {e}"));
    assert!(
        out.status.success(),
        "workspace audit found violations:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}
