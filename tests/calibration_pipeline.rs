//! Integration: the calibration pipeline across crates — network traces
//! in, EM-calibrated filters out, verified against the behaviors the
//! paper's §2–3 claim.

use ices::core::kalman::RECALIBRATION_STREAK;
use ices::core::{calibrate, Detector, EmConfig, KalmanFilter, StateSpaceParams};
use ices::sim::replay::{prediction_errors, standardized_innovations};
use ices::sim::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use ices::sim::VivaldiSimulation;

fn converged_system(seed: u64) -> VivaldiSimulation {
    let mut sim = VivaldiSimulation::new(ScenarioConfig {
        seed,
        topology: TopologyKind::small_king(90),
        surveyors: SurveyorPlacement::Random { fraction: 0.08 },
        malicious_fraction: 0.0,
        alpha: 0.05,
        detection: false,
        clean_cycles: 10,
        attack_cycles: 0,
        embed_against_surveyors_only: false,
    });
    sim.run_clean(10);
    sim
}

#[test]
fn every_node_trace_is_calibratable() {
    let sim = converged_system(31);
    for outcome in sim.calibrate_all(&EmConfig::default()) {
        outcome.params.validate();
        assert!(
            outcome.params.beta.abs() < 1.0,
            "stationarity must hold after EM"
        );
    }
}

#[test]
fn own_filter_beats_persistence_predictor_on_own_trace() {
    // Baseline: "predict the previous observation" — the natural causal
    // competitor. (An oracle that knows the whole trace's mean can edge
    // out any causal filter on near-white data, so it is not a fair bar.)
    let mut sim = converged_system(32);
    let outcomes = sim.calibrate_all(&EmConfig::default());
    // The paper's §3.2 protocol: forget coordinates and re-embed, so the
    // evaluation trace has the same shape (convergence transient + tail)
    // as the calibration trace.
    sim.clear_traces();
    sim.forget_coordinates();
    sim.run_clean(5);
    let mut improved = 0usize;
    let mut total = 0usize;
    let mut filter_total = 0.0;
    let mut persistence_total = 0.0;
    for &node in sim.normal_nodes().iter().take(40) {
        let trace = &sim.traces()[node];
        if trace.len() < 50 {
            continue;
        }
        total += 1;
        let params = outcomes[node].params;
        let filter_err: f64 = prediction_errors(params, trace)[10..].iter().sum();
        let persistence_err: f64 = trace.windows(2).skip(9).map(|w| (w[1] - w[0]).abs()).sum();
        filter_total += filter_err;
        persistence_total += persistence_err;
        if filter_err < persistence_err {
            improved += 1;
        }
    }
    assert!(
        improved * 10 >= total * 6,
        "the filter should beat the persistence predictor on most nodes \
         ({improved}/{total})"
    );
    assert!(
        filter_total < 0.9 * persistence_total,
        "aggregate filter error {filter_total:.2} should clearly beat \
         persistence {persistence_total:.2}"
    );
}

#[test]
fn surveyor_filter_transfers_to_nearby_nodes() {
    // The paper's core transferability claim: a normal node can run a
    // *Surveyor's* parameters on its own trace with a usable prediction
    // quality.
    let mut sim = converged_system(33);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.clear_traces();
    sim.run_clean(5);
    let surveyors: Vec<usize> = sim.surveyors().iter().copied().collect();
    let mut usable = 0usize;
    let mut total = 0usize;
    for &node in sim.normal_nodes().iter().take(30) {
        let trace = &sim.traces()[node];
        if trace.len() < 50 {
            continue;
        }
        total += 1;
        // Best Surveyor for this node (the paper: the closest works, but
        // here we just need existence).
        let best = surveyors
            .iter()
            .map(|&s| {
                let params = sim.registry().get(s).expect("calibrated").params;
                let errs = prediction_errors(params, trace);
                errs[10..].iter().sum::<f64>() / (errs.len() - 10) as f64
            })
            .fold(f64::INFINITY, f64::min);
        if best < 0.3 {
            usable += 1;
        }
    }
    assert!(
        usable * 10 >= total * 8,
        "≥80% of nodes should find a Surveyor filter with usable predictions \
         ({usable}/{total})"
    );
}

#[test]
fn standardized_innovations_are_centered_and_scaled() {
    let mut sim = converged_system(34);
    let outcomes = sim.calibrate_all(&EmConfig::default());
    // Evaluate on a re-embedded trace so it has the same shape
    // (convergence transient + tail) as the calibration trace; a
    // steady-state-only trace under-disperses against the transient-fit
    // parameters.
    sim.clear_traces();
    sim.forget_coordinates();
    sim.run_clean(5);
    let mut stats = ices::stats::OnlineStats::new();
    for &node in sim.normal_nodes().iter().take(30) {
        let trace = &sim.traces()[node];
        if trace.len() < 50 {
            continue;
        }
        for z in &standardized_innovations(outcomes[node].params, trace)[10..] {
            stats.push(*z);
        }
    }
    assert!(stats.mean().abs() < 0.25, "mean {}", stats.mean());
    assert!(
        stats.variance() > 0.5 && stats.variance() < 3.5,
        "variance {}",
        stats.variance()
    );
}

#[test]
fn recalibration_trigger_then_refresh_resets_the_filter() {
    // End-to-end over the core API: a filter hit by a sustained shift
    // fires the 10-consecutive rule; recalibrating on fresh clean data
    // restores nominal operation.
    let truth = StateSpaceParams {
        beta: 0.8,
        v_w: 0.001,
        v_u: 0.004,
        w_bar: 0.02,
        w0: 0.3,
        p0: 0.02,
    };
    let mut rng = ices::stats::rng::stream_rng(35, 0);
    let clean = truth.simulate(1500, &mut rng);
    let out = calibrate(
        &clean,
        StateSpaceParams::em_initial_guess(),
        &EmConfig::default(),
    );

    let mut filter = KalmanFilter::new(out.params);
    for &d in &clean[..500] {
        filter.update(d);
    }
    assert!(!filter.needs_recalibration());
    // Network conditions change for good: the error level doubles.
    let mut fired_after = None;
    for (i, &d) in clean[500..].iter().enumerate() {
        filter.update(d + 0.5);
        if filter.needs_recalibration() {
            fired_after = Some(i + 1);
            break;
        }
    }
    let fired_after = fired_after.expect("sustained change must fire the trigger");
    assert!(
        fired_after >= RECALIBRATION_STREAK as usize,
        "cannot fire before {RECALIBRATION_STREAK} consecutive outliers"
    );

    // Recalibrate on the new regime.
    let shifted: Vec<f64> = clean.iter().map(|d| d + 0.5).collect();
    let out2 = calibrate(
        &shifted,
        StateSpaceParams::em_initial_guess(),
        &EmConfig::default(),
    );
    let mut detector = Detector::new(out2.params, 0.05);
    let mut flagged = 0;
    for &d in &shifted[100..600] {
        if detector.assess(d).suspicious {
            flagged += 1;
        }
    }
    assert!(
        (flagged as f64) < 0.15 * 500.0,
        "after recalibration the new regime is normal again ({flagged}/500 flagged)"
    );
}

