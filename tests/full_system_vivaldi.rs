//! Integration: the complete Vivaldi pipeline — topology generation,
//! clean convergence, Surveyor calibration, the detection protocol under
//! the colluding isolation attack — exercised through the public facade
//! crate exactly as a downstream user would.

use ices::attack::{HonestWorld, VivaldiIsolationAttack};
use ices::core::EmConfig;
use ices::sim::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use ices::sim::VivaldiSimulation;

fn scenario(seed: u64, malicious: f64, detection: bool) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        topology: TopologyKind::small_planetlab(80),
        surveyors: SurveyorPlacement::Random { fraction: 0.1 },
        malicious_fraction: malicious,
        alpha: 0.05,
        detection,
        clean_cycles: 10,
        attack_cycles: 5,
        embed_against_surveyors_only: false,
    }
}

fn attacked_median(seed: u64, malicious: f64, detection: bool) -> f64 {
    let mut sim = VivaldiSimulation::new(scenario(seed, malicious, detection));
    sim.run_clean(10);
    if detection {
        sim.calibrate_surveyors(&EmConfig::default());
        sim.arm_detection();
    }
    if malicious > 0.0 {
        let target = sim.normal_nodes()[0];
        let radius = sim.network().median_base_rtt() / 2.0;
        let attack = VivaldiIsolationAttack::new(
            sim.malicious().iter().copied(),
            sim.coordinate(target).clone(),
            radius,
            seed,
        );
        sim.run(5, &attack, false);
    } else {
        sim.run(5, &HonestWorld, false);
    }
    sim.accuracy_report(25).median()
}

#[test]
fn attack_without_detection_distorts_the_space() {
    let clean = attacked_median(11, 0.0, false);
    let attacked = attacked_median(11, 0.3, false);
    assert!(
        attacked > 2.0 * clean,
        "a 30% coherent isolation attack must visibly distort the space: \
         clean {clean:.3} vs attacked {attacked:.3}"
    );
}

#[test]
fn detection_substantially_restores_accuracy() {
    let clean = attacked_median(12, 0.0, false);
    let unprotected = attacked_median(12, 0.3, false);
    let protected = attacked_median(12, 0.3, true);
    assert!(
        protected < unprotected / 2.0,
        "detection must reclaim most of the damage: \
         protected {protected:.3} vs unprotected {unprotected:.3}"
    );
    // The absolute slack covers seed-level spread: across seeds the
    // protected median ranges roughly 0.08–0.62 against unprotected
    // medians of 2.3–2.8.
    assert!(
        protected < clean + 0.75,
        "protected system should sit near clean accuracy: \
         {protected:.3} vs clean {clean:.3}"
    );
}

#[test]
fn surveyors_are_immune_to_the_attack() {
    let mut sim = VivaldiSimulation::new(scenario(13, 0.3, false));
    sim.run_clean(10);
    let before: Vec<f64> = sim
        .surveyors()
        .iter()
        .map(|&s| sim.coordinate(s).magnitude())
        .collect();
    let target = sim.normal_nodes()[0];
    let attack = VivaldiIsolationAttack::new(
        sim.malicious().iter().copied(),
        sim.coordinate(target).clone(),
        50.0,
        13,
    );
    sim.run(5, &attack, false);
    // Surveyors only embed against each other, so their coordinates keep
    // evolving by the same clean dynamics — no sudden displacement.
    for (i, &s) in sim.surveyors().iter().enumerate() {
        let after = sim.coordinate(s).magnitude();
        assert!(
            (after - before[i]).abs() < before[i].max(50.0) * 1.0,
            "surveyor {s} moved wildly under attack: {} -> {after}",
            before[i]
        );
    }
}

#[test]
fn detection_report_accounts_every_vetted_step() {
    let mut sim = VivaldiSimulation::new(scenario(14, 0.2, true));
    sim.run_clean(10);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.arm_detection();
    let target = sim.normal_nodes()[0];
    let attack = VivaldiIsolationAttack::new(
        sim.malicious().iter().copied(),
        sim.coordinate(target).clone(),
        50.0,
        14,
    );
    sim.run(3, &attack, false);
    let c = &sim.report().confusion;
    // Every honest node performs one step per neighbor per pass; all of
    // them must be accounted as exactly one confusion cell.
    assert!(c.total() > 0);
    assert_eq!(
        c.total(),
        c.positives() + c.negatives(),
        "confusion cells must partition the vetted steps"
    );
    assert!(c.tpr() > 0.5, "most malicious steps detected: {}", c.tpr());
    assert!(c.fpr() < 0.35, "honest steps mostly accepted: {}", c.fpr());
}

#[test]
fn clean_system_detection_flags_near_alpha() {
    // With no attacker at all, the detector's rejections are pure false
    // positives and should stay within a few multiples of α.
    let mut sim = VivaldiSimulation::new(scenario(15, 0.0, true));
    sim.run_clean(10);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.arm_detection();
    sim.run(5, &HonestWorld, false);
    let c = &sim.report().confusion;
    assert_eq!(c.positives(), 0);
    assert!(
        c.fpr() < 0.25,
        "clean-system FPR {} should stay within a few α",
        c.fpr()
    );
}

#[test]
fn deterministic_end_to_end() {
    let a = attacked_median(16, 0.2, true);
    let b = attacked_median(16, 0.2, true);
    assert_eq!(a, b, "identical seeds must reproduce identical runs");
}
