//! # ices — securing Internet coordinate embedding systems
//!
//! A from-scratch Rust reproduction of Kaafar, Mathy, Barakat,
//! Salamatian, Turletti & Dabbous, *Securing Internet Coordinate
//! Embedding Systems* (SIGCOMM 2007): Kalman-filter-based detection of
//! malicious behavior during coordinate embedding, calibrated by a
//! trusted **Surveyor** infrastructure, evaluated on full
//! implementations of Vivaldi and NPS over a synthetic Internet delay
//! substrate.
//!
//! This facade crate re-exports the workspace members under stable
//! paths:
//!
//! * [`stats`] — statistics substrate (normal kernels, Lilliefors test,
//!   ECDF, k-means, ROC, seeded samplers).
//! * [`coord`] — coordinate geometry (Euclidean + height vectors) and
//!   the [`coord::Embedding`] step abstraction.
//! * [`netsim`] — synthetic King/PlanetLab topologies and the
//!   stationary RTT fluctuation model.
//! * [`vivaldi`] / [`nps`] — the two embedding systems the paper
//!   evaluates.
//! * [`core`] — the paper's contribution: state-space model, Kalman
//!   filter, EM calibration, innovation test, Surveyors, and the
//!   generic detection protocol.
//! * [`attack`] — the colluding isolation (Vivaldi) and colluding
//!   reference-point (NPS, with anti-detection) adversaries.
//! * [`sim`] — the full experiment harness reproducing every table and
//!   figure of the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use ices::core::{calibrate, Detector, EmConfig, StateSpaceParams};
//!
//! // A clean trace of measured relative errors (here: simulated from a
//! // known model; in the system it comes from a Surveyor's embedding).
//! let truth = StateSpaceParams { beta: 0.8, v_w: 0.004, v_u: 0.002,
//!                                w_bar: 0.03, w0: 0.5, p0: 0.05 };
//! let mut rng = ices::stats::rng::stream_rng(1, 0);
//! let trace = truth.simulate(2000, &mut rng);
//!
//! // Calibrate by EM and arm the α = 5% innovation test.
//! let calibrated = calibrate(&trace, StateSpaceParams::em_initial_guess(),
//!                            &EmConfig::default());
//! let mut detector = Detector::new(calibrated.params, 0.05);
//!
//! // Nominal steps pass, blatant manipulation is flagged.
//! assert!(!detector.assess(truth.stationary_mean()).suspicious);
//! assert!(detector.assess(5.0).suspicious);
//! ```
//!
//! See `examples/` for full-system walkthroughs and `crates/bench` for
//! the per-figure reproduction harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ices_attack as attack;
pub use ices_coord as coord;
pub use ices_core as core;
pub use ices_netsim as netsim;
pub use ices_nps as nps;
pub use ices_sim as sim;
pub use ices_stats as stats;
pub use ices_vivaldi as vivaldi;
