//! Offline std-only shim for the subset of `loom` this workspace uses.
//!
//! Real loom runs a model function under *exhaustive* interleaving
//! exploration (DPOR over an instrumented happens-before graph). This
//! build environment has no registry access, so this shim keeps loom's
//! API shape — `loom::model`, `loom::thread`, `loom::sync`,
//! `loom::sync::atomic` — and substitutes the exploration engine with a
//! deterministic *randomized-yield schedule sweep*: the model closure is
//! executed once per seeded schedule, and every instrumented operation
//! (lock, wait, notify, atomic access, explicit `yield_now`) consults a
//! per-schedule splitmix64 stream to decide whether to yield the OS
//! thread first. Varying the yield density and phase across schedules
//! perturbs the interleavings the OS actually produces, which is the
//! practical budget version of schedule exploration: a protocol bug
//! that needs a particular unlucky interleaving gets many distinct
//! chances to manifest per `model()` call instead of one.
//!
//! The sweep is deterministic in its *inputs* (fixed seeds, fixed
//! schedule count) so a failure reproduces with the same binary and
//! host; like any stress-based checker — and unlike real loom — absence
//! of failure is evidence, not proof. The pool's soundness argument
//! remains the completion-barrier reasoning in `crates/par/src/pool.rs`;
//! the model tests pin that reasoning against live interleavings.
//!
//! Instrumented wrappers intentionally mirror loom's signatures so the
//! model code compiles against real loom unchanged if it ever becomes
//! available.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as StdOrdering};

/// Number of seeded schedules a single `model()` call sweeps.
pub const SCHEDULES: u64 = 64;

/// Per-process schedule state consulted by every instrumented op.
struct ScheduleState {
    /// splitmix64 cursor; mixed with a per-op draw.
    cursor: AtomicU64,
    /// Yield when `draw % modulus == phase` — varied per schedule.
    modulus: AtomicU64,
    phase: AtomicU64,
    active: AtomicBool,
}

static SCHEDULE: ScheduleState = ScheduleState {
    cursor: AtomicU64::new(0),
    modulus: AtomicU64::new(3),
    phase: AtomicU64::new(0),
    active: AtomicBool::new(false),
};

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The instrumentation hook: maybe yield the OS thread, per the active
/// schedule's seeded stream. Fetch-add keeps the stream coherent under
/// concurrent draws without a lock.
fn hook() {
    if !SCHEDULE.active.load(StdOrdering::Relaxed) {
        return;
    }
    let n = SCHEDULE.cursor.fetch_add(1, StdOrdering::Relaxed);
    let draw = splitmix64(n);
    let modulus = SCHEDULE.modulus.load(StdOrdering::Relaxed).max(1);
    let phase = SCHEDULE.phase.load(StdOrdering::Relaxed);
    if draw % modulus == phase {
        std::thread::yield_now();
    }
}

/// Run `f` once per seeded schedule (see module docs). Panics from the
/// model propagate to the caller with the failing schedule number
/// attached via stderr, so the failure seed is visible in test output.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for schedule in 0..SCHEDULES {
        let seed = splitmix64(schedule.wrapping_mul(0x5149_5341));
        SCHEDULE.cursor.store(seed, StdOrdering::Relaxed);
        // Densities 1/2 .. 1/9, phase varied so the same modulus still
        // yields at different points on different schedules.
        SCHEDULE
            .modulus
            .store(2 + (schedule % 8), StdOrdering::Relaxed);
        SCHEDULE
            .phase
            .store(splitmix64(seed) % (2 + (schedule % 8)), StdOrdering::Relaxed);
        SCHEDULE.active.store(true, StdOrdering::Relaxed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        SCHEDULE.active.store(false, StdOrdering::Relaxed);
        if let Err(payload) = result {
            eprintln!("loom(shim): model failed under schedule {schedule}/{SCHEDULES}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Instrumented `std::thread` subset.
pub mod thread {
    use super::hook;

    /// Instrumented join handle (yields before joining).
    pub struct JoinHandle<T>(std::thread::JoinHandle<T>);

    impl<T> JoinHandle<T> {
        /// Join, surfacing the child's panic payload like std.
        pub fn join(self) -> std::thread::Result<T> {
            hook();
            self.0.join()
        }
    }

    /// Spawn an instrumented model thread.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        hook();
        JoinHandle(std::thread::spawn(move || {
            hook();
            f()
        }))
    }

    /// Explicit schedule point.
    pub fn yield_now() {
        hook();
        std::thread::yield_now();
    }
}

/// Instrumented `std::sync` subset.
pub mod sync {
    use super::hook;
    use std::sync::PoisonError;

    pub use std::sync::Arc;

    /// Instrumented mutex: a schedule point before every acquisition.
    pub struct Mutex<T>(std::sync::Mutex<T>);

    /// Guard type mirroring `std::sync::MutexGuard`.
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

    impl<T> Mutex<T> {
        /// Wrap a value.
        pub fn new(value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }

        /// Lock, yielding first under the active schedule. Poison is
        /// swallowed (model panics are re-raised by `model()` itself).
        pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
            hook();
            Ok(self.0.lock().unwrap_or_else(PoisonError::into_inner))
        }
    }

    /// Instrumented condvar: schedule points around wait and notify.
    pub struct Condvar(std::sync::Condvar);

    impl Condvar {
        /// New condvar.
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Condvar(std::sync::Condvar::new())
        }

        /// Wait, yielding first under the active schedule.
        pub fn wait<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
        ) -> std::sync::LockResult<MutexGuard<'a, T>> {
            hook();
            Ok(self.0.wait(guard).unwrap_or_else(PoisonError::into_inner))
        }

        /// Notify every waiter (schedule point first).
        pub fn notify_all(&self) {
            hook();
            self.0.notify_all();
        }

        /// Notify one waiter (schedule point first).
        pub fn notify_one(&self) {
            hook();
            self.0.notify_one();
        }
    }

    /// Instrumented `std::sync::atomic` subset: a schedule point before
    /// every access, so atomic-heavy protocols (the pool's `remaining`
    /// barrier) get perturbed hardest.
    pub mod atomic {
        use super::hook;

        pub use std::sync::atomic::Ordering;

        macro_rules! atomic_shim {
            ($name:ident, $std:ty, $int:ty) => {
                /// Instrumented atomic integer.
                pub struct $name(pub(crate) $std);

                impl $name {
                    /// Wrap a value.
                    pub const fn new(v: $int) -> Self {
                        Self(<$std>::new(v))
                    }

                    /// Instrumented load.
                    pub fn load(&self, order: Ordering) -> $int {
                        hook();
                        self.0.load(order)
                    }

                    /// Instrumented store.
                    pub fn store(&self, v: $int, order: Ordering) {
                        hook();
                        self.0.store(v, order)
                    }

                    /// Instrumented fetch_add.
                    pub fn fetch_add(&self, v: $int, order: Ordering) -> $int {
                        hook();
                        self.0.fetch_add(v, order)
                    }

                    /// Instrumented fetch_sub.
                    pub fn fetch_sub(&self, v: $int, order: Ordering) -> $int {
                        hook();
                        self.0.fetch_sub(v, order)
                    }
                }
            };
        }

        atomic_shim!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        atomic_shim!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    }
}

/// Instrumented spin hint, mirroring `loom::hint`.
pub mod hint {
    use super::hook;

    /// A schedule point standing in for `std::hint::spin_loop`.
    pub fn spin_loop() {
        hook();
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex};

    #[test]
    fn model_runs_every_schedule() {
        let runs = Arc::new(AtomicUsize::new(0));
        let r = runs.clone();
        super::model(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(runs.0.load(std::sync::atomic::Ordering::SeqCst), super::SCHEDULES as usize);
    }

    #[test]
    fn threads_mutexes_and_condvars_compose() {
        super::model(|| {
            let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
            let p = pair.clone();
            let t = super::thread::spawn(move || {
                let (m, cv) = &*p;
                let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
                *g += 1;
                drop(g);
                cv.notify_all();
            });
            let (m, cv) = &*pair;
            let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
            while *g == 0 {
                g = cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
            assert_eq!(*g, 1);
            drop(g);
            t.join().unwrap_or_else(|_| panic!("join"));
        });
    }

    #[test]
    fn model_reports_failing_schedule() {
        let failed = std::panic::catch_unwind(|| {
            super::model(|| panic!("deliberate"));
        });
        assert!(failed.is_err());
    }
}
