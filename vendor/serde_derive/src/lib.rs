//! Offline shim for `serde_derive`.
//!
//! Generates impls of the vendored serde's `Serialize`/`Deserialize`
//! traits (which lower through `serde::value::Value`) for plain structs
//! and enums. Parsing is hand-rolled over `proc_macro::TokenStream` —
//! the build environment has no registry access, so `syn`/`quote` are
//! unavailable.
//!
//! Supported shapes (everything this workspace derives):
//! - unit / tuple / named-field structs, with simple generic type
//!   parameters (optionally bounded, e.g. `struct S<E: Embedding>`);
//! - enums with unit, tuple and struct variants.
//!
//! Not supported (unused in this workspace): `#[serde(...)]` attributes,
//! lifetimes or const generics on derived types, `where` clauses, union
//! types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One generic type parameter: its name and any declared bounds
/// (the raw text after `:`, e.g. `Embedding + Clone`).
struct GenericParam {
    name: String,
    bounds: String,
}

struct Field {
    name: String,
}

enum Body {
    Unit,
    /// Tuple struct with this many fields.
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    body: Body,
}

enum Shape {
    Struct(Body),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    generics: Vec<GenericParam>,
    shape: Shape,
}

/// Cursor over a flat token list.
struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn is_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    /// Skip any number of outer attributes `#[...]`.
    fn skip_attributes(&mut self) {
        while self.is_punct('#') {
            self.pos += 1; // '#'
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
            {
                self.pos += 1;
            }
        }
    }

    /// Skip a `pub` / `pub(...)` visibility prefix.
    fn skip_visibility(&mut self) {
        if self.is_ident("pub") {
            self.pos += 1;
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.pos += 1;
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive shim: expected identifier, got {other:?}"),
        }
    }

    /// Parse `<A, B: Bound, ...>` if present. Angle brackets are raw
    /// puncts, so nesting is tracked by depth counting.
    fn parse_generics(&mut self) -> Vec<GenericParam> {
        if !self.is_punct('<') {
            return Vec::new();
        }
        self.pos += 1; // '<'
        let mut params = Vec::new();
        let mut depth = 1usize;
        // Collect the tokens of one parameter at depth 1, split on ','.
        let mut current: Vec<TokenTree> = Vec::new();
        loop {
            let Some(tok) = self.next() else {
                panic!("serde_derive shim: unterminated generics");
            };
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    current.push(tok);
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        if !current.is_empty() {
                            params.push(parse_param(&current));
                        }
                        break;
                    }
                    current.push(tok);
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    if !current.is_empty() {
                        params.push(parse_param(&current));
                    }
                    current = Vec::new();
                }
                _ => current.push(tok),
            }
        }
        params
    }

    /// Skip a field's type: everything up to the next top-level `,`.
    /// Angle-bracket depth is tracked so commas inside `BTreeMap<K, V>`
    /// do not terminate early. Returns false when the fields are done.
    fn skip_type(&mut self) -> bool {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                None => return false,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    self.pos += 1;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth = depth.saturating_sub(1);
                    self.pos += 1;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    self.pos += 1;
                    return true;
                }
                Some(_) => {
                    self.pos += 1;
                }
            }
        }
    }
}

fn parse_param(tokens: &[TokenTree]) -> GenericParam {
    // `Name` or `Name: Bound + Bound`. Lifetimes/const params are not
    // supported (unused in this workspace).
    let name = match tokens.first() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive shim: unsupported generic parameter {other:?}"),
    };
    let bounds = if tokens.len() > 2 {
        tokens[2..]
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    } else {
        String::new()
    };
    GenericParam { name, bounds }
}

/// Parse `{ name: Type, ... }` named fields.
fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(group);
    let mut fields = Vec::new();
    loop {
        c.skip_attributes();
        c.skip_visibility();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident();
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected ':' after field name, got {other:?}"),
        }
        fields.push(Field { name });
        if !c.skip_type() {
            break;
        }
    }
    fields
}

/// Count the fields of a tuple struct / tuple variant `( Type, ... )`.
fn count_tuple_fields(group: TokenStream) -> usize {
    let mut c = Cursor::new(group);
    let mut count = 0usize;
    loop {
        c.skip_attributes();
        c.skip_visibility();
        if c.peek().is_none() {
            break;
        }
        count += 1;
        if !c.skip_type() {
            break;
        }
    }
    count
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(group);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident();
        let body = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.pos += 1;
                Body::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.pos += 1;
                Body::Tuple(n)
            }
            _ => Body::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        while let Some(tok) = c.peek() {
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                c.pos += 1;
                break;
            }
            c.pos += 1;
        }
        variants.push(Variant { name, body });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kind = c.expect_ident();
    let name = c.expect_ident();
    let generics = c.parse_generics();
    match kind.as_str() {
        "struct" => {
            let body = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Body::Unit,
            };
            Input {
                name,
                generics,
                shape: Shape::Struct(body),
            }
        }
        "enum" => {
            let variants = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde_derive shim: expected enum body, got {other:?}"),
            };
            Input {
                name,
                generics,
                shape: Shape::Enum(variants),
            }
        }
        other => panic!("serde_derive shim: cannot derive for `{other}`"),
    }
}

/// `impl<...>` generics with `extra_bound` appended to every type
/// parameter, and the bare `<...>` for the type position.
fn generics_strings(params: &[GenericParam], extra_bound: &str) -> (String, String) {
    if params.is_empty() {
        return (String::new(), String::new());
    }
    let impl_params: Vec<String> = params
        .iter()
        .map(|p| {
            if p.bounds.is_empty() {
                format!("{}: {}", p.name, extra_bound)
            } else {
                format!("{}: {} + {}", p.name, p.bounds, extra_bound)
            }
        })
        .collect();
    let ty_params: Vec<String> = params.iter().map(|p| p.name.clone()).collect();
    (
        format!("<{}>", impl_params.join(", ")),
        format!("<{}>", ty_params.join(", ")),
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let (impl_generics, ty_generics) = generics_strings(&input.generics, "::serde::Serialize");
    let name = &input.name;

    let body = match &input.shape {
        Shape::Struct(Body::Unit) => "::serde::value::Value::Null".to_string(),
        Shape::Struct(Body::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::Struct(Body::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::value::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.body {
                        Body::Unit => format!(
                            "{name}::{vname} => ::serde::value::Value::Str(String::from(\"{vname}\")),"
                        ),
                        Body::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({binds}) => ::serde::value::Value::Map(vec![(String::from(\"{vname}\"), ::serde::value::Value::Seq(vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        Body::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from(\"{0}\"), ::serde::Serialize::to_value({0}))",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::value::Value::Map(vec![(String::from(\"{vname}\"), ::serde::value::Value::Map(vec![{entries}]))]),",
                                binds = binds.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };

    format!(
        "impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive shim: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let (impl_generics, ty_generics) = generics_strings(&input.generics, "::serde::Deserialize");
    let name = &input.name;

    let body = match &input.shape {
        Shape::Struct(Body::Unit) => format!("Ok({name})"),
        Shape::Struct(Body::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                .collect();
            format!(
                "let __seq = ::serde::__private::get_seq(__v, {n})?;\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Struct(Body::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{0}: ::serde::Deserialize::from_value(::serde::__private::get_field(__v, \"{0}\")?)?",
                        f.name
                    )
                })
                .collect();
            format!("Ok({name} {{ {} }})", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.body {
                        Body::Unit => format!("\"{vname}\" => Ok({name}::{vname}),"),
                        Body::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__seq[{i}])?")
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => {{\n\
                                     let __payload = __payload.ok_or_else(|| ::serde::DeError::new(\"variant `{vname}` expects a payload\"))?;\n\
                                     let __seq = ::serde::__private::get_seq(__payload, {n})?;\n\
                                     Ok({name}::{vname}({items}))\n\
                                 }}",
                                items = items.join(", ")
                            )
                        }
                        Body::Named(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{0}: ::serde::Deserialize::from_value(::serde::__private::get_field(__payload, \"{0}\")?)?",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => {{\n\
                                     let __payload = __payload.ok_or_else(|| ::serde::DeError::new(\"variant `{vname}` expects a payload\"))?;\n\
                                     Ok({name}::{vname} {{ {items} }})\n\
                                 }}",
                                items = items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let (__variant, __payload) = ::serde::__private::variant(__v)?;\n\
                 match __variant {{\n\
                     {}\n\
                     __other => Err(::serde::DeError::new(format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                 }}",
                arms.join("\n")
            )
        }
    };

    format!(
        "impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{\n\
             fn from_value(__v: &::serde::value::Value) -> Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive shim: generated Deserialize impl must parse")
}
