//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so property tests run
//! on a minimal, deterministic re-implementation: the `proptest!` macro
//! expands each property into a plain `#[test]` that samples its
//! strategies `cases` times from a generator seeded by the test's name.
//! There is no shrinking and no failure persistence — a failing case
//! panics via `prop_assert!` with the sampled inputs still printable by
//! the property body itself.
//!
//! Supported surface: range strategies over the primitive numeric types,
//! tuples of strategies, `proptest::collection::vec`, `Strategy::prop_map`,
//! `ProptestConfig::with_cases`, `prop_assert!`, `prop_assert_eq!` and
//! `prop_assume!`.

/// Per-block configuration; only `cases` is modelled.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property in the block `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite fast on small
        // hosts while still exercising the properties broadly.
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    /// Deterministic generator driving all strategy sampling
    /// (SplitMix64-seeded xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Seed deterministically from the property's name so every run
        /// (and every host) replays the identical case sequence.
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut s = [0u64; 4];
            let mut z = h;
            for slot in &mut s {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                *slot = splitmix64(z);
            }
            TestRng { s }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2n = s2 ^ s0;
            let mut s3n = s3 ^ s1;
            let s1n = s1 ^ s2n;
            let s0n = s0 ^ s3n;
            s2n ^= t;
            s3n = s3n.rotate_left(45);
            self.s = [s0n, s1n, s2n, s3n];
            result
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `[lo, hi)`; panics when empty.
        pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo < hi, "cannot sample from empty range");
            lo + self.next_u64() % (hi - lo)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Sample one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f` (no shrinking in this
        /// shim, so this is a plain map).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + (hi - lo) * rng.unit_f64()
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start();
                    let hi = *self.end();
                    assert!(lo <= hi, "empty inclusive range");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(strategy, len)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig};
}

/// Assert inside a property; panics (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skip the current case when its sampled inputs are out of scope.
/// Expands to `continue` targeting the case loop `proptest!` generates.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` sampling its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn prop_map_applies(z in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(z < 20);
        }

        #[test]
        fn assume_skips_cases(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
