//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! The build environment has no crates.io access, so `cargo bench`
//! compiles against this minimal harness: every benchmark closure is
//! warmed up once and then timed over a small adaptive batch with
//! `std::time::Instant`, printing `group/id  mean-per-iteration`.
//! No statistical analysis, outlier detection or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target time spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// Entry point handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// Group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for compatibility; the shim sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id);
        self
    }

    /// Run one parameterized benchmark closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id);
        self
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Timing driver passed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Time `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up iteration, also used to scale the batch.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));

        let batch = (MEASURE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = batch;
    }

    /// Time `routine` over fresh inputs produced by `setup`; the setup
    /// cost is excluded from the measurement.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(&mut input));
        let once = start.elapsed().max(Duration::from_nanos(1));

        let batch = (MEASURE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let mut elapsed = Duration::ZERO;
        for _ in 0..batch {
            let mut input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(&mut input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
        self.iterations = batch;
    }

    fn report(&self, group: &str, id: &impl Display) {
        if self.iterations == 0 {
            println!("{group}/{id}: no measurement");
            return;
        }
        let per_iter = self.elapsed.as_nanos() as f64 / self.iterations as f64;
        println!(
            "{group}/{id}: {:.1} ns/iter ({} iterations)",
            per_iter, self.iterations
        );
    }
}

/// How batched inputs are grouped; accepted for compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
}

/// Throughput annotation; accepted for compatibility.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn iter_batched_ref_uses_fresh_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.bench_function("batched", |b| {
            b.iter_batched_ref(
                || vec![0u64; 8],
                |v| {
                    v[0] += 1;
                    assert_eq!(v[0], 1, "inputs must be fresh per iteration");
                },
                BatchSize::SmallInput,
            );
        });
        group.finish();
    }
}
