//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`] and [`from_str`], rendering the
//! vendored serde's `Value` tree to and from JSON text.
//!
//! Floats are written with Rust's shortest-round-trip formatting, so a
//! serialize → parse cycle reproduces every finite `f64` bit-for-bit.
//! Non-finite floats serialize as `null` (as upstream serde_json does)
//! and parse back as NaN where an `f64` is expected.

use std::fmt::Write as _;

use serde::{DeError, Deserialize, Serialize, Value};

/// Error type for JSON rendering/parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to a human-readable, two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's default float formatting is shortest-round-trip.
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error("recursion depth exceeded".into()));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("expected `,` or `]` at {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("expected `,` or `}}` at {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected input {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".into()));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error("unpaired surrogate".into()));
                                }
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid unicode escape".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let ch = text.chars().next().unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                // Fall back to f64 for magnitudes beyond i64.
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let x: f64 = from_str(&to_string(&1.25f64).unwrap()).unwrap();
        assert_eq!(x, 1.25);
        let n: u64 = from_str(&to_string(&42u64).unwrap()).unwrap();
        assert_eq!(n, 42);
        let s: String = from_str(&to_string("he\"llo\n").unwrap()).unwrap();
        assert_eq!(s, "he\"llo\n");
    }

    #[test]
    fn f64_round_trip_is_exact() {
        for &x in &[0.1, 1.0 / 3.0, 6.02e23, -1.7e-300, f64::MAX, f64::MIN_POSITIVE] {
            let y: f64 = from_str(&to_string(&x).unwrap()).unwrap();
            assert_eq!(x.to_bits(), y.to_bits(), "{x} must round-trip exactly");
        }
    }

    #[test]
    fn composites_round_trip() {
        let v = vec![(1usize, 0.5f64), (2, 1.5)];
        let text = to_string(&v).unwrap();
        let back: Vec<(usize, f64)> = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u64, 2], vec![3]];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Vec<Vec<u64>> = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<bool>("truthy").is_err());
    }
}
