//! Offline shim for the subset of `serde` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal serialization framework under serde's public names:
//! `Serialize`/`Deserialize` traits (plus same-named derive macros behind
//! the `derive` feature) and enough impls for the field types that appear
//! in this repository. Instead of serde's visitor architecture, both
//! traits go through a self-describing [`value::Value`] tree, which
//! `serde_json` (also vendored) renders to and parses from JSON text.
//!
//! Round-trip fidelity within the workspace is the contract; byte-level
//! compatibility with upstream serde_json output is NOT guaranteed (maps
//! with non-string keys, for example, are encoded as entry sequences).

pub mod value {
    use std::fmt;

    /// Self-describing data model every `Serialize` impl lowers into.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// JSON `null`; also carries non-finite floats.
        Null,
        /// JSON booleans.
        Bool(bool),
        /// Non-negative integers.
        U64(u64),
        /// Negative integers.
        I64(i64),
        /// Finite floating point numbers.
        F64(f64),
        /// Strings (struct field names, enum variant tags, text).
        Str(String),
        /// Ordered sequences: vectors, tuples, tuple variants.
        Seq(Vec<Value>),
        /// Ordered string-keyed maps: structs and struct variants.
        Map(Vec<(String, Value)>),
    }

    /// Error raised when a [`Value`] does not match the requested shape.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct DeError(pub String);

    impl fmt::Display for DeError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "deserialization error: {}", self.0)
        }
    }

    impl std::error::Error for DeError {}

    impl DeError {
        /// Shorthand constructor used throughout the impls.
        pub fn new(msg: impl Into<String>) -> Self {
            DeError(msg.into())
        }
    }
}

use std::collections::{BTreeMap, BTreeSet, HashMap};

pub use value::{DeError, Value};

/// Types that can lower themselves into the [`Value`] data model.
pub trait Serialize {
    /// Produce the value-tree representation of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Mirrors `serde::ser` far enough for `use serde::ser::Serialize`.
pub mod ser {
    pub use crate::Serialize;
}

/// Mirrors `serde::de` far enough for `use serde::de::Deserialize`.
pub mod de {
    pub use crate::Deserialize;

    /// In this shim `Deserialize` has no lifetime, so owned
    /// deserialization is the only kind; the alias keeps signatures
    /// written against upstream serde compiling.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other
                    ))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other
                    ))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::F64(*self)
        } else {
            // JSON has no NaN/inf; mirror serde_json's `null`.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::new(format!("expected f64, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::new(format!("expected char, got {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::new(format!(
                        "expected {LEN}-tuple, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Maps and sets are encoded as entry sequences so that non-string keys
/// (e.g. `(usize, usize)` pairs) survive the JSON round trip.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = Vec::<(K, V)>::from_value(v)?;
        Ok(entries.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(|items| items.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Helpers for derive-generated code
// ---------------------------------------------------------------------------

/// Internal helpers the `serde_derive` shim expands calls to. Not part of
/// the public API contract.
#[doc(hidden)]
pub mod __private {
    use super::{DeError, Value};

    /// Look up a struct field in a `Value::Map`.
    pub fn get_field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, val)| val)
                .ok_or_else(|| DeError::new(format!("missing field `{name}`"))),
            other => Err(DeError::new(format!(
                "expected map with field `{name}`, got {other:?}"
            ))),
        }
    }

    /// Interpret a `Value` as a fixed-arity sequence (tuple struct or
    /// tuple variant payload).
    pub fn get_seq(v: &Value, len: usize) -> Result<&[Value], DeError> {
        match v {
            Value::Seq(items) if items.len() == len => Ok(items),
            other => Err(DeError::new(format!(
                "expected sequence of length {len}, got {other:?}"
            ))),
        }
    }

    /// Split an externally-tagged enum encoding into `(variant, payload)`.
    pub fn variant(v: &Value) -> Result<(&str, Option<&Value>), DeError> {
        match v {
            Value::Str(name) => Ok((name, None)),
            Value::Map(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), Some(&entries[0].1)))
            }
            other => Err(DeError::new(format!(
                "expected enum encoding, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn non_finite_floats_become_null_then_nan() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn composites_round_trip() {
        let v = vec![(1usize, 2.5f64), (3, 4.5)];
        assert_eq!(Vec::<(usize, f64)>::from_value(&v.to_value()), Ok(v));

        let arr = [1u64, 2, 3, 4];
        assert_eq!(<[u64; 4]>::from_value(&arr.to_value()), Ok(arr));

        let mut map = BTreeMap::new();
        map.insert((1usize, 2usize), 9.0f64);
        assert_eq!(
            BTreeMap::<(usize, usize), f64>::from_value(&map.to_value()),
            Ok(map)
        );

        let opt: Option<u32> = Some(7);
        assert_eq!(Option::<u32>::from_value(&opt.to_value()), Ok(opt));
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&none.to_value()), Ok(none));
    }
}
