//! Offline shim for the subset of `rand` 0.10 this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal, std-only implementation of exactly the API surface the code
//! depends on: the `TryRng`/`Rng` word-generator traits with the
//! infallible blanket impl, the `RngExt` convenience methods
//! (`random`, `random_range`, `random_bool`), `SeedableRng::seed_from_u64`
//! and a deterministic `rngs::StdRng`.
//!
//! Determinism is the only hard requirement for the simulations in this
//! repository — every experiment derives per-stream seeds and asserts
//! statistical (not bitwise-vs-upstream) properties — so `StdRng` here is
//! a SplitMix64-seeded xoshiro256** rather than upstream's ChaCha12. It
//! is **not** cryptographically secure.

use core::convert::Infallible;
use core::ops::Range;

/// A potentially fallible word generator (rand 0.10's base trait).
pub trait TryRng {
    /// Error produced by the generator; `Infallible` for PRNGs.
    type Error;

    /// Next 32 random bits.
    fn try_next_u32(&mut self) -> Result<u32, Self::Error>;

    /// Next 64 random bits.
    fn try_next_u64(&mut self) -> Result<u64, Self::Error>;

    /// Fill `dest` with random bytes.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error>;
}

/// An infallible word generator.
pub trait Rng {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Every infallible `TryRng` is an `Rng` (mirrors rand 0.10's blanket).
impl<R: TryRng<Error = Infallible>> Rng for R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        match self.try_next_u32() {
            Ok(v) => v,
        }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        match self.try_next_u64() {
            Ok(v) => v,
        }
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        match self.try_fill_bytes(dest) {
            Ok(()) => {}
        }
    }
}

/// Types samplable uniformly from the generator's raw words
/// (the shim's stand-in for the `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types drawable uniformly from a start + span (shim support
/// trait behind [`SampleRange`]).
pub trait UniformInt: Copy + PartialOrd {
    /// `end - start`, reinterpreted unsigned and widened to `u64`.
    fn span(start: Self, end: Self) -> u64;
    /// `self + delta` with the type's wrapping arithmetic.
    fn offset(self, delta: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn span(start: Self, end: Self) -> u64 {
                (end as $u).wrapping_sub(start as $u) as u64
            }

            #[inline]
            fn offset(self, delta: u64) -> Self {
                self.wrapping_add(delta as $t)
            }
        }
    )*};
}

impl_uniform_int!(
    usize => usize, u64 => u64, u32 => u32, u16 => u16, u8 => u8,
    isize => usize, i64 => u64, i32 => u32
);

/// Range types usable with [`RngExt::random_range`] (rand 0.10 accepts
/// both half-open and inclusive ranges).
pub trait SampleRange: Sized {
    /// The element type drawn.
    type Output: UniformInt;

    /// Draw one value uniformly; panics when the range is empty.
    fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl<T: UniformInt> SampleRange for Range<T> {
    type Output = T;

    #[inline]
    fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        let span = T::span(self.start, self.end);
        // Modulo draw: a sliver of bias at 2^-64 scale, irrelevant
        // for simulation purposes; determinism is what matters.
        self.start.offset(rng.next_u64() % span)
    }
}

impl<T: UniformInt> SampleRange for core::ops::RangeInclusive<T> {
    type Output = T;

    #[inline]
    fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample from empty range");
        match T::span(start, end).checked_add(1) {
            Some(span) => start.offset(rng.next_u64() % span),
            // `start..=MAX` over the type's full width: every word is
            // already a uniform draw.
            None => start.offset(rng.next_u64()),
        }
    }
}

/// Convenience sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// Draw a value of type `T` from the standard distribution.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from a half-open (`a..b`) or inclusive (`a..=b`)
    /// range.
    #[inline]
    fn random_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample_one(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Seedable generators. Only the `seed_from_u64` entry point this
/// workspace uses is modelled.
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed, expanding it into the
    /// full state deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, Infallible, SeedableRng, TryRng};

    /// The workspace's standard PRNG: xoshiro256** seeded via SplitMix64.
    ///
    /// Deterministic, `Clone`, fast; not cryptographic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut z = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                *slot = splitmix64(z);
            }
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    impl StdRng {
        #[inline]
        fn next(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s2n = s2 ^ s0;
            let mut s3n = s3 ^ s1;
            let s1n = s1 ^ s2n;
            let s0n = s0 ^ s3n;
            s2n ^= t;
            s3n = s3n.rotate_left(45);
            self.s = [s0n, s1n, s2n, s3n];
            result
        }
    }

    impl TryRng for StdRng {
        type Error = Infallible;

        #[inline]
        fn try_next_u32(&mut self) -> Result<u32, Infallible> {
            Ok((self.next() >> 32) as u32)
        }

        #[inline]
        fn try_next_u64(&mut self) -> Result<u64, Infallible> {
            Ok(self.next())
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Infallible> {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let bytes = self.next().to_le_bytes();
                rem.copy_from_slice(&bytes[..rem.len()]);
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn random_f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = r.random_range(3usize..17);
            assert!((3..17).contains(&x));
        }
        for _ in 0..1000 {
            let x = r.random_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn inclusive_range_covers_both_endpoints() {
        let mut r = StdRng::seed_from_u64(13);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let x = r.random_range(0usize..=3);
            seen[x] = true;
        }
        assert_eq!(seen, [true; 4]);
        assert_eq!(r.random_range(7u32..=7), 7, "degenerate range is its value");
        let _ = r.random_range(0u64..=u64::MAX); // full width must not overflow
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
