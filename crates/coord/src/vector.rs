//! Plain Euclidean vector helpers over `&[f64]` / `Vec<f64>`.
//!
//! These free functions back [`crate::Coordinate`] and are also used
//! directly by the NPS downhill-simplex solver, which optimizes raw
//! position vectors.

/// Euclidean norm `‖v‖`.
pub fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Euclidean distance `‖a − b‖`.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector dimensionality mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Component-wise `a − b`.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vector dimensionality mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Component-wise `a + b`.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vector dimensionality mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Scale `v` by `s`.
pub fn scale(v: &[f64], s: f64) -> Vec<f64> {
    v.iter().map(|x| x * s).collect()
}

/// Add `s * other` into `acc` in place.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn axpy(acc: &mut [f64], s: f64, other: &[f64]) {
    assert_eq!(acc.len(), other.len(), "vector dimensionality mismatch");
    for (a, &o) in acc.iter_mut().zip(other) {
        *a += s * o;
    }
}

/// Dot product.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector dimensionality mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Unit vector in the direction of `v`, or `None` for the zero vector.
pub fn unit(v: &[f64]) -> Option<Vec<f64>> {
    let n = norm(v);
    if n == 0.0 {
        None
    } else {
        Some(scale(v, 1.0 / n))
    }
}

/// Centroid (component-wise mean) of a set of equal-length vectors.
///
/// # Panics
/// Panics if `vs` is empty or dimensions are inconsistent.
pub fn centroid(vs: &[Vec<f64>]) -> Vec<f64> {
    assert!(!vs.is_empty(), "centroid of an empty set");
    // audit:allow(PANIC02): emptiness asserted on the line above (documented # Panics contract)
    let dim = vs[0].len();
    let mut acc = vec![0.0; dim];
    for v in vs {
        assert_eq!(v.len(), dim, "vector dimensionality mismatch");
        for (a, &x) in acc.iter_mut().zip(v) {
            *a += x;
        }
    }
    scale(&acc, 1.0 / vs.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn norm_of_pythagorean_triple() {
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(norm(&[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn distance_matches_norm_of_difference() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        assert_eq!(distance(&a, &b), 5.0);
        assert_eq!(distance(&a, &b), norm(&sub(&a, &b)));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = [1.5, -2.0, 0.25];
        let b = [0.5, 3.0, -1.25];
        assert_eq!(add(&sub(&a, &b), &b), a.to_vec());
    }

    #[test]
    fn axpy_accumulates() {
        let mut acc = vec![1.0, 1.0];
        axpy(&mut acc, 2.0, &[3.0, -1.0]);
        assert_eq!(acc, vec![7.0, -1.0]);
    }

    #[test]
    fn unit_has_norm_one() {
        let u = unit(&[3.0, 4.0]).expect("nonzero");
        assert!((norm(&u) - 1.0).abs() < 1e-12);
        assert_eq!(unit(&[0.0, 0.0]), None);
    }

    #[test]
    fn dot_orthogonal_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn centroid_of_square() {
        let c = centroid(&[
            vec![0.0, 0.0],
            vec![2.0, 0.0],
            vec![2.0, 2.0],
            vec![0.0, 2.0],
        ]);
        assert_eq!(c, vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn distance_rejects_mismatched_dims() {
        distance(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn triangle_inequality(
            a in proptest::collection::vec(-100f64..100.0, 3),
            b in proptest::collection::vec(-100f64..100.0, 3),
            c in proptest::collection::vec(-100f64..100.0, 3),
        ) {
            prop_assert!(distance(&a, &c) <= distance(&a, &b) + distance(&b, &c) + 1e-9);
        }

        #[test]
        fn distance_symmetric_nonnegative(
            a in proptest::collection::vec(-100f64..100.0, 4),
            b in proptest::collection::vec(-100f64..100.0, 4),
        ) {
            prop_assert!((distance(&a, &b) - distance(&b, &a)).abs() < 1e-12);
            prop_assert!(distance(&a, &b) >= 0.0);
            prop_assert!(distance(&a, &a) == 0.0);
        }

        #[test]
        fn scale_scales_norm(v in proptest::collection::vec(-100f64..100.0, 3), s in -10f64..10.0) {
            let scaled = scale(&v, s);
            prop_assert!((norm(&scaled) - s.abs() * norm(&v)).abs() < 1e-9);
        }

        #[test]
        fn cauchy_schwarz(
            a in proptest::collection::vec(-50f64..50.0, 5),
            b in proptest::collection::vec(-50f64..50.0, 5),
        ) {
            prop_assert!(dot(&a, &b).abs() <= norm(&a) * norm(&b) + 1e-9);
        }
    }
}
