//! Protocol-agnostic embedding abstractions.
//!
//! §2 of the paper reduces *any* embedding system to a sequence of
//! embedding steps: "each embedding step represents a coordinate
//! adjustment based on a one-to-one interaction with another node". The
//! fitness of a step is the **measured relative error**
//!
//! ```text
//! D_n = | ‖x_i − x_j‖ − RTT_ij | / RTT_ij
//! ```
//!
//! a dimensionless quantity common to every embedding method — which is
//! what lets a single Kalman model secure both Vivaldi and NPS. This
//! module defines that quantity and the [`Embedding`] trait through which
//! the generic detection protocol (in `ices-core`) drives a concrete
//! embedding system.

use crate::coordinate::Coordinate;
use serde::{Deserialize, Serialize};

/// Measured relative error of an embedding step:
/// `| estimated − measured | / measured`.
///
/// # Panics
/// Panics if `rtt_ms` is not strictly positive (a measured RTT of zero is
/// a broken measurement, not a valid observation).
pub fn relative_error(own: &Coordinate, peer: &Coordinate, rtt_ms: f64) -> f64 {
    assert!(
        rtt_ms > 0.0 && rtt_ms.is_finite(),
        "measured RTT must be positive and finite, got {rtt_ms}"
    );
    (own.distance(peer) - rtt_ms).abs() / rtt_ms
}

/// Everything an embedding node learns from one interaction with a peer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeerSample {
    /// Identifier of the peer node.
    pub peer: usize,
    /// The coordinate the peer *claims* (an attacker may lie here).
    pub peer_coord: Coordinate,
    /// The confidence/error estimate the peer claims (Vivaldi's `e_j`;
    /// attackers may lie here too, typically claiming high confidence).
    pub peer_error: f64,
    /// The RTT measured toward the peer, in milliseconds (an attacker can
    /// inflate this by delaying probe responses).
    pub rtt_ms: f64,
}

/// What happened when an embedding step was applied.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepOutcome {
    /// The measured relative error `D_n` the step observed.
    pub relative_error: f64,
    /// The node's local error estimate after the step.
    pub local_error: f64,
    /// Whether the step actually adjusted the coordinate (NPS buffers
    /// samples and only moves when a positioning round completes).
    pub moved: bool,
}

/// A node of an embedding system, reduced to the paper's step model.
///
/// Implementations: `ices-vivaldi`'s [`VivaldiNode`] applies every sample
/// immediately (spring relaxation); `ices-nps`'s [`NpsNode`] buffers
/// samples and repositions via downhill simplex when a round completes.
///
/// The detection protocol in `ices-core` sits *in front of* this trait:
/// it computes `D_n` from the sample, runs the innovation test, and only
/// calls [`Embedding::apply_step`] when the step is accepted.
///
/// [`VivaldiNode`]: https://docs.rs/ices-vivaldi
/// [`NpsNode`]: https://docs.rs/ices-nps
pub trait Embedding {
    /// The node's current coordinate.
    fn coordinate(&self) -> &Coordinate;

    /// The node's local error estimate `e_l ∈ [0, ~1+]` — its confidence
    /// in its own coordinate (lower is more confident).
    fn local_error(&self) -> f64;

    /// Measured relative error a prospective step would observe, without
    /// applying anything.
    fn probe(&self, sample: &PeerSample) -> f64 {
        relative_error(self.coordinate(), &sample.peer_coord, sample.rtt_ms)
    }

    /// Apply one embedding step (the sample has already been accepted by
    /// whatever filtering is in force).
    fn apply_step(&mut self, sample: &PeerSample) -> StepOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Space;
    use proptest::prelude::*;

    #[test]
    fn relative_error_zero_when_exact() {
        let a = Coordinate::euclidean(vec![0.0, 0.0]);
        let b = Coordinate::euclidean(vec![30.0, 40.0]);
        assert_eq!(relative_error(&a, &b, 50.0), 0.0);
    }

    #[test]
    fn relative_error_is_dimensionless_fraction() {
        let a = Coordinate::euclidean(vec![0.0, 0.0]);
        let b = Coordinate::euclidean(vec![60.0, 0.0]);
        // Estimated 60, measured 50 → |60−50|/50 = 0.2.
        assert!((relative_error(&a, &b, 50.0) - 0.2).abs() < 1e-12);
        // Estimated 60, measured 120 → 0.5 (underestimation counts too).
        assert!((relative_error(&a, &b, 120.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relative_error_includes_heights() {
        let a = Coordinate::new(vec![0.0, 0.0], 10.0);
        let b = Coordinate::new(vec![30.0, 40.0], 15.0);
        // Estimated = 50 + 25 = 75; measured 75 → 0.
        assert_eq!(relative_error(&a, &b, 75.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "measured RTT must be positive")]
    fn relative_error_rejects_zero_rtt() {
        let a = Coordinate::origin(Space::euclidean(2));
        relative_error(&a, &a.clone(), 0.0);
    }

    #[test]
    fn peer_sample_serde_roundtrip() {
        let s = PeerSample {
            peer: 42,
            peer_coord: Coordinate::new(vec![1.0, 2.0], 0.5),
            peer_error: 0.3,
            rtt_ms: 80.0,
        };
        let json = serde_json::to_string(&s).expect("serialize");
        let back: PeerSample = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(s, back);
    }

    proptest! {
        #[test]
        fn relative_error_nonnegative(
            pa in proptest::collection::vec(-500f64..500.0, 2),
            pb in proptest::collection::vec(-500f64..500.0, 2),
            rtt in 0.1f64..1000.0,
        ) {
            let a = Coordinate::euclidean(pa);
            let b = Coordinate::euclidean(pb);
            prop_assert!(relative_error(&a, &b, rtt) >= 0.0);
        }

        #[test]
        fn relative_error_symmetric_in_nodes(
            pa in proptest::collection::vec(-500f64..500.0, 3),
            pb in proptest::collection::vec(-500f64..500.0, 3),
            rtt in 0.1f64..1000.0,
        ) {
            let a = Coordinate::euclidean(pa);
            let b = Coordinate::euclidean(pb);
            let d1 = relative_error(&a, &b, rtt);
            let d2 = relative_error(&b, &a, rtt);
            prop_assert!((d1 - d2).abs() < 1e-12);
        }
    }
}
