//! Network coordinates with optional height vectors.
//!
//! Implements the height-vector algebra of the Vivaldi paper:
//!
//! ```text
//! [x₁, h₁] − [x₂, h₂] = [x₁ − x₂, h₁ + h₂]
//! ‖[x, h]‖            = ‖x‖ + h
//! α · [x, h]          = [α·x, α·h]
//! ```
//!
//! With `height = 0` everywhere these reduce to ordinary Euclidean
//! algebra, so the same type serves NPS's 8-d space.

use crate::space::Space;
use crate::vector;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// A coordinate in an embedding space: a Euclidean position plus a
/// non-negative height.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Coordinate {
    position: Vec<f64>,
    height: f64,
}

impl Coordinate {
    /// The origin of the given space (zero position, zero height).
    pub fn origin(space: Space) -> Self {
        Self {
            position: vec![0.0; space.dims()],
            height: 0.0,
        }
    }

    /// Construct from an explicit position and height.
    ///
    /// # Panics
    /// Panics if the position is empty, any component is non-finite, or
    /// the height is negative or non-finite.
    pub fn new(position: Vec<f64>, height: f64) -> Self {
        assert!(
            !position.is_empty(),
            "coordinate needs at least one dimension"
        );
        assert!(
            position.iter().all(|x| x.is_finite()),
            "coordinate components must be finite"
        );
        assert!(
            height.is_finite() && height >= 0.0,
            "height must be finite and non-negative, got {height}"
        );
        Self { position, height }
    }

    /// Construct a pure-Euclidean coordinate (zero height).
    pub fn euclidean(position: Vec<f64>) -> Self {
        Self::new(position, 0.0)
    }

    /// A random coordinate with components in `[-radius, radius)` and, if
    /// the space uses heights, a height in `[0, radius/10)`. Used to break
    /// symmetry when all nodes start at the origin.
    pub fn random<R: Rng + ?Sized>(space: Space, radius: f64, rng: &mut R) -> Self {
        let position = (0..space.dims())
            .map(|_| rng.random::<f64>() * 2.0 * radius - radius)
            .collect();
        let height = if space.uses_height() {
            rng.random::<f64>() * radius / 10.0
        } else {
            0.0
        };
        Self { position, height }
    }

    /// Euclidean position (without the height component).
    pub fn position(&self) -> &[f64] {
        &self.position
    }

    /// Height component (0 in pure Euclidean spaces).
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Number of Euclidean dimensions.
    pub fn dims(&self) -> usize {
        self.position.len()
    }

    /// Vivaldi vector magnitude: `‖x‖ + h`.
    pub fn magnitude(&self) -> f64 {
        vector::norm(&self.position) + self.height
    }

    /// Estimated RTT between two coordinates:
    /// `‖x_a − x_b‖ + h_a + h_b` (plain Euclidean distance when heights
    /// are zero).
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn distance(&self, other: &Coordinate) -> f64 {
        vector::distance(&self.position, &other.position) + self.height + other.height
    }

    /// The displacement `self − other` under height-vector algebra: the
    /// positional difference with the heights *added* (a displacement
    /// "through the core", per the Vivaldi paper).
    pub fn displacement(&self, other: &Coordinate) -> Coordinate {
        Coordinate {
            position: vector::sub(&self.position, &other.position),
            height: self.height + other.height,
        }
    }

    /// Unit displacement from `other` toward `self`, i.e. the direction a
    /// spring between the two nodes pushes `self`. When the two positions
    /// coincide a random direction is drawn (Vivaldi's rule for colocated
    /// nodes).
    pub fn direction_from<R: Rng + ?Sized>(&self, other: &Coordinate, rng: &mut R) -> Coordinate {
        let diff = self.displacement(other);
        let mag = diff.magnitude();
        if mag > 0.0 && vector::norm(&diff.position) > 0.0 {
            diff.scaled(1.0 / mag)
        } else {
            // Colocated: pick a uniformly random unit direction.
            loop {
                let v: Vec<f64> = (0..self.position.len())
                    .map(|_| rng.random::<f64>() * 2.0 - 1.0)
                    .collect();
                let n = vector::norm(&v);
                if n > 1e-6 && n <= 1.0 {
                    return Coordinate {
                        position: vector::scale(&v, 1.0 / n),
                        height: 0.0,
                    };
                }
            }
        }
    }

    /// Scale position and height by `s` (heights are clamped at zero if
    /// the scale is negative, since heights cannot go negative).
    pub fn scaled(&self, s: f64) -> Coordinate {
        let out = Coordinate {
            position: vector::scale(&self.position, s),
            height: (self.height * s).max(0.0),
        };
        debug_assert!(out.is_finite(), "scaling by {s} produced a non-finite coordinate");
        out
    }

    /// Move this coordinate by `delta = s · direction` (Vivaldi's update
    /// `x_i ← x_i + δ · u`). The height moves with the delta's height
    /// component and is clamped to stay non-negative.
    pub fn apply_force(&mut self, s: f64, direction: &Coordinate) {
        assert_eq!(
            self.position.len(),
            direction.position.len(),
            "dimensionality mismatch"
        );
        vector::axpy(&mut self.position, s, &direction.position);
        self.height = (self.height + s * direction.height).max(0.0);
        debug_assert!(
            self.is_finite(),
            "coordinate went non-finite under force {s} (direction magnitude {})",
            direction.magnitude()
        );
        debug_assert!(self.height >= 0.0, "height clamped below zero");
    }

    /// Replace the coordinate wholesale (used when a solver like NPS's
    /// downhill simplex produces a new position).
    pub fn set_position(&mut self, position: Vec<f64>) {
        assert_eq!(
            self.position.len(),
            position.len(),
            "dimensionality mismatch"
        );
        assert!(
            position.iter().all(|x| x.is_finite()),
            "coordinate components must be finite"
        );
        self.position = position;
    }

    /// Raise the height to at least `min` (Vivaldi keeps a small positive
    /// height floor so the height dimension can always recover — zero is
    /// otherwise nearly absorbing under the clamped force updates).
    ///
    /// # Panics
    /// Panics if `min` is negative or non-finite.
    pub fn clamp_height_min(&mut self, min: f64) {
        assert!(
            min.is_finite() && min >= 0.0,
            "height floor must be finite and non-negative, got {min}"
        );
        if self.height < min {
            self.height = min;
        }
    }

    /// Whether every component (and the height) is finite.
    pub fn is_finite(&self) -> bool {
        self.position.iter().all(|x| x.is_finite()) && self.height.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn origin_is_zero() {
        let c = Coordinate::origin(Space::with_height(2));
        assert_eq!(c.position(), &[0.0, 0.0]);
        assert_eq!(c.height(), 0.0);
        assert_eq!(c.magnitude(), 0.0);
    }

    #[test]
    fn distance_includes_heights() {
        let a = Coordinate::new(vec![0.0, 0.0], 10.0);
        let b = Coordinate::new(vec![3.0, 4.0], 20.0);
        assert_eq!(a.distance(&b), 5.0 + 10.0 + 20.0);
    }

    #[test]
    fn euclidean_distance_without_heights() {
        let a = Coordinate::euclidean(vec![1.0, 0.0, 0.0]);
        let b = Coordinate::euclidean(vec![0.0, 0.0, 0.0]);
        assert_eq!(a.distance(&b), 1.0);
    }

    #[test]
    fn displacement_adds_heights() {
        let a = Coordinate::new(vec![5.0, 0.0], 2.0);
        let b = Coordinate::new(vec![1.0, 0.0], 3.0);
        let d = a.displacement(&b);
        assert_eq!(d.position(), &[4.0, 0.0]);
        assert_eq!(d.height(), 5.0);
        assert_eq!(d.magnitude(), 9.0);
    }

    #[test]
    fn direction_is_unit_magnitude() {
        let a = Coordinate::new(vec![5.0, 1.0], 2.0);
        let b = Coordinate::new(vec![1.0, -2.0], 1.0);
        let u = a.direction_from(&b, &mut rng());
        assert!((u.magnitude() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn colocated_direction_is_random_unit() {
        let a = Coordinate::new(vec![1.0, 1.0], 0.5);
        let mut r = rng();
        let u1 = a.direction_from(&a.clone(), &mut r);
        let u2 = a.direction_from(&a.clone(), &mut r);
        assert!((u1.magnitude() - 1.0).abs() < 1e-12);
        assert_ne!(u1.position(), u2.position(), "directions should differ");
    }

    #[test]
    fn apply_force_moves_toward_direction() {
        let mut a = Coordinate::new(vec![0.0, 0.0], 1.0);
        let dir = Coordinate::new(vec![1.0, 0.0], 0.5);
        a.apply_force(2.0, &dir);
        assert_eq!(a.position(), &[2.0, 0.0]);
        assert_eq!(a.height(), 2.0);
    }

    #[test]
    fn apply_negative_force_clamps_height() {
        let mut a = Coordinate::new(vec![0.0, 0.0], 0.1);
        let dir = Coordinate::new(vec![1.0, 0.0], 1.0);
        a.apply_force(-5.0, &dir);
        assert_eq!(a.height(), 0.0, "height must not go negative");
    }

    #[test]
    fn random_respects_space() {
        let mut r = rng();
        let c = Coordinate::random(Space::euclidean(8), 100.0, &mut r);
        assert_eq!(c.dims(), 8);
        assert_eq!(c.height(), 0.0);
        let ch = Coordinate::random(Space::with_height(2), 100.0, &mut r);
        assert!(ch.height() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "height must be finite and non-negative")]
    fn rejects_negative_height() {
        Coordinate::new(vec![0.0], -1.0);
    }

    #[test]
    fn serde_roundtrip() {
        let c = Coordinate::new(vec![1.5, -2.5], 3.25);
        let json = serde_json::to_string(&c).expect("serialize");
        let back: Coordinate = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(c, back);
    }

    proptest! {
        #[test]
        fn distance_symmetric(
            pa in proptest::collection::vec(-100f64..100.0, 2),
            pb in proptest::collection::vec(-100f64..100.0, 2),
            ha in 0f64..50.0,
            hb in 0f64..50.0,
        ) {
            let a = Coordinate::new(pa, ha);
            let b = Coordinate::new(pb, hb);
            prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
            prop_assert!(a.distance(&b) >= 0.0);
        }

        #[test]
        fn self_distance_is_twice_height(
            p in proptest::collection::vec(-100f64..100.0, 3),
            h in 0f64..50.0,
        ) {
            // Height models the access link: even to "itself" in the space,
            // distance counts both heights — matching Vivaldi's semantics
            // where distance(a, a) = 2h, not 0.
            let a = Coordinate::new(p, h);
            prop_assert!((a.distance(&a.clone()) - 2.0 * h).abs() < 1e-12);
        }

        #[test]
        fn triangle_inequality_with_heights(
            pa in proptest::collection::vec(-100f64..100.0, 2),
            pb in proptest::collection::vec(-100f64..100.0, 2),
            pc in proptest::collection::vec(-100f64..100.0, 2),
            ha in 0f64..20.0, hb in 0f64..20.0, hc in 0f64..20.0,
        ) {
            // Height vectors preserve the triangle inequality (the
            // intermediate node's height is counted twice on the two-hop
            // path, only helping the inequality).
            let a = Coordinate::new(pa, ha);
            let b = Coordinate::new(pb, hb);
            let c = Coordinate::new(pc, hc);
            prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
        }

        #[test]
        fn direction_always_unit(
            pa in proptest::collection::vec(-100f64..100.0, 2),
            pb in proptest::collection::vec(-100f64..100.0, 2),
            ha in 0f64..20.0, hb in 0f64..20.0,
        ) {
            let a = Coordinate::new(pa, ha);
            let b = Coordinate::new(pb, hb);
            let mut r = rng();
            let u = a.direction_from(&b, &mut r);
            prop_assert!((u.magnitude() - 1.0).abs() < 1e-9);
        }
    }
}
