//! Coordinate-space geometry for Internet coordinate embedding systems.
//!
//! Both embedding systems the paper evaluates live here as geometry:
//!
//! * Vivaldi uses a **2-dimensional Euclidean space augmented with a height
//!   vector** (Dabek et al., SIGCOMM 2004): the height models the access
//!   link a packet must traverse regardless of direction, so distances are
//!   `‖x_a − x_b‖ + h_a + h_b`.
//! * NPS uses a plain **8-dimensional Euclidean space**.
//!
//! [`Coordinate`] implements the height-vector algebra of the Vivaldi
//! paper (subtraction adds heights, norm adds the height, scaling scales
//! it) and degenerates to ordinary Euclidean algebra when heights are
//! zero, so a single type serves both systems.
//!
//! The crate also defines the [`embedding`] abstractions shared by the
//! workspace: the *measured relative error* `D_n = |‖x_i − x_j‖ − RTT| /
//! RTT` that is "at the very core of any embedding method" (§2 of the
//! paper), and the [`embedding::Embedding`] trait through which the
//! detection protocol of `ices-core` drives any embedding system.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinate;
pub mod embedding;
pub mod space;
pub mod vector;

pub use coordinate::Coordinate;
pub use embedding::{relative_error, Embedding, PeerSample, StepOutcome};
pub use space::Space;
