//! Geometric-space descriptors.

use serde::{Deserialize, Serialize};

/// Description of the geometric space an embedding system operates in.
///
/// The paper's Vivaldi experiments use `Space::with_height(2)` (a
/// 2-dimensional Euclidean space augmented with a height vector) and the
/// NPS experiments use `Space::euclidean(8)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Space {
    dims: usize,
    height: bool,
}

impl Space {
    /// A plain Euclidean space of `dims` dimensions.
    ///
    /// # Panics
    /// Panics if `dims` is zero.
    pub fn euclidean(dims: usize) -> Self {
        assert!(dims > 0, "a space needs at least one dimension");
        Self {
            dims,
            height: false,
        }
    }

    /// A Euclidean space of `dims` dimensions augmented with a height
    /// vector (Vivaldi's model of the access-link delay).
    ///
    /// # Panics
    /// Panics if `dims` is zero.
    pub fn with_height(dims: usize) -> Self {
        assert!(dims > 0, "a space needs at least one dimension");
        Self { dims, height: true }
    }

    /// Number of Euclidean dimensions (excluding the height component).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Whether coordinates carry a height component.
    pub fn uses_height(&self) -> bool {
        self.height
    }

    /// The paper's Vivaldi configuration: 2-d + height.
    pub fn vivaldi_default() -> Self {
        Self::with_height(2)
    }

    /// The paper's NPS configuration: 8-d Euclidean.
    pub fn nps_default() -> Self {
        Self::euclidean(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let e = Space::euclidean(8);
        assert_eq!(e.dims(), 8);
        assert!(!e.uses_height());
        let h = Space::with_height(2);
        assert_eq!(h.dims(), 2);
        assert!(h.uses_height());
    }

    #[test]
    fn paper_defaults() {
        assert_eq!(Space::vivaldi_default(), Space::with_height(2));
        assert_eq!(Space::nps_default(), Space::euclidean(8));
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn rejects_zero_dims() {
        Space::euclidean(0);
    }

    #[test]
    fn serde_roundtrip() {
        let s = Space::with_height(3);
        let json = serde_json::to_string(&s).expect("serialize");
        let back: Space = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(s, back);
    }
}
