//! The service daemon: socket-free protocol core + UDP front end.
//!
//! [`ServiceCore`] is the entire protocol: decode, dispatch, vet,
//! reply. It holds no socket and reads no clock — `process_batch`
//! takes raw datagrams and a `now` timestamp, and returns raw reply
//! datagrams. That keeps every security decision unit-testable (and
//! keeps the OS surface down in [`Daemon`], which is nothing but a
//! recv/dispatch/send loop).
//!
//! Claim intake is **batched**: all `UpdateClaim`s of one poll cycle
//! are queued and vetted in a single [`vet_sequences`] sweep over the
//! persistent [`DetectorBank`] — the same SoA path the simulations run,
//! so the daemon's accept/reject behavior is the library's, not a
//! reimplementation.
//!
//! Failure policy mirrors the journal's: a malformed datagram can cost
//! at most one typed [`Message::Error`] reply; nothing a client sends
//! can panic the daemon (see `crates/core/tests/wire_prop.rs` and the
//! loopback suite).

use ices_core::wire::{self, decode, encode, Disposition, Message};
use ices_core::{
    vet_sequences, Certifier, CoordinateCertificate, DetectorBank, SecureNode, SecureStep,
    SecurityConfig, SurveyorInfo, SurveyorRegistry, VetEvent,
};
use ices_coord::{Coordinate, Embedding, PeerSample, StepOutcome};
use ices_obs::{names, Clock, CounterId, Journal, Registry, Snapshot};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::Duration;

/// Tuning and security knobs of a daemon instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Embedding dimensionality of the daemon's own coordinate.
    pub dims: usize,
    /// Shared certificate-authentication key (stand-in for per-issuer
    /// keypairs, same caveat as `ices_core::certify`).
    pub auth_key: u64,
    /// Certificate validity period, in clock units (ms under
    /// [`crate::ServiceClock`]).
    pub cert_ttl: u64,
    /// Largest tolerated relative disagreement when issuing
    /// certificates.
    pub cert_tolerance: f64,
    /// Detection-protocol knobs for the secured-update intake.
    pub security: SecurityConfig,
    /// Shared secret required by [`Message::Shutdown`].
    pub shutdown_token: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            dims: 2,
            auth_key: 0x1CE5_C0DE,
            cert_ttl: 60_000,
            cert_tolerance: 0.5,
            security: SecurityConfig::paper_default(),
            shutdown_token: 0,
        }
    }
}

/// The daemon's own embedding state, as seen by the detection
/// protocol. The service coordinate is fixed (the daemon is
/// infrastructure, not a peer adjusting its position), so `apply_step`
/// only tracks the EWMA local error the reprieve test consumes.
#[derive(Debug, Clone)]
struct ServiceEmbedding {
    coordinate: Coordinate,
    local_error: f64,
}

impl Embedding for ServiceEmbedding {
    fn coordinate(&self) -> &Coordinate {
        &self.coordinate
    }

    fn local_error(&self) -> f64 {
        self.local_error
    }

    fn apply_step(&mut self, sample: &PeerSample) -> StepOutcome {
        let d = ices_coord::relative_error(&self.coordinate, &sample.peer_coord, sample.rtt_ms);
        // Vivaldi-style confidence blend, with the coordinate pinned.
        self.local_error = 0.9 * self.local_error + 0.1 * d.min(1.0);
        StepOutcome {
            relative_error: d,
            local_error: self.local_error,
            moved: false,
        }
    }
}

/// Service counter handles, registered once at construction so the hot
/// path is all `Vec` index increments.
#[derive(Debug, Clone, Copy)]
struct Counters {
    rx: CounterId,
    tx: CounterId,
    decode_errors: CounterId,
    probes: CounterId,
    calibrations: CounterId,
    registrations: CounterId,
    claims: CounterId,
    accepted: CounterId,
    reprieved: CounterId,
    rejected: CounterId,
    certs_issued: CounterId,
    bad_certs: CounterId,
    not_ready: CounterId,
}

impl Counters {
    fn register(reg: &mut Registry) -> Self {
        Self {
            rx: reg.counter(names::SVC_RX),
            tx: reg.counter(names::SVC_TX),
            decode_errors: reg.counter(names::SVC_DECODE_ERRORS),
            probes: reg.counter(names::SVC_PROBES),
            calibrations: reg.counter(names::SVC_CALIBRATIONS),
            registrations: reg.counter(names::SVC_REGISTRATIONS),
            claims: reg.counter(names::SVC_CLAIMS),
            accepted: reg.counter(names::SVC_CLAIMS_ACCEPTED),
            reprieved: reg.counter(names::SVC_CLAIMS_REPRIEVED),
            rejected: reg.counter(names::SVC_CLAIMS_REJECTED),
            certs_issued: reg.counter(names::SVC_CERTS_ISSUED),
            bad_certs: reg.counter(names::SVC_BAD_CERTS),
            not_ready: reg.counter(names::SVC_NOT_READY),
        }
    }
}

/// One claim queued for the batched vetting sweep.
struct PendingClaim {
    /// Index into the batch's reply slots.
    slot: usize,
    nonce: u64,
    sample: PeerSample,
}

/// The socket-free protocol engine. See the module docs.
pub struct ServiceCore {
    config: ServiceConfig,
    /// The daemon's own coordinate. Height 1.0 (not 0): the implied
    /// self-distance `2·height` must be a positive RTT so the daemon
    /// can self-certify through the same `Certifier::issue` path every
    /// other certificate takes.
    coordinate: Coordinate,
    surveyors: SurveyorRegistry,
    /// Armed by the first successful Surveyor registration.
    certifier: Option<Certifier>,
    /// The secured-update intake: one service-side node whose detector
    /// vets every inbound claim. Armed with the first Surveyor's
    /// calibrated parameters.
    node: Option<SecureNode<ServiceEmbedding>>,
    bank: DetectorBank,
    registry: Registry,
    counters: Counters,
    journal: Option<Journal>,
    /// Counter snapshot at the last journal tick.
    journaled: Snapshot,
    batches: u64,
    shutdown: bool,
}

impl ServiceCore {
    /// Build a core with the given config and no journal.
    pub fn new(config: ServiceConfig) -> Self {
        let mut registry = Registry::new();
        let counters = Counters::register(&mut registry);
        let dims = config.dims.max(1);
        Self {
            coordinate: Coordinate::new(vec![0.0; dims], 1.0),
            config,
            surveyors: SurveyorRegistry::new(),
            certifier: None,
            node: None,
            bank: DetectorBank::with_tier(false),
            journaled: registry.snapshot(),
            registry,
            counters,
            journal: None,
            batches: 0,
            shutdown: false,
        }
    }

    /// Attach a journal; `now` stamps the opening `meta` line.
    pub fn with_journal(mut self, mut journal: Journal, now: u64) -> Self {
        journal.meta(now, "svc", 1, self.config.auth_key);
        journal.flush();
        self.journaled = self.registry.snapshot();
        self.journal = Some(journal);
        self
    }

    /// The daemon's own coordinate claim.
    pub fn coordinate(&self) -> &Coordinate {
        &self.coordinate
    }

    /// Whether a valid [`Message::Shutdown`] has been processed.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// Counter name/value pairs, registration order.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.registry
            .counters()
            .map(|(name, v)| (name.to_string(), v))
            .collect()
    }

    /// Process one poll cycle's datagrams: immediate replies for
    /// probes/calibration/registration/stats, one batched vetting
    /// sweep for every claim in the cycle. Returns one optional reply
    /// datagram per input, in order.
    pub fn process_batch(&mut self, datagrams: &[&[u8]], now: u64) -> Vec<Option<Vec<u8>>> {
        let mut replies: Vec<Option<Message>> = vec![None; datagrams.len()];
        let mut claims: Vec<PendingClaim> = Vec::new();

        for (slot, raw) in datagrams.iter().enumerate() {
            self.registry.inc(self.counters.rx);
            match decode(raw) {
                Ok(msg) => {
                    if let Some(reply) = self.dispatch(msg, slot, now, &mut claims) {
                        replies[slot] = Some(reply);
                    }
                }
                Err(e) => {
                    self.registry.inc(self.counters.decode_errors);
                    replies[slot] = Some(Message::Error { code: e.code() });
                }
            }
        }

        self.vet_claims(claims, &mut replies);
        self.journal_tick(now);

        replies
            .into_iter()
            .map(|msg| {
                let msg = msg?;
                match encode(&msg) {
                    Ok(bytes) => {
                        self.registry.inc(self.counters.tx);
                        Some(bytes)
                    }
                    // An unencodable reply is a daemon bug, but the
                    // failure policy still holds: drop, don't panic.
                    Err(_) => None,
                }
            })
            .collect()
    }

    /// Route one well-formed message. Claims are queued, everything
    /// else is answered immediately.
    fn dispatch(
        &mut self,
        msg: Message,
        slot: usize,
        now: u64,
        claims: &mut Vec<PendingClaim>,
    ) -> Option<Message> {
        match msg {
            Message::ProbeRequest { nonce } => {
                self.registry.inc(self.counters.probes);
                let certificate = self.self_certificate(now);
                let local_error = self
                    .node
                    .as_ref()
                    .map_or(0.0, |n| n.inner().local_error());
                Some(Message::ProbeReply {
                    nonce,
                    coordinate: self.coordinate.clone(),
                    local_error,
                    certificate,
                })
            }
            Message::CalibrationRequest { coordinate, .. } => {
                self.registry.inc(self.counters.calibrations);
                let chosen = match &coordinate {
                    Some(c) => self.surveyors.closest_by_coordinate(c),
                    None => self.surveyors.all().first(),
                };
                match chosen {
                    Some(info) => Some(Message::CalibrationReply {
                        surveyor: info.id as u64,
                        params: info.params,
                        issued_at: now,
                    }),
                    None => Some(Message::Error {
                        code: wire::service_code::NO_SURVEYOR,
                    }),
                }
            }
            Message::SurveyorRegister {
                surveyor,
                coordinate,
                params,
            } => {
                let id = usize::try_from(surveyor).unwrap_or(usize::MAX);
                let registered = params.check().is_ok() && id != usize::MAX;
                if registered {
                    self.registry.inc(self.counters.registrations);
                    self.surveyors.register(SurveyorInfo {
                        id,
                        coordinate,
                        params,
                    });
                    // First registration arms certification and the
                    // secured-update intake with the calibrated params.
                    if self.certifier.is_none() {
                        self.certifier = Certifier::try_new(
                            id,
                            self.config.auth_key,
                            self.config.cert_ttl,
                            self.config.cert_tolerance,
                        )
                        .ok();
                    }
                    if self.node.is_none() {
                        self.node = Some(SecureNode::new(
                            ServiceEmbedding {
                                coordinate: self.coordinate.clone(),
                                local_error: 0.1,
                            },
                            params,
                            id,
                            self.config.security,
                        ));
                    }
                    if let Some(j) = self.journal.as_mut() {
                        j.node_event(now, "surveyor_register", id);
                    }
                }
                Some(Message::RegisterAck {
                    surveyor,
                    registered,
                })
            }
            Message::UpdateClaim {
                client,
                nonce,
                coordinate,
                peer_error,
                rtt_ms,
                certificate,
            } => {
                self.registry.inc(self.counters.claims);
                if let Some(cert) = &certificate {
                    if !self.certificate_ok(cert, &coordinate, now) {
                        self.registry.inc(self.counters.bad_certs);
                        return Some(Message::UpdateVerdict {
                            nonce,
                            disposition: Disposition::BadCertificate,
                            innovation: 0.0,
                            threshold: 0.0,
                        });
                    }
                }
                if self.node.is_none() {
                    self.registry.inc(self.counters.not_ready);
                    return Some(Message::UpdateVerdict {
                        nonce,
                        disposition: Disposition::NotReady,
                        innovation: 0.0,
                        threshold: 0.0,
                    });
                }
                claims.push(PendingClaim {
                    slot,
                    nonce,
                    sample: PeerSample {
                        peer: usize::try_from(client).unwrap_or(usize::MAX),
                        peer_coord: coordinate,
                        peer_error,
                        rtt_ms,
                    },
                });
                None // answered by the batched sweep
            }
            Message::StatsRequest => Some(Message::StatsReply {
                counters: self.counters(),
            }),
            Message::Shutdown { token } => {
                if token == self.config.shutdown_token {
                    self.shutdown = true;
                    self.journal_summary(now);
                    Some(Message::StatsReply {
                        counters: self.counters(),
                    })
                } else {
                    Some(Message::Error {
                        code: wire::service_code::BAD_TOKEN,
                    })
                }
            }
            // Reply-typed messages are not requests; answer with the
            // same typed-error channel malformed datagrams use.
            Message::ProbeReply { .. }
            | Message::CalibrationReply { .. }
            | Message::RegisterAck { .. }
            | Message::UpdateVerdict { .. }
            | Message::StatsReply { .. }
            | Message::Error { .. } => Some(Message::Error {
                code: wire::service_code::UNEXPECTED,
            }),
        }
    }

    /// Run the cycle's queued claims through one `vet_sequences` sweep
    /// (a single service-side node; its sequence is the claims in
    /// arrival order) and fill in the verdict replies.
    fn vet_claims(&mut self, claims: Vec<PendingClaim>, replies: &mut [Option<Message>]) {
        if claims.is_empty() {
            return;
        }
        let Some(node) = self.node.as_mut() else {
            return; // dispatch() only queues claims while armed
        };
        let events: Vec<VetEvent> = claims
            .iter()
            .map(|c| VetEvent::Sample(c.sample.clone()))
            .collect();
        let steps = vet_sequences(&mut self.bank, &mut [node], &[events]);
        let steps = steps.into_iter().next().unwrap_or_default();
        for (claim, step) in claims.into_iter().zip(steps) {
            let (disposition, innovation, threshold) = match &step {
                Some(SecureStep::Accepted { verdict, .. }) => {
                    self.registry.inc(self.counters.accepted);
                    (Disposition::Accepted, verdict.innovation, verdict.threshold)
                }
                Some(SecureStep::Reprieved { verdict, .. }) => {
                    self.registry.inc(self.counters.reprieved);
                    (Disposition::Reprieved, verdict.innovation, verdict.threshold)
                }
                Some(SecureStep::Rejected { verdict }) => {
                    self.registry.inc(self.counters.rejected);
                    (Disposition::Rejected, verdict.innovation, verdict.threshold)
                }
                None => (Disposition::NotReady, 0.0, 0.0),
            };
            if let Some(out) = replies.get_mut(claim.slot) {
                *out = Some(Message::UpdateVerdict {
                    nonce: claim.nonce,
                    disposition,
                    innovation,
                    threshold,
                });
            }
        }
    }

    /// A certificate over the daemon's own coordinate, when armed. The
    /// implied self-distance is `2·height` (> 0 by construction), and
    /// the daemon "measures" exactly that — zero disagreement, so
    /// issuance succeeds whenever the certifier exists.
    fn self_certificate(&mut self, now: u64) -> Option<CoordinateCertificate> {
        let certifier = self.certifier.as_ref()?;
        let implied = self.coordinate.distance(&self.coordinate);
        let cert = certifier
            .issue(0, &self.coordinate, &self.coordinate, implied, now)
            .ok()?;
        self.registry.inc(self.counters.certs_issued);
        Some(cert)
    }

    /// Verify a claim-attached certificate: valid tag and freshness,
    /// and it must actually cover the coordinate being claimed.
    fn certificate_ok(&self, cert: &CoordinateCertificate, claimed: &Coordinate, now: u64) -> bool {
        let Some(certifier) = self.certifier.as_ref() else {
            return false; // nothing to verify against yet
        };
        certifier.verify(cert, now).is_ok() && &cert.coordinate == claimed
    }

    /// Journal a `tick` line of counter deltas every few batches, so a
    /// killed daemon loses at most one flush window (the satellite-1
    /// contract: the flushed prefix is always whole lines).
    fn journal_tick(&mut self, now: u64) {
        self.batches += 1;
        if !self.batches.is_multiple_of(64) {
            return;
        }
        let Some(journal) = self.journal.as_mut() else {
            return;
        };
        let deltas = self.registry.delta(&self.journaled);
        journal.tick(now, &deltas, &[]);
        journal.flush();
        self.journaled = self.registry.snapshot();
    }

    /// Journal the closing `summary` line and flush — the daemon's
    /// shutdown path.
    fn journal_summary(&mut self, now: u64) {
        let Some(journal) = self.journal.as_mut() else {
            return;
        };
        let counters: Vec<(&'static str, u64)> = self.registry.counters().collect();
        journal.summary(now, &counters, &[]);
        journal.flush();
    }
}

/// Most datagrams drained per poll cycle before a vetting sweep runs.
const BATCH_MAX: usize = 64;

/// How long one `recv` waits before the loop re-checks for shutdown.
const POLL_TIMEOUT: Duration = Duration::from_millis(2);

/// The UDP front end: a bound socket, a clock, and a recv/dispatch/send
/// loop around [`ServiceCore::process_batch`].
pub struct Daemon {
    core: ServiceCore,
    socket: UdpSocket,
    clock: ServiceClockBox,
}

/// The daemon's clock, boxed so tests can substitute `TickClock`.
type ServiceClockBox = Box<dyn Clock + Send>;

impl Daemon {
    /// Bind to `addr` (use port 0 for an ephemeral port) with a real
    /// wall clock.
    pub fn bind(addr: impl ToSocketAddrs, config: ServiceConfig) -> io::Result<Self> {
        Self::bind_with_clock(addr, config, Box::new(crate::ServiceClock::new()))
    }

    /// Bind with an explicit clock (tests use `ices_obs::TickClock`).
    pub fn bind_with_clock(
        addr: impl ToSocketAddrs,
        config: ServiceConfig,
        clock: ServiceClockBox,
    ) -> io::Result<Self> {
        let socket = UdpSocket::bind(addr)?;
        socket.set_read_timeout(Some(POLL_TIMEOUT))?;
        Ok(Self {
            core: ServiceCore::new(config),
            socket,
            clock,
        })
    }

    /// Attach a journal to the daemon's core.
    pub fn with_journal(mut self, journal: Journal) -> Self {
        let now = self.clock.now();
        self.core = self.core.with_journal(journal, now);
        self
    }

    /// The bound address (clients need the ephemeral port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Shared access to the protocol core (tests, stats).
    pub fn core(&self) -> &ServiceCore {
        &self.core
    }

    /// Serve until a valid [`Message::Shutdown`] arrives. Each cycle
    /// drains up to [`BATCH_MAX`] datagrams (blocking at most
    /// [`POLL_TIMEOUT`] for the first), vets, replies.
    pub fn run(&mut self) -> io::Result<()> {
        // One receive buffer, one byte larger than the wire cap so an
        // oversized datagram is *detected* (recv fills > MAX_DATAGRAM
        // bytes -> decode refuses) rather than silently truncated.
        let mut buf = [0u8; wire::MAX_DATAGRAM + 1];
        let mut datagrams: Vec<(Vec<u8>, SocketAddr)> = Vec::with_capacity(BATCH_MAX);
        while !self.core.shutdown_requested() {
            datagrams.clear();
            // Block (briefly) for the first datagram of the cycle...
            match self.socket.recv_from(&mut buf) {
                Ok((len, from)) => datagrams.push((buf[..len].to_vec(), from)),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(e) => return Err(e),
            }
            // ...then drain whatever else is already queued without
            // waiting: latency stays at syscall scale while bursts
            // still coalesce into one vetting sweep.
            self.socket.set_nonblocking(true)?;
            while datagrams.len() < BATCH_MAX {
                match self.socket.recv_from(&mut buf) {
                    Ok((len, from)) => datagrams.push((buf[..len].to_vec(), from)),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) => {
                        let _ = self.socket.set_nonblocking(false);
                        return Err(e);
                    }
                }
            }
            self.socket.set_nonblocking(false)?;
            let now = self.clock.now();
            let raw: Vec<&[u8]> = datagrams.iter().map(|(d, _)| d.as_slice()).collect();
            let replies = self.core.process_batch(&raw, now);
            for (reply, (_, from)) in replies.into_iter().zip(datagrams.iter()) {
                if let Some(bytes) = reply {
                    // A vanished client must not stop the loop.
                    let _ = self.socket.send_to(&bytes, from);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ices_core::StateSpaceParams;

    fn params() -> StateSpaceParams {
        StateSpaceParams {
            beta: 0.8,
            v_w: 0.001,
            v_u: 0.001,
            w_bar: 0.02,
            w0: 0.1,
            p0: 0.01,
        }
    }

    fn one(core: &mut ServiceCore, msg: &Message, now: u64) -> Message {
        let bytes = encode(msg).unwrap_or_else(|e| panic!("{e}"));
        let replies = core.process_batch(&[&bytes], now);
        let reply = replies
            .into_iter()
            .next()
            .flatten()
            .unwrap_or_else(|| panic!("no reply to {msg:?}"));
        decode(&reply).unwrap_or_else(|e| panic!("{e}"))
    }

    fn register_surveyor(core: &mut ServiceCore) {
        let ack = one(
            core,
            &Message::SurveyorRegister {
                surveyor: 7,
                coordinate: Coordinate::new(vec![10.0, 10.0], 0.5),
                params: params(),
            },
            0,
        );
        assert_eq!(
            ack,
            Message::RegisterAck {
                surveyor: 7,
                registered: true
            }
        );
    }

    fn claim(client: u64, nonce: u64, daemon: &Coordinate, delta: f64) -> Message {
        // Claim a coordinate whose implied distance disagrees with the
        // reported RTT by exactly `delta` relative error.
        let coord = Coordinate::new(vec![50.0, 0.0], 0.0);
        let implied = daemon.distance(&coord);
        Message::UpdateClaim {
            client,
            nonce,
            coordinate: coord,
            peer_error: 0.2,
            rtt_ms: implied / (1.0 + delta),
            certificate: None,
        }
    }

    #[test]
    fn probe_has_no_certificate_until_a_surveyor_registers() {
        let mut core = ServiceCore::new(ServiceConfig::default());
        let reply = one(&mut core, &Message::ProbeRequest { nonce: 3 }, 0);
        match reply {
            Message::ProbeReply {
                nonce, certificate, ..
            } => {
                assert_eq!(nonce, 3);
                assert!(certificate.is_none());
            }
            other => panic!("unexpected reply {other:?}"),
        }
        register_surveyor(&mut core);
        let reply = one(&mut core, &Message::ProbeRequest { nonce: 4 }, 5);
        match reply {
            Message::ProbeReply { certificate, .. } => {
                let cert = certificate.unwrap_or_else(|| panic!("no certificate after arming"));
                assert_eq!(cert.issued_at, 5);
                assert_eq!(cert.issuer, 7);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn calibration_is_refused_then_served() {
        let mut core = ServiceCore::new(ServiceConfig::default());
        let reply = one(
            &mut core,
            &Message::CalibrationRequest {
                node: 1,
                coordinate: None,
            },
            0,
        );
        assert_eq!(
            reply,
            Message::Error {
                code: wire::service_code::NO_SURVEYOR
            }
        );
        register_surveyor(&mut core);
        let reply = one(
            &mut core,
            &Message::CalibrationRequest {
                node: 1,
                coordinate: Some(Coordinate::new(vec![9.0, 9.0], 0.1)),
            },
            1,
        );
        assert_eq!(
            reply,
            Message::CalibrationReply {
                surveyor: 7,
                params: params(),
                issued_at: 1
            }
        );
    }

    #[test]
    fn invalid_surveyor_params_are_refused() {
        let mut core = ServiceCore::new(ServiceConfig::default());
        let mut bad = params();
        bad.beta = 1.5; // non-stationary
        let ack = one(
            &mut core,
            &Message::SurveyorRegister {
                surveyor: 7,
                coordinate: Coordinate::new(vec![1.0, 1.0], 0.0),
                params: bad,
            },
            0,
        );
        assert_eq!(
            ack,
            Message::RegisterAck {
                surveyor: 7,
                registered: false
            }
        );
    }

    #[test]
    fn claims_before_arming_get_not_ready() {
        let mut core = ServiceCore::new(ServiceConfig::default());
        let msg = claim(1, 11, &core.coordinate().clone(), 0.1);
        let reply = one(&mut core, &msg, 0);
        match reply {
            Message::UpdateVerdict {
                nonce, disposition, ..
            } => {
                assert_eq!(nonce, 11);
                assert_eq!(disposition, Disposition::NotReady);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn honest_claims_accepted_liar_claims_rejected() {
        let mut core = ServiceCore::new(ServiceConfig::default());
        register_surveyor(&mut core);
        // A handful of honest claims near the calibrated error level.
        for i in 0..5u64 {
            let msg = claim(i, 100 + i, &core.coordinate().clone(), 0.1);
            let reply = one(&mut core, &msg, i);
            match reply {
                Message::UpdateVerdict { disposition, .. } => {
                    assert_eq!(disposition, Disposition::Accepted, "claim {i}");
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
        // A liar far off the model: must be rejected, not reprieved.
        let msg = claim(99, 999, &core.coordinate().clone(), 5.0);
        let reply = one(&mut core, &msg, 9);
        match reply {
            Message::UpdateVerdict {
                disposition,
                innovation,
                threshold,
                ..
            } => {
                assert_eq!(disposition, Disposition::Rejected);
                assert!(innovation.abs() > threshold);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        let counters = core.counters();
        let get = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(get("svc.claims"), 6);
        assert_eq!(get("svc.claims_accepted"), 5);
        assert_eq!(get("svc.claims_rejected"), 1);
    }

    #[test]
    fn forged_certificates_are_flagged() {
        let mut core = ServiceCore::new(ServiceConfig::default());
        register_surveyor(&mut core);
        let coord = Coordinate::new(vec![50.0, 0.0], 0.0);
        let forged = CoordinateCertificate {
            node: 99,
            coordinate: coord.clone(),
            issuer: 7,
            issued_at: 0,
            ttl: 1000,
            tag: 0xBAD, // not the keyed tag
        };
        let implied = core.coordinate().distance(&coord);
        let reply = one(
            &mut core,
            &Message::UpdateClaim {
                client: 99,
                nonce: 1,
                coordinate: coord,
                peer_error: 0.2,
                rtt_ms: implied / 1.1,
                certificate: Some(forged),
            },
            0,
        );
        match reply {
            Message::UpdateVerdict { disposition, .. } => {
                assert_eq!(disposition, Disposition::BadCertificate);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn genuine_probe_certificate_validates_on_a_claim() {
        let mut core = ServiceCore::new(ServiceConfig::default());
        register_surveyor(&mut core);
        // Fetch the daemon's own certified coordinate...
        let reply = one(&mut core, &Message::ProbeRequest { nonce: 1 }, 10);
        let Message::ProbeReply {
            coordinate,
            certificate: Some(cert),
            ..
        } = reply
        else {
            panic!("expected certified probe reply, got {reply:?}");
        };
        // ...and claim exactly that coordinate with its certificate.
        let implied = core.coordinate().distance(&coordinate).max(0.001);
        let reply = one(
            &mut core,
            &Message::UpdateClaim {
                client: 0,
                nonce: 2,
                coordinate,
                peer_error: 0.2,
                rtt_ms: implied / 1.1,
                certificate: Some(cert),
            },
            11,
        );
        match reply {
            Message::UpdateVerdict { disposition, .. } => {
                assert_ne!(disposition, Disposition::BadCertificate);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn shutdown_needs_the_token_and_reports_final_stats() {
        let mut core = ServiceCore::new(ServiceConfig {
            shutdown_token: 0xFEED,
            ..ServiceConfig::default()
        });
        let reply = one(&mut core, &Message::Shutdown { token: 1 }, 0);
        assert_eq!(
            reply,
            Message::Error {
                code: wire::service_code::BAD_TOKEN
            }
        );
        assert!(!core.shutdown_requested());
        let reply = one(&mut core, &Message::Shutdown { token: 0xFEED }, 1);
        assert!(matches!(reply, Message::StatsReply { .. }));
        assert!(core.shutdown_requested());
    }

    #[test]
    fn malformed_datagrams_get_typed_errors_not_panics() {
        let mut core = ServiceCore::new(ServiceConfig::default());
        let garbage: &[&[u8]] = &[&[], &[9, 1, 2, 3], &[1, 200], &[1]];
        let replies = core.process_batch(garbage, 0);
        for (raw, reply) in garbage.iter().zip(&replies) {
            let bytes = reply
                .as_ref()
                .unwrap_or_else(|| panic!("no reply to {raw:?}"));
            match decode(bytes) {
                Ok(Message::Error { code }) => assert!(code > 0),
                other => panic!("expected typed error for {raw:?}, got {other:?}"),
            }
        }
        let counters = core.counters();
        let errors = counters
            .iter()
            .find(|(n, _)| n == "svc.decode_errors")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert_eq!(errors, garbage.len() as u64);
    }

    #[test]
    fn reply_typed_messages_are_answered_with_unexpected() {
        let mut core = ServiceCore::new(ServiceConfig::default());
        let reply = one(&mut core, &Message::StatsReply { counters: vec![] }, 0);
        assert_eq!(
            reply,
            Message::Error {
                code: wire::service_code::UNEXPECTED
            }
        );
    }
}
