//! `ices-svc` — the coordinate service daemon and its load generator.
//!
//! ROADMAP item 2: the paper's detector only matters if it can run
//! inside a *live* coordinate service. This crate wraps the existing
//! detection/certification core in a compact binary UDP protocol
//! (`ices_core::wire`):
//!
//! * **Probe** — request/reply carrying the daemon's coordinate and,
//!   once a Surveyor has registered, a coordinate certificate over it;
//! * **Surveyor endpoint** — registrar (`SurveyorRegister`) plus
//!   calibration-parameter distribution (`CalibrationRequest`), the
//!   paper's §3.3 infrastructure as a service;
//! * **Secured-update intake** — every inbound `UpdateClaim` runs
//!   through the `DetectorBank`/`vet_sequences` path exactly as a
//!   simulation step would, and the claimant gets a typed
//!   `UpdateVerdict` back (accepted / reprieved / rejected, with the
//!   innovation and threshold that decided it).
//!
//! # The audit boundary
//!
//! This crate is the workspace's **one sanctioned home for real I/O**:
//! sockets (`UdpSocket` is a DET02 finding in every other crate),
//! wall-clock reads, and raw thread spawns. The boundary is kept
//! honest two ways: structurally, [`ServiceCore`] — all protocol and
//! security logic — is socket-free and clock-free (time arrives as a
//! `u64` read from an [`ices_obs::Clock`]), with the OS touched only in
//! [`Daemon`], [`ServiceClock`] and the binaries; and mechanically, by
//! `ices-audit` (DET02/DET03 carve-outs for `svc`, sockets banned
//! everywhere else — see `crates/audit/src/rules.rs`).
//!
//! Nothing here feeds simulation state: the daemon's detector vets live
//! traffic, and determinism claims stay with the sim crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod clock;
pub mod daemon;

pub use client::{claim_delta, client_claim, ClientPlan};
pub use clock::ServiceClock;
pub use daemon::{Daemon, ServiceConfig, ServiceCore};
