//! `loadgen` — drive N simulated clients against a coordinate daemon.
//!
//! Each client performs one certified probe and one coordinate claim
//! (two UDP round-trips), with every claim drawn deterministically from
//! the `LGEN` RNG substream (see `ices_svc::client`). Reports exact
//! p50/p99 round-trip latency, probes/sec, and the daemon's own
//! reject/defense counters fetched over the wire.
//!
//! ```text
//! loadgen [--clients N] [--workers W] [--liar-permille L] [--seed S]
//!         [--addr HOST:PORT] [--token T] [--journal PATH]
//!         [--merge-bench BENCH_sim.json] [--gate]
//! ```
//!
//! Without `--addr` an in-process daemon is spawned on a loopback
//! ephemeral port (the tier-2 smoke path). `--gate` exits non-zero on
//! any decode error, timeout, or an empty run — the hard acceptance
//! gate scripts rely on.

use ices_core::wire::{decode, encode, Disposition, Message, MAX_DATAGRAM};
use ices_core::StateSpaceParams;
use ices_coord::Coordinate;
use ices_obs::Journal;
use ices_svc::{client_claim, ClientPlan, Daemon, ServiceConfig};
use std::net::UdpSocket;
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Args {
    clients: u64,
    workers: usize,
    liar_permille: u32,
    seed: u64,
    addr: Option<String>,
    token: u64,
    journal: Option<String>,
    merge_bench: Option<String>,
    gate: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        clients: 10_000,
        workers: 8,
        liar_permille: 100,
        seed: 61,
        addr: None,
        token: 0x10AD_0CE5,
        journal: None,
        merge_bench: None,
        gate: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--clients" => args.clients = parse(value("--clients")?, "--clients")?,
            "--workers" => args.workers = parse(value("--workers")?, "--workers")?,
            "--liar-permille" => {
                args.liar_permille = parse(value("--liar-permille")?, "--liar-permille")?;
            }
            "--seed" => args.seed = parse(value("--seed")?, "--seed")?,
            "--addr" => args.addr = Some(value("--addr")?),
            "--token" => args.token = parse(value("--token")?, "--token")?,
            "--journal" => args.journal = Some(value("--journal")?),
            "--merge-bench" => args.merge_bench = Some(value("--merge-bench")?),
            "--gate" => args.gate = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.workers == 0 {
        return Err("--workers must be positive".to_string());
    }
    if args.liar_permille > 1000 {
        return Err("--liar-permille must be 0..=1000".to_string());
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(raw: String, name: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse().map_err(|e| format!("{name}: {e}"))
}

/// The calibration parameters the surveyor distributes — the same
/// vector the workspace's simulations calibrate to (`w̄ = 0.02`,
/// honest measurement noise well under the 10% client deltas).
fn surveyor_params() -> StateSpaceParams {
    StateSpaceParams {
        beta: 0.8,
        v_w: 0.001,
        v_u: 0.001,
        w_bar: 0.02,
        w0: 0.1,
        p0: 0.01,
    }
}

/// One blocking request/reply round-trip on `sock`.
fn rpc(sock: &UdpSocket, addr: &str, msg: &Message) -> Result<Message, String> {
    let bytes = encode(msg).map_err(|e| format!("encode: {e}"))?;
    sock.send_to(&bytes, addr).map_err(|e| format!("send: {e}"))?;
    let mut buf = [0u8; MAX_DATAGRAM + 1];
    let (len, _) = sock.recv_from(&mut buf).map_err(|e| format!("recv: {e}"))?;
    decode(&buf[..len]).map_err(|e| format!("decode: {e}"))
}

#[derive(Default)]
struct WorkerReport {
    latencies_us: Vec<u64>,
    ops: u64,
    timeouts: u64,
    decode_errors: u64,
    accepted: u64,
    reprieved: u64,
    rejected: u64,
    bad_certs: u64,
    not_ready: u64,
    mismatches: u64,
}

/// Drive clients `w, w+stride, w+2·stride, …` through probe + claim,
/// window of one outstanding request per worker.
#[allow(clippy::too_many_arguments)]
fn worker(
    w: u64,
    stride: u64,
    clients: u64,
    seed: u64,
    liar_permille: u32,
    daemon_coord: Coordinate,
    addr: String,
) -> WorkerReport {
    let mut report = WorkerReport::default();
    let Ok(sock) = UdpSocket::bind("127.0.0.1:0") else {
        report.timeouts += 1; // a worker with no socket times everything out
        return report;
    };
    if sock.set_read_timeout(Some(Duration::from_secs(2))).is_err() {
        report.timeouts += 1;
        return report;
    }
    let mut buf = [0u8; MAX_DATAGRAM + 1];
    let mut id = w;
    while id < clients {
        let plan = ClientPlan::derive(seed, id, liar_permille, &daemon_coord);
        let requests = [
            Message::ProbeRequest { nonce: id * 2 },
            client_claim(&plan, id * 2 + 1),
        ];
        for msg in &requests {
            let Ok(bytes) = encode(msg) else {
                report.decode_errors += 1;
                continue;
            };
            let begin = Instant::now();
            if sock.send_to(&bytes, &addr).is_err() {
                report.timeouts += 1;
                continue;
            }
            let len = match sock.recv_from(&mut buf) {
                Ok((len, _)) => len,
                Err(_) => {
                    report.timeouts += 1;
                    continue;
                }
            };
            let elapsed = u64::try_from(begin.elapsed().as_micros()).unwrap_or(u64::MAX);
            match decode(&buf[..len]) {
                Ok(Message::ProbeReply { nonce, .. }) if nonce == id * 2 => {}
                Ok(Message::UpdateVerdict {
                    nonce, disposition, ..
                }) if nonce == id * 2 + 1 => {
                    match disposition {
                        Disposition::Accepted => report.accepted += 1,
                        Disposition::Reprieved => report.reprieved += 1,
                        Disposition::Rejected => report.rejected += 1,
                        Disposition::BadCertificate => report.bad_certs += 1,
                        Disposition::NotReady => report.not_ready += 1,
                    }
                    // A liar slipping straight through (not even a
                    // reprieve) or an honest client hard-rejected is a
                    // detector mismatch worth reporting.
                    let surprising = if plan.liar {
                        disposition == Disposition::Accepted
                    } else {
                        disposition == Disposition::Rejected
                    };
                    if surprising {
                        report.mismatches += 1;
                    }
                }
                Ok(_) => report.decode_errors += 1, // wrong reply type/nonce
                Err(_) => report.decode_errors += 1,
            }
            report.ops += 1;
            report.latencies_us.push(elapsed);
        }
        id += stride;
    }
    report
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Set `key` to `value` at the top level of the JSON file (creating the
/// file as `{}` if absent), preserving every other key.
fn merge_bench(path: &str, key: &str, value: serde::Value) -> Result<(), String> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|_| "{}".to_string());
    let parsed: serde::Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: {e:?}"))?;
    let serde::Value::Map(mut entries) = parsed else {
        return Err(format!("{path}: top level is not an object"));
    };
    match entries.iter_mut().find(|(k, _)| k == key) {
        Some((_, slot)) => *slot = value,
        None => entries.push((key.to_string(), value)),
    }
    let rendered = serde_json::to_string_pretty(&serde::Value::Map(entries))
        .map_err(|e| format!("render: {e:?}"))?;
    std::fs::write(path, rendered + "\n").map_err(|e| format!("write {path}: {e}"))
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;

    // Spawn the in-process daemon unless aimed at an external one.
    let mut daemon_thread = None;
    let addr = match &args.addr {
        Some(addr) => addr.clone(),
        None => {
            let config = ServiceConfig {
                shutdown_token: args.token,
                ..ServiceConfig::default()
            };
            let mut daemon =
                Daemon::bind("127.0.0.1:0", config).map_err(|e| format!("bind: {e}"))?;
            if let Some(path) = &args.journal {
                let journal = Journal::to_file(path).map_err(|e| format!("journal: {e}"))?;
                daemon = daemon.with_journal(journal);
            }
            let addr = daemon
                .local_addr()
                .map_err(|e| format!("local_addr: {e}"))?
                .to_string();
            daemon_thread = Some(std::thread::spawn(move || daemon.run()));
            addr
        }
    };

    // Control plane: register the surveyor, learn the daemon coordinate.
    let control = UdpSocket::bind("127.0.0.1:0").map_err(|e| format!("control bind: {e}"))?;
    control
        .set_read_timeout(Some(Duration::from_secs(2)))
        .map_err(|e| format!("control timeout: {e}"))?;
    let ack = rpc(
        &control,
        &addr,
        &Message::SurveyorRegister {
            surveyor: 0,
            coordinate: Coordinate::new(vec![0.0, 0.0], 0.5),
            params: surveyor_params(),
        },
    )?;
    if !matches!(ack, Message::RegisterAck { registered: true, .. }) {
        return Err(format!("surveyor registration refused: {ack:?}"));
    }
    let probe = rpc(&control, &addr, &Message::ProbeRequest { nonce: 0 })?;
    let Message::ProbeReply {
        coordinate: daemon_coord,
        certificate,
        ..
    } = probe
    else {
        return Err(format!("unexpected probe reply: {probe:?}"));
    };
    if certificate.is_none() {
        return Err("daemon served no coordinate certificate after registration".to_string());
    }

    // Fan the client population across the workers.
    let begin = Instant::now();
    let stride = args.workers as u64;
    let handles: Vec<_> = (0..stride)
        .map(|w| {
            let coord = daemon_coord.clone();
            let addr = addr.clone();
            let (clients, seed, permille) = (args.clients, args.seed, args.liar_permille);
            std::thread::spawn(move || worker(w, stride, clients, seed, permille, coord, addr))
        })
        .collect();
    let mut total = WorkerReport::default();
    for handle in handles {
        let r = handle.join().map_err(|_| "worker panicked".to_string())?;
        total.latencies_us.extend(r.latencies_us);
        total.ops += r.ops;
        total.timeouts += r.timeouts;
        total.decode_errors += r.decode_errors;
        total.accepted += r.accepted;
        total.reprieved += r.reprieved;
        total.rejected += r.rejected;
        total.bad_certs += r.bad_certs;
        total.not_ready += r.not_ready;
        total.mismatches += r.mismatches;
    }
    let elapsed = begin.elapsed().as_secs_f64();

    // Daemon-side counters, then shutdown (stops the in-process thread).
    let stats = rpc(&control, &addr, &Message::StatsRequest)?;
    let Message::StatsReply { counters } = stats else {
        return Err(format!("unexpected stats reply: {stats:?}"));
    };
    let shutdown = rpc(&control, &addr, &Message::Shutdown { token: args.token });
    if args.addr.is_none() {
        match shutdown {
            Ok(Message::StatsReply { .. }) => {}
            other => return Err(format!("shutdown not acknowledged: {other:?}")),
        }
        if let Some(handle) = daemon_thread.take() {
            handle
                .join()
                .map_err(|_| "daemon panicked".to_string())?
                .map_err(|e| format!("daemon: {e}"))?;
        }
    }

    total.latencies_us.sort_unstable();
    let p50 = percentile(&total.latencies_us, 0.50);
    let p99 = percentile(&total.latencies_us, 0.99);
    let probes_per_sec = if elapsed > 0.0 {
        total.ops as f64 / elapsed
    } else {
        0.0
    };

    println!(
        "loadgen: {} clients x2 ops via {} workers in {elapsed:.3}s",
        args.clients, args.workers
    );
    println!("loadgen: p50 {p50} us, p99 {p99} us, {probes_per_sec:.0} probes/sec");
    println!(
        "loadgen: accepted {} reprieved {} rejected {} bad_certs {} not_ready {} mismatches {}",
        total.accepted,
        total.reprieved,
        total.rejected,
        total.bad_certs,
        total.not_ready,
        total.mismatches
    );
    println!(
        "loadgen: decode_errors {} timeouts {}",
        total.decode_errors, total.timeouts
    );
    for (name, v) in &counters {
        println!("daemon: {name} {v}");
    }

    if let Some(path) = &args.merge_bench {
        let entry = serde::Value::Map(vec![
            ("clients".to_string(), serde::Value::U64(args.clients)),
            (
                "workers".to_string(),
                serde::Value::U64(args.workers as u64),
            ),
            (
                "liar_permille".to_string(),
                serde::Value::U64(u64::from(args.liar_permille)),
            ),
            ("seed".to_string(), serde::Value::U64(args.seed)),
            ("ops".to_string(), serde::Value::U64(total.ops)),
            (
                "probes_per_sec".to_string(),
                serde::Value::F64(probes_per_sec),
            ),
            ("p50_us".to_string(), serde::Value::U64(p50)),
            ("p99_us".to_string(), serde::Value::U64(p99)),
            (
                "decode_errors".to_string(),
                serde::Value::U64(total.decode_errors),
            ),
            ("timeouts".to_string(), serde::Value::U64(total.timeouts)),
            ("accepted".to_string(), serde::Value::U64(total.accepted)),
            ("reprieved".to_string(), serde::Value::U64(total.reprieved)),
            ("rejected".to_string(), serde::Value::U64(total.rejected)),
            (
                "mismatches".to_string(),
                serde::Value::U64(total.mismatches),
            ),
        ]);
        merge_bench(path, "loadgen", entry)?;
        println!("loadgen: merged results into {path}");
    }

    if args.gate {
        let expected_ops = args.clients * 2;
        if total.decode_errors > 0 || total.timeouts > 0 || total.ops < expected_ops {
            eprintln!(
                "loadgen: GATE FAILED — ops {}/{expected_ops}, decode_errors {}, timeouts {}",
                total.ops, total.decode_errors, total.timeouts
            );
            return Ok(ExitCode::FAILURE);
        }
        println!("loadgen: gate passed ({expected_ops} ops clean)");
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("loadgen: {e}");
            ExitCode::from(2)
        }
    }
}
