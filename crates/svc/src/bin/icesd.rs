//! `icesd` — the coordinate service daemon.
//!
//! Binds a UDP socket, prints the bound address (parseable by scripts
//! that picked port 0), and serves the `ices_core::wire` protocol until
//! a valid `Shutdown` datagram arrives.
//!
//! ```text
//! icesd [--addr HOST:PORT] [--dims N] [--token T] [--journal PATH]
//! ```

use ices_obs::Journal;
use ices_svc::{Daemon, ServiceConfig};
use std::process::ExitCode;

struct Args {
    addr: String,
    dims: usize,
    token: u64,
    journal: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        dims: 2,
        token: 0,
        journal: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--dims" => {
                args.dims = value("--dims")?
                    .parse()
                    .map_err(|e| format!("--dims: {e}"))?;
            }
            "--token" => {
                args.token = value("--token")?
                    .parse()
                    .map_err(|e| format!("--token: {e}"))?;
            }
            "--journal" => args.journal = Some(value("--journal")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.dims == 0 || args.dims > 16 {
        return Err(format!("--dims must be 1..=16, got {}", args.dims));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("icesd: {e}");
            return ExitCode::from(2);
        }
    };
    let config = ServiceConfig {
        dims: args.dims,
        shutdown_token: args.token,
        ..ServiceConfig::default()
    };
    let mut daemon = match Daemon::bind(&args.addr, config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("icesd: bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.journal {
        match Journal::to_file(path) {
            Ok(j) => daemon = daemon.with_journal(j),
            Err(e) => {
                eprintln!("icesd: journal {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match daemon.local_addr() {
        Ok(addr) => println!("icesd listening on {addr}"),
        Err(e) => {
            eprintln!("icesd: local_addr: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = daemon.run() {
        eprintln!("icesd: serve: {e}");
        return ExitCode::FAILURE;
    }
    let counters = daemon.core().counters();
    for (name, v) in counters {
        println!("{name} {v}");
    }
    ExitCode::SUCCESS
}
