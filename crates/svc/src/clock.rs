//! The daemon's wall clock, behind the `ices_obs::Clock` trait.
//!
//! `ices-obs` owns the trait and knows only ticks; `crates/bench` has a
//! `WallClock` for timing experiments; this is the service's equivalent.
//! Everything downstream of [`crate::ServiceCore`] sees time only as
//! the `u64` this clock produced — swap in `ices_obs::TickClock` and
//! the whole protocol logic runs under simulated time in tests.

use ices_obs::Clock;
use std::time::Instant;

/// Milliseconds elapsed since the clock was created. Monotonic (backed
/// by [`Instant`]), so certificate TTLs and journal timestamps never
/// run backwards even if the host's wall time is adjusted.
#[derive(Debug, Clone)]
pub struct ServiceClock {
    start: Instant,
}

impl ServiceClock {
    /// Start counting from now.
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
        }
    }
}

impl Default for ServiceClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for ServiceClock {
    fn now(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_near_zero_and_is_monotone() {
        let clock = ServiceClock::new();
        let a = clock.now();
        assert!(a < 60_000, "fresh clock reads {a} ms");
        let b = clock.now();
        assert!(b >= a);
    }
}
