//! Deterministic simulated clients for the load generator.
//!
//! Each client's entire behavior — honest or lying, claimed position,
//! reported RTT — is a pure function of `(master seed, client id)`
//! through the [`streams::LGEN`] substream, so a 10k-client run is
//! reproducible datagram-for-datagram regardless of worker count or
//! socket interleaving. The daemon under test never sees the seed; it
//! has to tell liars apart the paper's way.

use ices_coord::Coordinate;
use ices_core::wire::Message;
use ices_stats::rng::stream_rng2;
use ices_stats::streams;
use rand::RngExt;

/// Relative disagreement between a claim's implied distance and its
/// reported RTT. Honest clients sit at 10% — comfortably inside the
/// calibrated error process — while liars claim a position five RTTs
/// away from where they measurably are, the classic inflation attack
/// the detector exists to reject.
pub fn claim_delta(liar: bool) -> f64 {
    if liar {
        5.0
    } else {
        0.1
    }
}

/// One simulated client's precomputed behavior.
#[derive(Debug, Clone)]
pub struct ClientPlan {
    /// Client id (also its wire `client` field and RNG substream).
    pub id: u64,
    /// Whether this client lies about its coordinate.
    pub liar: bool,
    /// The coordinate the client will claim.
    pub coordinate: Coordinate,
    /// The RTT the client will report alongside the claim.
    pub rtt_ms: f64,
    /// The claimed remote-error term.
    pub peer_error: f64,
}

impl ClientPlan {
    /// Derive client `id`'s plan. `liar_permille` is the per-client
    /// probability (‰) of drawing a liar; `daemon` is the service
    /// coordinate claims are measured against.
    pub fn derive(seed: u64, id: u64, liar_permille: u32, daemon: &Coordinate) -> Self {
        let mut rng = stream_rng2(seed, streams::LGEN, id);
        let liar = u64::from(rng.random::<u32>() % 1000) < u64::from(liar_permille);
        // A position 20–200 ms from the daemon along a random direction.
        let dims = daemon.position().len();
        let mut dir: Vec<f64> = (0..dims).map(|_| rng.random::<f64>() - 0.5).collect();
        let norm = dir.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-9 {
            dir[0] = 1.0;
        } else {
            for x in &mut dir {
                *x /= norm;
            }
        }
        let distance = 20.0 + 180.0 * rng.random::<f64>();
        let position: Vec<f64> = daemon
            .position()
            .iter()
            .zip(&dir)
            .map(|(p, d)| p + distance * d)
            .collect();
        let coordinate = Coordinate::new(position, 0.0);
        let implied = daemon.distance(&coordinate);
        let rtt_ms = implied / (1.0 + claim_delta(liar));
        let peer_error = 0.1 + 0.2 * rng.random::<f64>();
        Self {
            id,
            liar,
            coordinate,
            rtt_ms,
            peer_error,
        }
    }
}

/// The wire message a planned client sends as claim number `nonce`.
pub fn client_claim(plan: &ClientPlan, nonce: u64) -> Message {
    Message::UpdateClaim {
        client: plan.id,
        nonce,
        coordinate: plan.coordinate.clone(),
        peer_error: plan.peer_error,
        rtt_ms: plan.rtt_ms,
        certificate: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn daemon_coord() -> Coordinate {
        Coordinate::new(vec![0.0, 0.0], 1.0)
    }

    #[test]
    fn plans_are_deterministic_per_seed_and_id() {
        let d = daemon_coord();
        let a = ClientPlan::derive(61, 42, 100, &d);
        let b = ClientPlan::derive(61, 42, 100, &d);
        assert_eq!(a.liar, b.liar);
        assert_eq!(a.coordinate, b.coordinate);
        assert!((a.rtt_ms - b.rtt_ms).abs() == 0.0);
        let c = ClientPlan::derive(61, 43, 100, &d);
        assert_ne!(a.coordinate, c.coordinate, "distinct ids, distinct draws");
    }

    #[test]
    fn deltas_match_the_plan() {
        let d = daemon_coord();
        for id in 0..200u64 {
            let plan = ClientPlan::derive(7, id, 500, &d);
            let implied = d.distance(&plan.coordinate);
            let delta = (implied - plan.rtt_ms).abs() / plan.rtt_ms;
            let expected = claim_delta(plan.liar);
            assert!(
                (delta - expected).abs() < 1e-9,
                "client {id}: delta {delta}, expected {expected}"
            );
            assert!(plan.rtt_ms > 0.0);
        }
    }

    #[test]
    fn liar_permille_bounds_behave() {
        let d = daemon_coord();
        assert!((0..500).all(|id| !ClientPlan::derive(1, id, 0, &d).liar));
        assert!((0..500).all(|id| ClientPlan::derive(1, id, 1000, &d).liar));
        let liars = (0..2000)
            .filter(|&id| ClientPlan::derive(1, id, 100, &d).liar)
            .count();
        // ~10% with generous slack: the draw is deterministic, this
        // guards against permille/percent confusion, not variance.
        assert!((100..400).contains(&liars), "liars = {liars}");
    }

    #[test]
    fn claims_encode_within_the_wire_budget() {
        let d = daemon_coord();
        let plan = ClientPlan::derive(3, 0, 0, &d);
        let msg = client_claim(&plan, 9);
        let bytes = ices_core::wire::encode(&msg).unwrap_or_else(|e| panic!("{e}"));
        assert!(bytes.len() <= ices_core::wire::MAX_DATAGRAM);
        let back = ices_core::wire::decode(&bytes).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(back, msg);
    }
}
