//! Loopback integration tests: a real daemon on a real UDP socket.
//!
//! The adversarial contract under test: nothing a client puts on the
//! wire — garbage bytes, truncated frames, oversized datagrams, forged
//! certificates, wrong shutdown tokens — may panic the daemon or go
//! unanswered without a typed reply. The daemon thread is joined at the
//! end of every test, so a panic anywhere in the serve loop fails the
//! test rather than leaking.

// Test plumbing (not a library): socket setup failures should fail
// loudly with their cause, exactly what expect() is for.
#![allow(clippy::expect_used)]

use ices_core::wire::{self, decode, encode, Disposition, Message, MAX_DATAGRAM};
use ices_core::{CoordinateCertificate, StateSpaceParams};
use ices_coord::Coordinate;
use ices_svc::{client_claim, ClientPlan, Daemon, ServiceConfig};
use std::net::UdpSocket;
use std::time::Duration;

const TOKEN: u64 = 0x5EC_0FF;

fn params() -> StateSpaceParams {
    StateSpaceParams {
        beta: 0.8,
        v_w: 0.001,
        v_u: 0.001,
        w_bar: 0.02,
        w0: 0.1,
        p0: 0.01,
    }
}

/// Spawn a daemon on an ephemeral loopback port; return its address and
/// the join handle the test must reap.
fn spawn_daemon() -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let config = ServiceConfig {
        shutdown_token: TOKEN,
        ..ServiceConfig::default()
    };
    let mut daemon = Daemon::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = daemon.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || daemon.run());
    (addr, handle)
}

fn client_socket() -> UdpSocket {
    let sock = UdpSocket::bind("127.0.0.1:0").expect("client bind");
    sock.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("client timeout");
    sock
}

fn rpc(sock: &UdpSocket, addr: &str, msg: &Message) -> Message {
    send_raw(sock, addr, &encode(msg).expect("encode"))
        .unwrap_or_else(|| panic!("no reply to {msg:?}"))
}

/// Send raw bytes, return the decoded reply (None on timeout).
fn send_raw(sock: &UdpSocket, addr: &str, bytes: &[u8]) -> Option<Message> {
    sock.send_to(bytes, addr).expect("send");
    let mut buf = [0u8; MAX_DATAGRAM + 1];
    let (len, _) = sock.recv_from(&mut buf).ok()?;
    Some(decode(&buf[..len]).expect("reply decodes"))
}

fn shutdown(sock: &UdpSocket, addr: &str, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let reply = rpc(sock, addr, &Message::Shutdown { token: TOKEN });
    assert!(
        matches!(reply, Message::StatsReply { .. }),
        "shutdown must return final stats, got {reply:?}"
    );
    handle
        .join()
        .expect("daemon must not panic")
        .expect("daemon serve loop must not error");
}

fn register(sock: &UdpSocket, addr: &str) -> Coordinate {
    let ack = rpc(
        sock,
        addr,
        &Message::SurveyorRegister {
            surveyor: 3,
            coordinate: Coordinate::new(vec![5.0, 5.0], 0.2),
            params: params(),
        },
    );
    assert_eq!(
        ack,
        Message::RegisterAck {
            surveyor: 3,
            registered: true
        }
    );
    match rpc(sock, addr, &Message::ProbeRequest { nonce: 1 }) {
        Message::ProbeReply { coordinate, .. } => coordinate,
        other => panic!("unexpected probe reply {other:?}"),
    }
}

#[test]
fn malformed_datagrams_get_typed_errors_and_the_daemon_survives() {
    let (addr, handle) = spawn_daemon();
    let sock = client_socket();

    let cases: &[(&str, Vec<u8>)] = &[
        ("empty", vec![]),
        ("bad version", vec![9, 1, 2, 3]),
        ("bad tag", vec![1, 200]),
        ("truncated probe", vec![1, 1, 7]),
        ("oversized", vec![0xAB; MAX_DATAGRAM + 40]),
        ("garbage", (0..64u8).map(|i| i.wrapping_mul(37)).collect()),
    ];
    for (name, bytes) in cases {
        let reply = send_raw(&sock, &addr, bytes)
            .unwrap_or_else(|| panic!("{name}: daemon sent no reply"));
        match reply {
            Message::Error { code } => assert!(code > 0, "{name}: error code must be set"),
            other => panic!("{name}: expected typed error, got {other:?}"),
        }
    }

    // The daemon is still fully functional afterwards.
    let reply = rpc(&sock, &addr, &Message::ProbeRequest { nonce: 42 });
    assert!(matches!(reply, Message::ProbeReply { nonce: 42, .. }));
    shutdown(&sock, &addr, handle);
}

#[test]
fn full_protocol_round_trip_over_loopback() {
    let (addr, handle) = spawn_daemon();
    let sock = client_socket();

    // Calibration is refused before any surveyor exists...
    let reply = rpc(
        &sock,
        &addr,
        &Message::CalibrationRequest {
            node: 1,
            coordinate: None,
        },
    );
    assert_eq!(
        reply,
        Message::Error {
            code: wire::service_code::NO_SURVEYOR
        }
    );

    // ...then served once one registers.
    let daemon_coord = register(&sock, &addr);
    let reply = rpc(
        &sock,
        &addr,
        &Message::CalibrationRequest {
            node: 1,
            coordinate: Some(Coordinate::new(vec![4.0, 4.0], 0.0)),
        },
    );
    match reply {
        Message::CalibrationReply { surveyor, params: p, .. } => {
            assert_eq!(surveyor, 3);
            assert_eq!(p, params());
        }
        other => panic!("unexpected calibration reply {other:?}"),
    }

    // Honest claims pass the detector, liars do not.
    let honest = ClientPlan::derive(61, 5, 0, &daemon_coord);
    let reply = rpc(&sock, &addr, &client_claim(&honest, 100));
    match reply {
        Message::UpdateVerdict {
            nonce, disposition, ..
        } => {
            assert_eq!(nonce, 100);
            assert_eq!(disposition, Disposition::Accepted);
        }
        other => panic!("unexpected verdict {other:?}"),
    }
    let liar = ClientPlan::derive(61, 6, 1000, &daemon_coord);
    assert!(liar.liar);
    let reply = rpc(&sock, &addr, &client_claim(&liar, 101));
    match reply {
        Message::UpdateVerdict { disposition, .. } => {
            assert_eq!(disposition, Disposition::Rejected);
        }
        other => panic!("unexpected verdict {other:?}"),
    }

    // A forged certificate is flagged before the detector even runs.
    let coord = Coordinate::new(vec![40.0, 0.0], 0.0);
    let implied = daemon_coord.distance(&coord);
    let reply = rpc(
        &sock,
        &addr,
        &Message::UpdateClaim {
            client: 9,
            nonce: 102,
            coordinate: coord.clone(),
            peer_error: 0.2,
            rtt_ms: implied / 1.1,
            certificate: Some(CoordinateCertificate {
                node: 9,
                coordinate: coord,
                issuer: 3,
                issued_at: 0,
                ttl: 60_000,
                tag: 0xF0F0,
            }),
        },
    );
    match reply {
        Message::UpdateVerdict { disposition, .. } => {
            assert_eq!(disposition, Disposition::BadCertificate);
        }
        other => panic!("unexpected verdict {other:?}"),
    }

    // Stats reflect what happened; a bad shutdown token is refused.
    let reply = rpc(&sock, &addr, &Message::StatsRequest);
    let Message::StatsReply { counters } = reply else {
        panic!("unexpected stats reply");
    };
    let get = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(get("svc.claims"), 3);
    assert_eq!(get("svc.claims_accepted"), 1);
    assert_eq!(get("svc.claims_rejected"), 1);
    assert_eq!(get("svc.bad_certs"), 1);
    assert_eq!(get("svc.registrations"), 1);

    let reply = rpc(&sock, &addr, &Message::Shutdown { token: TOKEN + 1 });
    assert_eq!(
        reply,
        Message::Error {
            code: wire::service_code::BAD_TOKEN
        }
    );
    shutdown(&sock, &addr, handle);
}
