//! Micro-benchmarks of the Kalman filter kernel — the paper's claim that
//! per-node filtering costs "a few simple scalar operations".

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ices_core::{KalmanFilter, StateSpaceParams};
use std::hint::black_box;

fn params() -> StateSpaceParams {
    StateSpaceParams {
        beta: 0.8,
        v_w: 0.004,
        v_u: 0.002,
        w_bar: 0.03,
        w0: 0.5,
        p0: 0.05,
    }
}

fn bench_kalman(c: &mut Criterion) {
    let mut group = c.benchmark_group("kalman");

    group.bench_function("predict", |b| {
        let filter = KalmanFilter::new(params());
        b.iter(|| black_box(filter.predict()));
    });

    group.bench_function("update", |b| {
        b.iter_batched_ref(
            || KalmanFilter::new(params()),
            |filter| black_box(filter.update(black_box(0.31))),
            BatchSize::SmallInput,
        );
    });

    let trace: Vec<f64> = {
        let mut rng = ices_stats::rng::stream_rng(1, 0);
        params().simulate(10_000, &mut rng)
    };
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("run_trace_10k", |b| {
        b.iter(|| black_box(KalmanFilter::run_trace(params(), black_box(&trace))));
    });

    group.finish();
}

criterion_group!(benches, bench_kalman);
criterion_main!(benches);
