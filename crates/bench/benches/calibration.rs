//! Benchmarks of the EM calibration — the part the paper notes "incurs a
//! number of iterations over N-dimensional vectors" and therefore runs
//! on Surveyors only.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ices_core::{calibrate, EmConfig, StateSpaceParams};
use std::hint::black_box;

fn params() -> StateSpaceParams {
    StateSpaceParams {
        beta: 0.8,
        v_w: 0.004,
        v_u: 0.002,
        w_bar: 0.03,
        w0: 0.5,
        p0: 0.05,
    }
}

fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("em_calibration");
    group.sample_size(20);
    for n in [256usize, 1024, 4096] {
        let trace: Vec<f64> = {
            let mut rng = ices_stats::rng::stream_rng(1, 0);
            params().simulate(n, &mut rng)
        };
        group.bench_with_input(BenchmarkId::new("paper_tolerance", n), &trace, |b, t| {
            b.iter(|| {
                black_box(calibrate(
                    black_box(t),
                    StateSpaceParams::em_initial_guess(),
                    &EmConfig::default(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_calibration);
criterion_main!(benches);
