//! Micro-benchmarks of the detection test: the full per-embedding-step
//! overhead a secured node pays (threshold computation + hypothesis
//! test + filter update).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ices_core::{Detector, StateSpaceParams};
use ices_stats::q_inverse;
use std::hint::black_box;

fn params() -> StateSpaceParams {
    StateSpaceParams {
        beta: 0.8,
        v_w: 0.004,
        v_u: 0.002,
        w_bar: 0.03,
        w0: 0.5,
        p0: 0.05,
    }
}

fn bench_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("detection");

    group.bench_function("q_inverse", |b| {
        b.iter(|| black_box(q_inverse(black_box(0.025))));
    });

    group.bench_function("evaluate", |b| {
        let d = Detector::new(params(), 0.05);
        b.iter(|| black_box(d.evaluate(black_box(0.4))));
    });

    group.bench_function("assess_accept", |b| {
        b.iter_batched_ref(
            || Detector::new(params(), 0.05),
            |d| black_box(d.assess(black_box(0.16))),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("assess_reject", |b| {
        b.iter_batched_ref(
            || Detector::new(params(), 0.05),
            |d| black_box(d.assess(black_box(50.0))),
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
