//! Benchmarks of the embedding substrates: a Vivaldi spring update, an
//! NPS downhill-simplex repositioning, and a full secured embedding step
//! (detection + Vivaldi update) — the end-to-end per-step cost of the
//! paper's protocol.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ices_coord::{Coordinate, Embedding, PeerSample};
use ices_core::{SecureNode, SecurityConfig, StateSpaceParams};
use ices_nps::{NpsConfig, NpsNode};
use ices_vivaldi::{VivaldiConfig, VivaldiNode};
use std::hint::black_box;

fn vivaldi_sample(i: usize) -> PeerSample {
    PeerSample {
        peer: i % 64,
        peer_coord: Coordinate::new(vec![(i % 100) as f64, ((i * 7) % 90) as f64], 2.0),
        peer_error: 0.25,
        rtt_ms: 30.0 + (i % 50) as f64,
    }
}

fn bench_embedding(c: &mut Criterion) {
    let mut group = c.benchmark_group("embedding");

    group.bench_function("vivaldi_step", |b| {
        let mut node = VivaldiNode::new(0, VivaldiConfig::paper_default(), 1);
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            black_box(node.apply_step(black_box(&vivaldi_sample(i))))
        });
    });

    group.bench_function("secured_vivaldi_step", |b| {
        let params = StateSpaceParams {
            beta: 0.8,
            v_w: 0.004,
            v_u: 0.002,
            w_bar: 0.03,
            w0: 0.5,
            p0: 0.05,
        };
        let mut node = SecureNode::new(
            VivaldiNode::new(0, VivaldiConfig::paper_default(), 1),
            params,
            0,
            SecurityConfig::paper_default(),
        );
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            black_box(node.step(black_box(&vivaldi_sample(i))))
        });
    });

    group.sample_size(20);
    group.bench_function("nps_round_8d_20rps", |b| {
        let cfg = NpsConfig::paper_default();
        let samples: Vec<PeerSample> = (0..20)
            .map(|k| {
                let pos: Vec<f64> = (0..8)
                    .map(|d| ((k * 13 + d * 7) % 120) as f64 - 40.0)
                    .collect();
                let dist = pos.iter().map(|x| x * x).sum::<f64>().sqrt().max(1.0);
                PeerSample {
                    peer: k,
                    peer_coord: Coordinate::euclidean(pos),
                    peer_error: 0.2,
                    rtt_ms: dist,
                }
            })
            .collect();
        b.iter_batched_ref(
            || NpsNode::new(0, cfg, 3),
            |node| {
                for s in &samples {
                    node.apply_step(s);
                }
                black_box(node.finish_round())
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_embedding);
criterion_main!(benches);
