//! The `bench_check` comparison engine, as a library.
//!
//! [`compare`] takes two parsed `BENCH_sim.json` reports — the committed
//! baseline and a fresh run — and returns a [`CheckReport`]: perf
//! warnings (budget violations), migration notes (schema fields the
//! baseline predates, silently defaulted before, now said out loud),
//! and the number of configurations actually compared. The binary in
//! `src/bin/bench_check.rs` is a thin shell around this module, so the
//! comparison and its schema-evolution rules are unit-testable against
//! fixture reports.
//!
//! Schema evolution policy: a baseline recorded before a field existed
//! is compared under that field's default (`journal=false`,
//! `adversary="none"`, `tier="exact"` — which is what those rows were),
//! and the report carries one note per defaulted field naming how many
//! rows it touched. Old baselines never error, and the defaulting is
//! never silent.

use serde::Value;

/// Fractional throughput drop that triggers a warning.
pub const TOLERANCE: f64 = 0.20;

/// Wider budget for scale-sweep rows at or above this population: big
/// streamed runs are single-rep and allocator/page-cache sensitive.
pub const SWEEP_BIG_NODES: u64 = 50_000;
/// Budget applied to scale-sweep rows at or above [`SWEEP_BIG_NODES`].
pub const SWEEP_BIG_TOLERANCE: f64 = 0.30;

/// Budgeted journaling overhead: a journaled run must stay within 5% of
/// the matching unjournaled configuration.
pub const JOURNAL_BUDGET: f64 = 0.05;

/// Budgeted intercept-path overhead: the Sybil-swarm configuration must
/// stay within 10% of its honest-world twin.
pub const ADVERSARY_BUDGET: f64 = 0.10;

/// Outcome of one baseline-vs-current comparison.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Budget violations, one formatted line each.
    pub warnings: Vec<String>,
    /// Schema-migration and comparability notes, one line each.
    pub notes: Vec<String>,
    /// Number of configuration pairs actually compared.
    pub compared: usize,
}

fn field<'a>(v: &'a Value, name: &str) -> Option<&'a Value> {
    match v {
        Value::Map(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

fn number(v: &Value) -> Option<f64> {
    match v {
        Value::F64(x) => Some(*x),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    }
}

/// One tick-engine row's identity plus its throughput.
struct Row {
    driver: String,
    threads: u64,
    faults: bool,
    journal: bool,
    adversary: String,
    tier: String,
    sps: f64,
}

/// How many of a report's rows were missing each evolvable schema field
/// (and therefore took its default).
#[derive(Debug, Default, PartialEq, Eq)]
struct SchemaGaps {
    journal: usize,
    adversary: usize,
    tier: usize,
}

impl SchemaGaps {
    /// One migration note per defaulted field.
    fn notes(&self, which: &str) -> Vec<String> {
        let mut out = Vec::new();
        for (missing, name, default) in [
            (self.journal, "journal", "false"),
            (self.adversary, "adversary", "\"none\""),
            (self.tier, "tier", "\"exact\""),
        ] {
            if missing > 0 {
                out.push(format!(
                    "{which} predates the `{name}` run field — {missing} row(s) \
                     compared under the default {name}={default}"
                ));
            }
        }
        out
    }
}

/// Per-run-entry rows plus a count of defaulted schema fields.
fn runs(report: &Value) -> (Vec<Row>, SchemaGaps) {
    let mut out = Vec::new();
    let mut gaps = SchemaGaps::default();
    if let Some(Value::Seq(entries)) = field(report, "runs") {
        for run in entries {
            let driver = match field(run, "driver") {
                Some(Value::Str(s)) => s.clone(),
                _ => continue,
            };
            let threads = match field(run, "threads").and_then(number) {
                Some(t) => t as u64,
                None => continue,
            };
            let faults = matches!(field(run, "faults"), Some(Value::Bool(true)));
            let journal = match field(run, "journal") {
                Some(Value::Bool(b)) => *b,
                _ => {
                    gaps.journal += 1;
                    false
                }
            };
            let adversary = match field(run, "adversary") {
                Some(Value::Str(s)) => s.clone(),
                _ => {
                    gaps.adversary += 1;
                    "none".to_string()
                }
            };
            let tier = match field(run, "tier") {
                Some(Value::Str(s)) => s.clone(),
                _ => {
                    gaps.tier += 1;
                    "exact".to_string()
                }
            };
            let sps = match field(run, "steps_per_sec").and_then(number) {
                Some(s) => s,
                None => continue,
            };
            out.push(Row {
                driver,
                threads,
                faults,
                journal,
                adversary,
                tier,
                sps,
            });
        }
    }
    (out, gaps)
}

/// `(scalar, batched)` sweeps/sec of the detector-bank microbenchmark.
fn detector_bank_rates(report: &Value) -> Option<(f64, f64)> {
    let bank = field(report, "detector_bank")?;
    Some((
        field(bank, "scalar_sweeps_per_sec").and_then(number)?,
        field(bank, "batched_sweeps_per_sec").and_then(number)?,
    ))
}

/// `(nodes, threads, steps_per_sec)` per scale-sweep row.
fn sweep_rows(report: &Value) -> Vec<(u64, u64, f64)> {
    let mut out = Vec::new();
    if let Some(Value::Seq(entries)) = field(report, "scale_sweep") {
        for row in entries {
            let (Some(nodes), Some(threads), Some(sps)) = (
                field(row, "nodes").and_then(number),
                field(row, "threads").and_then(number),
                field(row, "steps_per_sec").and_then(number),
            ) else {
                continue;
            };
            out.push((nodes as u64, threads as u64, sps));
        }
    }
    out
}

fn host_parallelism(report: &Value) -> Option<u64> {
    field(report, "host_parallelism")
        .and_then(number)
        .map(|n| n as u64)
}

fn solver_rate(report: &Value) -> Option<f64> {
    field(report, "nps_solver").and_then(|s| field(s, "solves_per_sec").and_then(number))
}

/// The loadgen section's service throughput, absent on reports recorded
/// before the service daemon existed.
fn loadgen_rate(report: &Value) -> Option<f64> {
    field(report, "loadgen").and_then(|s| field(s, "probes_per_sec").and_then(number))
}

/// Compare a fresh report against the committed baseline. Never fails:
/// schema gaps become notes, budget violations become warnings.
pub fn compare(baseline: &Value, current: &Value) -> CheckReport {
    let mut report = CheckReport::default();

    // Differently-sized hosts make every multi-thread row (and any
    // recorded speedup) incomparable; restrict to the sequential rows.
    let same_host = match (host_parallelism(baseline), host_parallelism(current)) {
        (Some(b), Some(c)) => b == c,
        _ => true, // a pre-sweep report: keep the old permissive behavior
    };
    if !same_host {
        report.notes.push(
            "host_parallelism differs between reports — comparing threads=1 \
             configurations only"
                .to_string(),
        );
    }

    let (old_runs, old_gaps) = runs(baseline);
    let (new_runs, _) = runs(current);
    report.notes.extend(old_gaps.notes("baseline"));

    for row in &new_runs {
        if !same_host && row.threads != 1 {
            continue;
        }
        // Tier is part of the row's identity: a fast row never compares
        // against an exact baseline (or vice versa).
        let Some(old) = old_runs.iter().find(|o| {
            o.driver == row.driver
                && o.threads == row.threads
                && o.faults == row.faults
                && o.journal == row.journal
                && o.adversary == row.adversary
                && o.tier == row.tier
        }) else {
            continue;
        };
        report.compared += 1;
        if row.sps < old.sps * (1.0 - TOLERANCE) {
            report.warnings.push(format!(
                "{} (threads={}, faults={}, journal={}, adversary={}, tier={}) \
                 regressed {:.0}% — {:.0} → {:.0} steps/sec",
                row.driver,
                row.threads,
                row.faults,
                row.journal,
                row.adversary,
                row.tier,
                100.0 * (1.0 - row.sps / old.sps),
                old.sps,
                row.sps
            ));
        }
    }

    // The obs overhead budget is checked within the current report:
    // journaled vs unjournaled twins share the hardware and the moment,
    // so the ratio is meaningful even when absolute timings are noisy.
    for row in &new_runs {
        if !row.journal {
            continue;
        }
        let Some(clean) = new_runs.iter().find(|o| {
            o.driver == row.driver
                && o.threads == row.threads
                && o.faults == row.faults
                && !o.journal
                && o.adversary == row.adversary
                && o.tier == row.tier
        }) else {
            continue;
        };
        report.compared += 1;
        if row.sps < clean.sps * (1.0 - JOURNAL_BUDGET) {
            report.warnings.push(format!(
                "{} (threads={}) journaling overhead {:.1}% exceeds the {:.0}% \
                 budget — {:.0} → {:.0} steps/sec",
                row.driver,
                row.threads,
                100.0 * (1.0 - row.sps / clean.sps),
                100.0 * JOURNAL_BUDGET,
                clean.sps,
                row.sps
            ));
        }
    }

    // The intercept-path budget is likewise checked within the current
    // report: the Sybil row against its honest-world twin.
    for row in &new_runs {
        if row.adversary != "sybil" {
            continue;
        }
        let Some(twin) = new_runs.iter().find(|o| {
            o.driver == row.driver
                && o.threads == row.threads
                && o.faults == row.faults
                && o.journal == row.journal
                && o.adversary == "honest_twin"
                && o.tier == row.tier
        }) else {
            continue;
        };
        report.compared += 1;
        if row.sps < twin.sps * (1.0 - ADVERSARY_BUDGET) {
            report.warnings.push(format!(
                "{} (threads={}) intercept-path overhead {:.1}% exceeds the \
                 {:.0}% budget — {:.0} → {:.0} steps/sec vs honest twin",
                row.driver,
                row.threads,
                100.0 * (1.0 - row.sps / twin.sps),
                100.0 * ADVERSARY_BUDGET,
                twin.sps,
                row.sps
            ));
        }
    }

    // Scale-sweep rows: per-scale budgets (big streamed runs get 30%).
    let old_sweep = sweep_rows(baseline);
    for (nodes, threads, new_sps) in sweep_rows(current) {
        if !same_host && threads != 1 {
            continue;
        }
        let Some((_, _, old_sps)) = old_sweep
            .iter()
            .find(|(n, t, _)| *n == nodes && *t == threads)
        else {
            continue;
        };
        report.compared += 1;
        let budget = if nodes >= SWEEP_BIG_NODES {
            SWEEP_BIG_TOLERANCE
        } else {
            TOLERANCE
        };
        if new_sps < old_sps * (1.0 - budget) {
            report.warnings.push(format!(
                "streamed sweep n={nodes} (threads={threads}) regressed {:.0}% \
                 (budget {:.0}%) — {:.0} → {:.0} steps/sec",
                100.0 * (1.0 - new_sps / old_sps),
                100.0 * budget,
                old_sps,
                new_sps
            ));
        }
    }

    // Detector-bank microbenchmark rows: the regular 20% budget on each
    // path's absolute rate against the baseline, and — within the
    // current report — the bank must actually beat the scalar loop it
    // exists to replace.
    if let (Some((old_scalar, old_batched)), Some((new_scalar, new_batched))) =
        (detector_bank_rates(baseline), detector_bank_rates(current))
    {
        for (name, old, new) in [
            ("scalar", old_scalar, new_scalar),
            ("batched", old_batched, new_batched),
        ] {
            report.compared += 1;
            if new < old * (1.0 - TOLERANCE) {
                report.warnings.push(format!(
                    "detector_bank {name} sweep regressed {:.0}% — \
                     {:.0} → {:.0} sweeps/sec",
                    100.0 * (1.0 - new / old),
                    old,
                    new
                ));
            }
        }
    }
    if let Some((scalar, batched)) = detector_bank_rates(current) {
        report.compared += 1;
        if batched <= scalar {
            report.warnings.push(format!(
                "detector_bank batched sweep ({batched:.0}/s) is not faster \
                 than the scalar loop ({scalar:.0}/s)"
            ));
        }
    }

    if let (Some(old), Some(new)) = (solver_rate(baseline), solver_rate(current)) {
        report.compared += 1;
        if new < old * (1.0 - TOLERANCE) {
            report.warnings.push(format!(
                "nps_solver regressed {:.0}% — {:.1} → {:.1} solves/sec",
                100.0 * (1.0 - new / old),
                old,
                new
            ));
        }
    }

    // Service loadgen throughput: same 20% budget; a baseline recorded
    // before the service daemon existed gets a note, not a warning.
    match (loadgen_rate(baseline), loadgen_rate(current)) {
        (Some(old), Some(new)) => {
            report.compared += 1;
            if new < old * (1.0 - TOLERANCE) {
                report.warnings.push(format!(
                    "loadgen service throughput regressed {:.0}% — \
                     {:.0} → {:.0} probes/sec",
                    100.0 * (1.0 - new / old),
                    old,
                    new
                ));
            }
        }
        (None, Some(_)) => {
            report.notes.push(
                "baseline predates the `loadgen` section — service throughput \
                 recorded for the next baseline, nothing to compare"
                    .to_string(),
            );
        }
        _ => {}
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Value {
        serde_json::from_str(text).unwrap_or_else(|e| panic!("{e:?}"))
    }

    fn modern_run(sps: f64) -> String {
        format!(
            r#"{{"driver":"vivaldi","threads":1,"faults":false,"journal":false,
                "adversary":"none","tier":"exact","steps_per_sec":{sps}}}"#
        )
    }

    #[test]
    fn old_schema_rows_default_with_a_note_and_still_compare() {
        // A baseline from before journal/adversary/tier existed.
        let baseline = parse(
            r#"{"runs":[{"driver":"vivaldi","threads":1,"faults":false,
                "steps_per_sec":1000}]}"#,
        );
        let current = parse(&format!(r#"{{"runs":[{}]}}"#, modern_run(990.0)));
        let report = compare(&baseline, &current);
        assert_eq!(report.compared, 1, "defaults must keep rows comparable");
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
        for name in ["journal", "adversary", "tier"] {
            assert!(
                report.notes.iter().any(|n| n.contains(&format!("`{name}`"))),
                "missing migration note for {name}: {:?}",
                report.notes
            );
        }
    }

    #[test]
    fn modern_schema_emits_no_migration_notes() {
        let baseline = parse(&format!(r#"{{"runs":[{}]}}"#, modern_run(1000.0)));
        let current = parse(&format!(r#"{{"runs":[{}]}}"#, modern_run(1000.0)));
        let report = compare(&baseline, &current);
        assert_eq!(report.compared, 1);
        assert!(report.notes.is_empty(), "{:?}", report.notes);
    }

    #[test]
    fn regressions_against_a_defaulted_baseline_still_warn() {
        let baseline = parse(
            r#"{"runs":[{"driver":"vivaldi","threads":1,"faults":false,
                "steps_per_sec":1000}]}"#,
        );
        let current = parse(&format!(r#"{{"runs":[{}]}}"#, modern_run(500.0)));
        let report = compare(&baseline, &current);
        assert_eq!(report.warnings.len(), 1);
        assert!(report.warnings[0].contains("regressed 50%"));
    }

    #[test]
    fn loadgen_section_compares_and_notes_missing_baseline() {
        let with = parse(r#"{"loadgen":{"probes_per_sec":50000}}"#);
        let without = parse("{}");
        let slow = parse(r#"{"loadgen":{"probes_per_sec":10000}}"#);

        let fresh = compare(&without, &with);
        assert!(fresh.notes.iter().any(|n| n.contains("loadgen")));
        assert!(fresh.warnings.is_empty());

        let steady = compare(&with, &with);
        assert_eq!(steady.compared, 1);
        assert!(steady.warnings.is_empty());

        let regressed = compare(&with, &slow);
        assert_eq!(regressed.warnings.len(), 1);
        assert!(regressed.warnings[0].contains("probes/sec"));
    }

    #[test]
    fn cross_tier_rows_never_compare() {
        let baseline = parse(
            r#"{"runs":[{"driver":"vivaldi","threads":1,"faults":false,
                "journal":false,"adversary":"none","tier":"fast",
                "steps_per_sec":9000}]}"#,
        );
        let current = parse(&format!(r#"{{"runs":[{}]}}"#, modern_run(100.0)));
        let report = compare(&baseline, &current);
        assert_eq!(report.compared, 0, "exact row must not match fast baseline");
        assert!(report.warnings.is_empty());
    }
}
