//! Shared plumbing for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper: it runs the corresponding `ices-sim` experiment, prints the
//! series/rows the paper plots to stdout, and (unless `--no-json`) drops
//! the raw result as JSON under `results/` so EXPERIMENTS.md numbers can
//! be traced back to data.
//!
//! Usage shared by all binaries:
//!
//! ```text
//! figNN [--scale test|harness|paper] [--seed N] [--no-json]
//! ```
//!
//! `harness` (the default) runs a reduced-but-paper-shaped configuration
//! in tens of seconds to minutes; `paper` runs the full 1740-node King
//! matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ices_sim::experiments::Scale;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

pub mod check;

/// The one sanctioned wall-clock [`ices_obs::Clock`]: milliseconds since
/// construction, read from [`std::time::Instant`].
///
/// Simulation code stamps observability with the tick-driven
/// [`ices_obs::TickClock`] so runs stay deterministic (DET02/OBS01); the
/// benchmark harness is the only place real time is allowed to leak in,
/// because its whole job is measuring it.
#[derive(Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// A clock whose epoch is "now".
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::start()
    }
}

impl ices_obs::Clock for WallClock {
    fn now(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

/// Parsed command-line options for a reproduction binary.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Experiment scale.
    pub scale: Scale,
    /// Human name of the chosen scale.
    pub scale_name: String,
    /// Whether to write the JSON result file.
    pub write_json: bool,
}

impl HarnessOptions {
    /// Parse `std::env::args`, honoring `--scale`, `--seed`, `--no-json`.
    ///
    /// Exits with a usage message on unknown arguments.
    pub fn from_args() -> Self {
        let mut scale_name = "harness".to_string();
        let mut seed: Option<u64> = None;
        let mut write_json = true;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    scale_name = args
                        .next()
                        .unwrap_or_else(|| usage("--scale needs a value"));
                }
                "--seed" => {
                    let v = args.next().unwrap_or_else(|| usage("--seed needs a value"));
                    seed = Some(v.parse().unwrap_or_else(|_| usage("--seed must be a u64")));
                }
                "--no-json" => write_json = false,
                other => usage(&format!("unknown argument: {other}")),
            }
        }
        let mut scale = match scale_name.as_str() {
            "test" => Scale::test(),
            "harness" => Scale::harness_default(),
            "paper" => Scale::paper(),
            other => usage(&format!("unknown scale: {other}")),
        };
        if let Some(s) = seed {
            scale.seed = s;
        }
        Self {
            scale,
            scale_name,
            write_json,
        }
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: <bin> [--scale test|harness|paper] [--seed N] [--no-json]");
    std::process::exit(2);
}

/// Write an experiment result as JSON under `results/<name>.<scale>.json`.
pub fn write_result<T: Serialize>(options: &HarnessOptions, name: &str, value: &T) {
    if !options.write_json {
        return;
    }
    let dir = PathBuf::from("results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create results dir: {e}");
        return;
    }
    let path = dir.join(format!("{name}.{}.json", options.scale_name));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("(raw result written to {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize result: {e}"),
    }
}

/// Print a labelled CDF curve as aligned `x F(x)` rows, decimated to at
/// most `max_rows` rows for terminal friendliness.
pub fn print_curve(curve: &ices_sim::experiments::Curve, max_rows: usize) {
    println!("## {}", curve.label);
    let step = (curve.points.len() / max_rows.max(1)).max(1);
    for (i, (x, f)) in curve.points.iter().enumerate() {
        if i % step == 0 || i + 1 == curve.points.len() {
            println!("{x:>12.4}  {f:>8.4}");
        }
    }
    println!();
}

/// Print a standard header naming the experiment and scale.
pub fn print_header(options: &HarnessOptions, title: &str) {
    println!("=== {title} ===");
    println!(
        "scale: {} (king={}, planetlab={}, seed={})",
        options.scale_name,
        options.scale.king_nodes,
        options.scale.planetlab_nodes,
        options.scale.seed
    );
    println!();
}

/// Load a previously saved detection sweep from `results/`, or run it
/// and save it. Figs 9–12 (and 14/15) share their sweeps, so the first
/// binary to run pays the simulation cost and the rest reuse the JSON.
pub fn load_or_run_sweep(
    options: &HarnessOptions,
    name: &str,
    run: impl FnOnce() -> ices_sim::experiments::detection::DetectionSweep,
) -> ices_sim::experiments::detection::DetectionSweep {
    let path = PathBuf::from("results").join(format!("{name}.{}.json", options.scale_name));
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(sweep) = serde_json::from_str(&text) {
            eprintln!("(reusing cached sweep from {})", path.display());
            return sweep;
        }
        eprintln!("warning: ignoring unparsable cache at {}", path.display());
    }
    let sweep = run();
    write_result(options, name, &sweep);
    sweep
}

#[cfg(test)]
mod tests {
    use super::*;
    use ices_sim::experiments::Curve;

    #[test]
    fn print_curve_handles_small_curves() {
        let c = Curve::from_samples("t", vec![0.1, 0.2, 0.3], 5);
        print_curve(&c, 10); // must not panic or divide by zero
    }

    #[test]
    fn wall_clock_is_monotone() {
        use ices_obs::Clock;
        let clock = WallClock::start();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a, "Instant-backed clock must be monotone");
    }
}
