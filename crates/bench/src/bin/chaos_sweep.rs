//! Chaos sweep — graceful degradation of the secured Vivaldi system
//! under injected network faults (probe loss, timeouts, node churn,
//! Surveyor outages). Not a paper figure: the paper assumes a reliable
//! measurement substrate; this maps how detection quality (TPR/FPR)
//! and embedding accuracy erode when it is not.
//!
//! After the grid, the harness runs the total-blackout edge case (every
//! Surveyor permanently down from the moment detection is armed, zero
//! sampled honest pairs): the run must degrade — null accuracy,
//! deferred-arm counters — instead of panicking.

use ices_bench::{print_header, write_result, HarnessOptions};
use ices_sim::experiments::chaos::{
    chaos_sweep, surveyor_blackout_cell, ChaosCell, DEFAULT_CHURN_LEVELS, DEFAULT_LOSS_LEVELS,
};

/// Render an optional accuracy figure; degraded runs print `-`.
fn acc(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{v:>8.3}"),
        None => format!("{:>8}", "-"),
    }
}

fn row(cell: &ChaosCell) {
    println!(
        "{:>5.0}% {:>5.0}% | {:>7.3} {:>7.4} | {} {} | {:>9} {:>8} {:>8}",
        cell.loss * 100.0,
        cell.churn * 100.0,
        cell.confusion.tpr(),
        cell.confusion.fpr(),
        acc(cell.accuracy_median),
        acc(cell.accuracy_p95),
        cell.faults.total_failed_probes(),
        cell.faults.coasted_steps,
        cell.faults.evictions,
    );
}

fn main() {
    let options = HarnessOptions::from_args();
    print_header(&options, "Chaos sweep: detection + accuracy under faults");
    let sweep = chaos_sweep(&options.scale, &DEFAULT_LOSS_LEVELS, &DEFAULT_CHURN_LEVELS);
    write_result(&options, "chaos_sweep", &sweep);

    println!(
        "{:>6} {:>6} | {:>7} {:>7} | {:>8} {:>8} | {:>9} {:>8} {:>8}",
        "loss", "churn", "TPR", "FPR", "med err", "p95 err", "failed", "coasts", "evicted"
    );
    for cell in &sweep.cells {
        row(cell);
    }
    println!();
    println!("(degradation should be graceful: FPR bounded as samples go missing,");
    println!(" accuracy eroding smoothly rather than collapsing)");

    let blackout = surveyor_blackout_cell(&options.scale);
    write_result(&options, "chaos_blackout", &blackout);
    println!();
    println!("total Surveyor blackout (armed under 100% outage, zero sampled pairs):");
    row(&blackout);
    println!(
        " deferred arms {:>4}  late arms {:>4}  (null accuracy = degraded run, not a failure)",
        blackout.faults.deferred_arms, blackout.faults.late_arms
    );
}
