//! Chaos sweep — graceful degradation of the secured Vivaldi system
//! under injected network faults (probe loss, timeouts, node churn,
//! Surveyor outages). Not a paper figure: the paper assumes a reliable
//! measurement substrate; this maps how detection quality (TPR/FPR)
//! and embedding accuracy erode when it is not.

use ices_bench::{print_header, write_result, HarnessOptions};
use ices_sim::experiments::chaos::{
    chaos_sweep, DEFAULT_CHURN_LEVELS, DEFAULT_LOSS_LEVELS,
};

fn main() {
    let options = HarnessOptions::from_args();
    print_header(&options, "Chaos sweep: detection + accuracy under faults");
    let sweep = chaos_sweep(&options.scale, &DEFAULT_LOSS_LEVELS, &DEFAULT_CHURN_LEVELS);
    write_result(&options, "chaos_sweep", &sweep);

    println!(
        "{:>6} {:>6} | {:>7} {:>7} | {:>8} {:>8} | {:>9} {:>8} {:>8}",
        "loss", "churn", "TPR", "FPR", "med err", "p95 err", "failed", "coasts", "evicted"
    );
    for cell in &sweep.cells {
        println!(
            "{:>5.0}% {:>5.0}% | {:>7.3} {:>7.4} | {:>8.3} {:>8.3} | {:>9} {:>8} {:>8}",
            cell.loss * 100.0,
            cell.churn * 100.0,
            cell.confusion.tpr(),
            cell.confusion.fpr(),
            cell.accuracy_median,
            cell.accuracy_p95,
            cell.faults.total_failed_probes(),
            cell.faults.coasted_steps,
            cell.faults.evictions,
        );
    }
    println!();
    println!("(degradation should be graceful: FPR bounded as samples go missing,");
    println!(" accuracy eroding smoothly rather than collapsing)");
}
