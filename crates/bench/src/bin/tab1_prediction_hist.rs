//! Table 1 — prediction-error histogram: per interval, the number of
//! contributing nodes and the occurrence counts of the smallest/largest
//! error observed in the interval.

use ices_bench::{print_header, write_result, HarnessOptions};
use ices_sim::experiments::validation::fig3_prediction_cdf;

fn main() {
    let options = HarnessOptions::from_args();
    print_header(&options, "Table 1: prediction-error histogram");
    let result = fig3_prediction_cdf(&options.scale);

    for (name, table) in [
        ("Vivaldi (PlanetLab-like)", &result.table_vivaldi),
        ("NPS (PlanetLab-like)", &result.table_nps),
    ] {
        println!("## {name}");
        println!(
            "{:<14}  {:>6}  {:>16}  {:>16}  {:>8}",
            "interval", "nodes", "min-err occurs", "max-err occurs", "total"
        );
        for bin in table {
            let interval = if bin.hi.is_finite() {
                format!("{:.2}-{:.2}", bin.lo, bin.hi)
            } else {
                format!("{:.2}+", bin.lo)
            };
            println!(
                "{:<14}  {:>6}  {:>16}  {:>16}  {:>8}",
                interval, bin.node_count, bin.min_occurrences, bin.max_occurrences, bin.total
            );
        }
        println!();
    }
    println!("(paper's Table 1 format: nodes / occurrences of min error / occurrences of max)");

    write_result(&options, "tab1_prediction_hist", &result);
}
