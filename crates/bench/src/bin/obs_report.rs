//! Render an `ices-obs` run journal into the per-tick detector-quality
//! time series (FPR / TPR / coast rate), or validate one against the
//! JSONL schema.
//!
//! ```text
//! obs_report <journal.jsonl>        render the report
//! obs_report --check <journal.jsonl> validate only; exit 1 on violations
//! obs_report --smoke [path]         run a small journaled secured-Vivaldi
//!                                   pipeline (default target/obs_smoke.jsonl),
//!                                   then validate and render it
//! ```
//!
//! The journal is produced by any driver with `enable_journal` set — see
//! DESIGN.md §10 for the schema and the determinism contract (journals
//! are bit-identical across `ICES_THREADS` settings, so a report rendered
//! from a parallel run is the report of the sequential one).

use ices_obs::report::{parse, series, RunJournal};
use ices_sim::experiments::chaos::chaos_cell_journaled;
use ices_sim::experiments::Scale;
use std::process::ExitCode;

/// Max series rows printed before decimation kicks in.
const MAX_ROWS: usize = 48;

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("usage: obs_report <journal.jsonl> | --check <journal.jsonl> | --smoke [path]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check") => match args.get(1) {
            Some(path) => check(path),
            None => usage("--check needs a journal path"),
        },
        Some("--smoke") => {
            if args.len() > 2 {
                return usage("--smoke takes at most one path");
            }
            smoke(args.get(1))
        }
        Some(path) if !path.starts_with("--") && args.len() == 1 => render_file(path),
        Some(other) => usage(&format!("unknown argument: {other}")),
        None => usage("missing journal path"),
    }
}

/// Strict schema validation: print every violation, exit 1 on any.
fn check(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (run, errors) = parse(&text);
    if errors.is_empty() {
        println!(
            "{path}: ok ({} tick rows, {} phases, schema v{})",
            run.ticks.len(),
            run.phases.len(),
            run.meta.map(|m| m.version).unwrap_or(0)
        );
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("{path}: {e}");
        }
        eprintln!("{path}: {} schema violation(s)", errors.len());
        ExitCode::FAILURE
    }
}

fn render_file(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (run, errors) = parse(&text);
    for e in &errors {
        eprintln!("warning: {e}");
    }
    render(&run);
    ExitCode::SUCCESS
}

/// Run a small journaled chaos cell and report on its journal: the
/// end-to-end smoke path tier-2 exercises.
fn smoke(path: Option<&String>) -> ExitCode {
    let default = "target/obs_smoke.jsonl".to_string();
    let path = path.unwrap_or(&default);
    let (_, bytes) = chaos_cell_journaled(&Scale::test(), 0.05, 0.05);
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(path, &bytes) {
        eprintln!("error: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("(journal written to {path})");
    let text = String::from_utf8_lossy(&bytes).into_owned();
    let (run, errors) = parse(&text);
    if !errors.is_empty() {
        for e in &errors {
            eprintln!("{path}: {e}");
        }
        eprintln!("{path}: smoke journal failed schema validation");
        return ExitCode::FAILURE;
    }
    render(&run);
    ExitCode::SUCCESS
}

fn opt(x: Option<f64>, width: usize) -> String {
    match x {
        Some(v) => format!("{v:>width$.4}"),
        None => format!("{:>width$}", "-"),
    }
}

fn render(run: &RunJournal) {
    if let Some(meta) = &run.meta {
        println!(
            "run: driver={} nodes={} seed={} (schema v{})",
            meta.driver, meta.nodes, meta.seed, meta.version
        );
    }
    if !run.phases.is_empty() {
        println!("phases:");
        for p in &run.phases {
            println!("  {:>12}  ends t={:<8} spans {} ticks", p.name, p.t, p.ticks);
        }
    }
    if !run.event_counts.is_empty() {
        let evs: Vec<String> = run
            .event_counts
            .iter()
            .map(|(n, c)| format!("{n}={c}"))
            .collect();
        println!("events: {}", evs.join(" "));
    }

    let pts = series(run);
    if pts.is_empty() {
        println!("(no tick rows)");
    } else {
        println!();
        println!(
            "{:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
            "tick", "FPR", "TPR", "coast", "cum FPR", "cum TPR"
        );
        let step = (pts.len() / MAX_ROWS).max(1);
        for (i, p) in pts.iter().enumerate() {
            if i % step == 0 || i + 1 == pts.len() {
                println!(
                    "{:>8} {} {} {} {} {}",
                    p.t,
                    opt(p.fpr, 8),
                    opt(p.tpr, 8),
                    opt(p.coast_rate, 8),
                    opt(p.cum_fpr, 9),
                    opt(p.cum_tpr, 9)
                );
            }
        }
    }

    if !run.summary_counters.is_empty() {
        println!();
        println!("final counters:");
        for (name, v) in &run.summary_counters {
            println!("  {name:<28} {v:>10}");
        }
    }
}
