//! Fig 3 — CDF of prediction errors across all nodes, for all four
//! system × substrate combinations.

use ices_bench::{print_curve, print_header, write_result, HarnessOptions};
use ices_sim::experiments::validation::fig3_prediction_cdf;

fn main() {
    let options = HarnessOptions::from_args();
    print_header(&options, "Fig 3: CDF of prediction errors");
    let result = fig3_prediction_cdf(&options.scale);

    for curve in &result.curves {
        print_curve(curve, 30);
        println!(
            "  80th percentile: {:.4}   95th percentile: {:.4}",
            curve.quantile_x(0.8),
            curve.quantile_x(0.95)
        );
        println!();
    }
    println!("(paper: the vast majority of prediction errors are excellent, with a");
    println!(" small tail contributed by a handful of pathological nodes)");

    write_result(&options, "fig03_prediction_cdf", &result);
}
