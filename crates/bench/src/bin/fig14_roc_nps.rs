//! Fig 14 — ROC curves of the detection test securing NPS under the
//! colluding reference-point attack with anti-detection.

use ices_bench::{load_or_run_sweep, print_header, HarnessOptions};
use ices_sim::experiments::detection::{
    fig14_nps_sweep, fig14_nps_sweep_with_drag, NPS_DRAG_STEALTHY, PAPER_ALPHAS, PAPER_FRACTIONS,
};

fn main() {
    let options = HarnessOptions::from_args();
    print_header(
        &options,
        "Fig 14: ROC curves (NPS, colluding RP attack with anti-detection)",
    );
    let sweep = load_or_run_sweep(&options, "sweep_nps", || {
        fig14_nps_sweep(&options.scale, &PAPER_FRACTIONS, &PAPER_ALPHAS)
    });

    for &fraction in &PAPER_FRACTIONS {
        let roc = sweep.roc_for(fraction);
        if roc.points.is_empty() {
            continue;
        }
        let positives = sweep
            .cell(fraction, PAPER_ALPHAS[0])
            .map(|c| c.confusion.positives())
            .unwrap_or(0);
        println!(
            "## {}% malicious nodes ({} malicious steps observed)",
            (fraction * 100.0).round(),
            positives
        );
        if positives == 0 {
            println!("   conspiracy never reached 5 reference points in a layer");
            println!();
            continue;
        }
        println!("{:>8}  {:>10}  {:>10}", "alpha", "FPR", "TPR");
        for p in &roc.points {
            println!("{:>8.2}  {:>10.4}  {:>10.4}", p.alpha, p.fpr, p.tpr);
        }
        println!("AUC = {:.4}", roc.auc());
        println!();
    }
    println!("(paper: slightly better than the Vivaldi ROCs — NPS's built-in filter");
    println!(" assists, and the hierarchy limits mis-positioning propagation)");
    println!();

    // Extension: the stealth/effectiveness trade-off. A conspiracy that
    // sizes its per-sample deviations near the honest noise floor evades
    // the test far more often — but each accepted sample then moves the
    // victim proportionally less.
    println!("## stealthy-drag variant (drag = {NPS_DRAG_STEALTHY}), 30% malicious");
    let stealth = load_or_run_sweep(&options, "sweep_nps_stealthy", || {
        fig14_nps_sweep_with_drag(&options.scale, &[0.30], &PAPER_ALPHAS, NPS_DRAG_STEALTHY)
    });
    let roc = stealth.roc_for(0.30);
    println!("{:>8}  {:>10}  {:>10}", "alpha", "FPR", "TPR");
    for p in &roc.points {
        println!("{:>8.2}  {:>10.4}  {:>10.4}", p.alpha, p.fpr, p.tpr);
    }
    println!("AUC = {:.4}", roc.auc());
}
