//! Fig 12 — false negative rate vs malicious-population size, per
//! significance level.

use ices_bench::{load_or_run_sweep, print_header, HarnessOptions};
use ices_sim::experiments::detection::{fig9_12_vivaldi_sweep, PAPER_ALPHAS, PAPER_FRACTIONS};

fn main() {
    let options = HarnessOptions::from_args();
    print_header(&options, "Fig 12: false negative rate (Vivaldi)");
    let sweep = load_or_run_sweep(&options, "sweep_vivaldi", || {
        fig9_12_vivaldi_sweep(&options.scale, &PAPER_FRACTIONS, &PAPER_ALPHAS)
    });

    print!("{:>12}", "malicious");
    for &alpha in &PAPER_ALPHAS {
        print!("  {:>10}", format!("α={alpha}"));
    }
    println!();
    for &fraction in &PAPER_FRACTIONS {
        print!("{:>11}%", (fraction * 100.0).round());
        for &alpha in &PAPER_ALPHAS {
            match sweep.cell(fraction, alpha) {
                Some(c) => print!("  {:>10.4}", c.confusion.fnr()),
                None => print!("  {:>10}", "-"),
            }
        }
        println!();
    }
    println!();
    println!("(paper: lower α misses more malicious steps; false negatives matter");
    println!(" more than false positives because they let the space distort)");
}
