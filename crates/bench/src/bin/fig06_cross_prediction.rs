//! Fig 6 — maximum prediction error for every (normal node, Surveyor)
//! pair: the full cross-prediction matrix.

use ices_bench::{print_header, write_result, HarnessOptions};
use ices_sim::experiments::cross_prediction::fig678_cross_prediction;

fn main() {
    let options = HarnessOptions::from_args();
    print_header(
        &options,
        "Fig 6: max prediction errors with Surveyor filter parameters",
    );
    let result = fig678_cross_prediction(&options.scale);

    println!(
        "{} normal nodes × {} Surveyors = {} cells",
        result.node_count,
        result.surveyor_count,
        result.cells.len()
    );
    println!();
    println!(
        "{:>6}  {:>8}  {:>10}  {:>10}  {:>10}",
        "node", "surveyor", "rtt (ms)", "max err", "mean err"
    );
    let step = (result.cells.len() / 60).max(1);
    for (i, c) in result.cells.iter().enumerate() {
        if i % step == 0 {
            println!(
                "{:>6}  {:>8}  {:>10.1}  {:>10.4}  {:>10.4}",
                c.node, c.surveyor, c.rtt_ms, c.max_error, c.mean_error
            );
        }
    }
    println!();
    let per_node_best: f64 = {
        let mut best: std::collections::BTreeMap<usize, f64> = Default::default();
        for c in &result.cells {
            let e = best.entry(c.node).or_insert(f64::INFINITY);
            *e = e.min(c.max_error);
        }
        best.values().sum::<f64>() / best.len().max(1) as f64
    };
    println!("mean over nodes of their BEST Surveyor's max prediction error: {per_node_best:.4}");
    println!("(paper: every node can find at least one Surveyor with very low errors,");
    println!(" but not every Surveyor is a good representative for a given node)");

    write_result(&options, "fig06_cross_prediction", &result);
}
