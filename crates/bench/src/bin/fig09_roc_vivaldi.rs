//! Fig 9 — ROC curves of the detection test securing Vivaldi under the
//! colluding isolation attack, one curve per malicious-population size,
//! one tick per significance level.

use ices_bench::{load_or_run_sweep, print_header, HarnessOptions};
use ices_sim::experiments::detection::{fig9_12_vivaldi_sweep, PAPER_ALPHAS, PAPER_FRACTIONS};

fn main() {
    let options = HarnessOptions::from_args();
    print_header(
        &options,
        "Fig 9: ROC curves (Vivaldi, colluding isolation attack)",
    );
    let sweep = load_or_run_sweep(&options, "sweep_vivaldi", || {
        fig9_12_vivaldi_sweep(&options.scale, &PAPER_FRACTIONS, &PAPER_ALPHAS)
    });

    for &fraction in &PAPER_FRACTIONS {
        let roc = sweep.roc_for(fraction);
        if roc.points.is_empty() {
            continue;
        }
        println!("## {}% malicious nodes", (fraction * 100.0).round());
        println!("{:>8}  {:>10}  {:>10}", "alpha", "FPR", "TPR");
        for p in &roc.points {
            println!("{:>8.2}  {:>10.4}  {:>10.4}", p.alpha, p.fpr, p.tpr);
        }
        println!("AUC = {:.4}", roc.auc());
        println!();
    }
    println!("(paper: excellent for ≤20% malicious, still good at ~30%, degrading");
    println!(" gracefully beyond; the 5% significance level sits in the ROC elbow)");
}
