//! Fig 2 — measured vs predicted relative error over time for one node,
//! plus the prediction error (their absolute difference).

use ices_bench::{print_header, write_result, HarnessOptions};
use ices_sim::experiments::validation::fig2_tracking;

fn main() {
    let options = HarnessOptions::from_args();
    print_header(
        &options,
        "Fig 2: Kalman filter response — estimation vs actual",
    );
    let result = fig2_tracking(&options.scale);

    println!("node {} re-embedding trace:", result.node);
    println!(
        "{:>6}  {:>10}  {:>10}  {:>12}",
        "step", "measured", "predicted", "pred. error"
    );
    let step = (result.series.len() / 60).max(1);
    for (i, (n, measured, predicted, err)) in result.series.iter().enumerate() {
        if i % step == 0 || i + 1 == result.series.len() {
            println!("{n:>6}  {measured:>10.4}  {predicted:>10.4}  {err:>12.4}");
        }
    }
    let n = result.series.len() as f64;
    let mean_err: f64 = result.series.iter().map(|(_, _, _, e)| *e).sum::<f64>() / n;
    let mean_meas: f64 = result
        .series
        .iter()
        .map(|(_, m, _, _)| m.abs())
        .sum::<f64>()
        / n;
    println!();
    println!("mean measured relative error: {mean_meas:.4}");
    println!("mean prediction error:        {mean_err:.4}");
    println!("(the paper's Fig 2 shows prediction errors far below the measured errors)");

    write_result(&options, "fig02_tracking", &result);
}
