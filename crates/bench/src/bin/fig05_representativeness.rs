//! Fig 5 — representativeness of an 8% random Surveyor deployment on
//! both substrates.

use ices_bench::{print_curve, print_header, write_result, HarnessOptions};
use ices_sim::experiments::representativeness::fig5_representativeness;

fn main() {
    let options = HarnessOptions::from_args();
    print_header(&options, "Fig 5: representativeness with 8% Surveyors");
    let result = fig5_representativeness(&options.scale);

    for curve in &result.curves {
        print_curve(curve, 25);
    }
    println!(
        "KS distances: King {:.4}, PlanetLab {:.4}",
        result.ks_king, result.ks_planetlab
    );
    println!("(paper: the Surveyor CDFs closely track the normal-node CDFs on both)");

    write_result(&options, "fig05_representativeness", &result);
}
