//! Fig 15 — CDFs of measured relative errors across normal NPS nodes:
//! clean baseline and attack with/without the Kalman detection (NPS's
//! own basic filter stays on throughout, as in the paper).

use ices_bench::{print_curve, print_header, write_result, HarnessOptions};
use ices_sim::experiments::system_perf::fig15_nps;

fn main() {
    let options = HarnessOptions::from_args();
    print_header(&options, "Fig 15: NPS system accuracy under attack");
    let result = fig15_nps(&options.scale, &[0.1, 0.3, 0.5]);

    for curve in &result.curves {
        print_curve(curve, 25);
    }
    println!("median relative error per configuration:");
    for (label, median) in &result.medians {
        println!("  {label:<42} {median:.4}");
    }
    println!();
    println!("(paper: near immunity up to rather severe attacks (~30%), with a");
    println!(" heavier tail at 50% since victimized nodes remain effectively hit)");

    write_result(&options, "fig15_nps_cdf", &result);
}
