//! Fig 7 — correlation between node↔Surveyor RTT and prediction
//! accuracy: locality makes a Surveyor's filter a better representative.

use ices_bench::{print_header, write_result, HarnessOptions};
use ices_sim::experiments::cross_prediction::fig678_cross_prediction;

fn main() {
    let options = HarnessOptions::from_args();
    print_header(&options, "Fig 7: node-Surveyor RTT vs prediction accuracy");
    let result = fig678_cross_prediction(&options.scale);

    // Bucket the scatter into RTT bands for a readable trend table.
    let max_rtt = result.cells.iter().map(|c| c.rtt_ms).fold(0.0f64, f64::max);
    const BANDS: usize = 12;
    let width = (max_rtt / BANDS as f64).max(1.0);
    let mut sums = [0.0f64; BANDS];
    let mut counts = [0usize; BANDS];
    for c in &result.cells {
        let b = ((c.rtt_ms / width) as usize).min(BANDS - 1);
        sums[b] += c.mean_error;
        counts[b] += 1;
    }
    println!(
        "{:>16}  {:>8}  {:>22}",
        "RTT band (ms)", "pairs", "mean prediction error"
    );
    for b in 0..BANDS {
        if counts[b] == 0 {
            continue;
        }
        println!(
            "{:>7.0} - {:>6.0}  {:>8}  {:>22.4}",
            b as f64 * width,
            (b + 1) as f64 * width,
            counts[b],
            sums[b] / counts[b] as f64
        );
    }
    println!();
    println!(
        "Pearson correlation(RTT, mean prediction error) = {:.4}",
        result.rtt_error_correlation()
    );
    println!("(paper: positive — better locality yields more accurate predictions)");

    write_result(&options, "fig07_rtt_correlation", &result);
}
