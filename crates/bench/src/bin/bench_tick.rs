//! Tick-engine throughput: times `N` clean passes of each driver on the
//! exact sequential path (`ICES_THREADS=1`) and on every available
//! worker, and writes `BENCH_sim.json` at the working directory root so
//! future changes have a perf trajectory to compare against.
//!
//! A "step" is one embedding update: one neighbor probe for Vivaldi,
//! one reference-point probe for NPS. Determinism makes the two
//! configurations directly comparable — they produce bit-for-bit
//! identical simulations, so any throughput delta is pure scheduling.
//!
//! Alongside the paper-shaped PlanetLab run, a **scale sweep** times the
//! Vivaldi engine on streamed King topologies (no dense matrix, every
//! base RTT recomputed per probe) at 280 / 1740 / 50 000 nodes, and —
//! behind `ICES_SCALE=xl` — smoke-tests constructing a million-node
//! streamed network plus a probe storm over it. A pool-dispatch
//! microbenchmark records what one persistent-pool broadcast costs
//! per call next to what the legacy per-call `thread::scope` spawn
//! path cost, so the pool's whole reason to exist is a number in the
//! perf trajectory.
//!
//! Two newer entries ride the same report: a **detector-bank**
//! microbenchmark timing the scalar per-peer vetting loop against the
//! SoA `DetectorBank` sweep at paper scale (1,740 peers), asserting
//! bit-identical suspicious counts while it times; and per-driver
//! **fast-tier rows** (`ICES_FAST` reassociated kernels, enabled via
//! an in-process override so one run records both tiers) — every row
//! carries a `tier` tag so `bench_check` never compares across tiers.
//!
//! ```text
//! bench_tick [--scale test|harness|paper] [--seed N] [--no-json]
//! ICES_SCALE=xl bench_tick   # adds the million-node streamed smoke
//! ```

use ices_bench::{print_header, HarnessOptions};
use ices_coord::{Coordinate, Embedding, PeerSample};
use ices_core::{Detector, DetectorBank, StateSpaceParams};
use ices_netsim::{ChurnModel, FaultPlan, KingConfig, Network};
use ices_obs::Journal;
use ices_nps::{NpsConfig, NpsNode};
use ices_sim::experiments::Scale;
use ices_sim::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use ices_sim::{NpsSimulation, VivaldiSimulation};
use serde::Serialize;
use std::time::Instant;

/// The faulty-network configuration timed alongside the clean runs:
/// 10% probe loss, 2.5% timeouts, 5% per-epoch churn — the chaos
/// sweep's mid-grid operating point.
fn faulty_plan() -> FaultPlan {
    FaultPlan::lossy(0.10, 0.025).with_churn(ChurnModel::new(16, 0.05))
}

/// The numeric tier in effect, as recorded in benchmark rows.
fn ambient_tier() -> &'static str {
    if ices_par::fast_enabled() {
        "fast"
    } else {
        "exact"
    }
}

/// One timed configuration of one driver.
#[derive(Debug, Serialize)]
struct TickBench {
    driver: &'static str,
    nodes: usize,
    ticks: usize,
    threads: usize,
    /// Whether the faulty-network plan (loss + churn) was active.
    faults: bool,
    /// Whether the run emitted an `ices-obs` JSONL journal to disk.
    journal: bool,
    /// Which adversary ran through the attack-phase plumbing: `"none"`
    /// for the clean `run_clean` configurations, `"sybil"` for the
    /// Sybil swarm at the paper's malicious share, `"honest_twin"` for
    /// the honest-world run through the *same* attack-phase code path —
    /// the sybil/honest_twin delta is the intercept path's cost.
    adversary: &'static str,
    /// Numeric tier the row ran on: `"exact"` (bit-for-bit, the
    /// default) or `"fast"` (`ICES_FAST=1` reassociated kernels).
    tier: &'static str,
    secs: f64,
    steps_per_sec: f64,
}

/// Batched detection microbenchmark: one snapshot-wide classification
/// sweep (predict → evaluate → accept/coast) over a paper-scale peer
/// population, timed as a scalar `Detector` loop and as the
/// `DetectorBank` SoA kernels. Both paths run the exact tier — the same
/// FP ops in the same order — so the ratio is pure execution-shape:
/// columnized state, no per-call dispatch, `Q⁻¹(α/2)` cached per slot.
#[derive(Debug, Serialize)]
struct DetectorBankBench {
    /// Detector slots per sweep (the paper's larger population).
    peers: usize,
    /// Full classification sweeps timed per path.
    sweeps: usize,
    scalar_sweeps_per_sec: f64,
    batched_sweeps_per_sec: f64,
    /// Batched over scalar throughput; the bank's reason to exist.
    speedup: f64,
}

/// NPS coordinate-solver microbenchmark: full positioning rounds
/// (buffer samples → security filter trial solve → final solve) of a
/// single node against a fixed synthetic reference-point set, isolated
/// from probing and driver scheduling.
#[derive(Debug, Serialize)]
struct SolverBench {
    /// Synthetic reference points per round.
    reference_points: usize,
    /// Coordinate-space dimensionality.
    dims: usize,
    /// Rounds timed (each runs the trial + final simplex solves).
    solves: usize,
    secs: f64,
    solves_per_sec: f64,
}

/// One row of the streamed-topology scale sweep.
#[derive(Debug, Serialize)]
struct ScaleRow {
    /// Substrate flavor; currently always `"streamed_king"`.
    topology: &'static str,
    nodes: usize,
    ticks: usize,
    threads: usize,
    secs: f64,
    steps_per_sec: f64,
}

/// Per-call cost of putting work on the persistent pool, next to the
/// per-call cost of the legacy scoped-spawn path it replaced.
#[derive(Debug, Serialize)]
struct PoolDispatch {
    /// Mean µs per two-partition `par_map_mut` over a warm pool.
    pool_dispatch_us: f64,
    /// Mean µs per legacy `thread::scope` spawn of two workers — what
    /// every single parallel call used to pay before the pool.
    scope_spawn_us: f64,
}

/// `ICES_SCALE=xl` smoke: can a million-node streamed topology be
/// constructed and probed at all, and how fast.
#[derive(Debug, Serialize)]
struct XlSmoke {
    nodes: usize,
    construct_secs: f64,
    probes: usize,
    probes_per_sec: f64,
}

/// The full benchmark result written to `BENCH_sim.json`.
#[derive(Debug, Serialize)]
struct BenchReport {
    scale: String,
    host_parallelism: usize,
    runs: Vec<TickBench>,
    scale_sweep: Vec<ScaleRow>,
    detector_bank: DetectorBankBench,
    pool_dispatch: PoolDispatch,
    /// Present only when `ICES_SCALE=xl` requested the smoke.
    xl_streamed: Option<XlSmoke>,
    nps_solver: SolverBench,
    /// `None` on single-core hosts: a wide row is still timed (it is an
    /// oversubscription measurement), but calling its ratio to the
    /// sequential row a "speedup" would be dishonest, so none is
    /// recorded and bench_check must not expect one.
    vivaldi_speedup: Option<f64>,
    nps_speedup: Option<f64>,
}

fn scenario(scale: &Scale) -> ScenarioConfig {
    ScenarioConfig {
        seed: scale.seed,
        topology: TopologyKind::small_planetlab(scale.planetlab_nodes),
        surveyors: SurveyorPlacement::Random { fraction: 0.08 },
        malicious_fraction: 0.0,
        alpha: 0.05,
        detection: false,
        clean_cycles: scale.clean_passes,
        attack_cycles: 0,
        embed_against_surveyors_only: false,
    }
}

/// The journal sink a journaled configuration writes through: a real
/// file under `target/`, so the measured overhead includes buffered I/O.
fn bench_journal(driver: &str) -> Option<Journal> {
    if let Err(e) = std::fs::create_dir_all("target") {
        eprintln!("warning: cannot create target/: {e}");
        return None;
    }
    let path = format!("target/bench_{driver}.jsonl");
    match Journal::to_file(&path) {
        Ok(j) => Some(j),
        Err(e) => {
            eprintln!("warning: cannot open {path}: {e}");
            None
        }
    }
}

/// Repetitions per configuration; the fastest is recorded. The
/// simulations are deterministic, so reps differ only by scheduling
/// noise — and at sub-second run lengths that noise easily exceeds the
/// 5% journaling budget, making the minimum the honest estimator.
const REPS: usize = 3;

fn best_of(
    timer: fn(&Scale, usize, bool, bool) -> TickBench,
    scale: &Scale,
    threads: usize,
    faults: bool,
    journal: bool,
) -> TickBench {
    let mut best = timer(scale, threads, faults, journal);
    for _ in 1..REPS {
        let run = timer(scale, threads, faults, journal);
        if run.steps_per_sec > best.steps_per_sec {
            best = run;
        }
    }
    best
}

fn time_vivaldi(scale: &Scale, threads: usize, faults: bool, journal: bool) -> TickBench {
    let mut sim = VivaldiSimulation::new(scenario(scale));
    if faults {
        sim.set_fault_plan(faulty_plan());
    }
    if journal {
        if let Some(j) = bench_journal("vivaldi") {
            sim.enable_journal(j);
        }
    }
    let passes = scale.clean_passes;
    let steps: usize = (0..sim.len())
        .map(|i| sim.neighbors_of(i).len())
        .sum::<usize>()
        * passes;
    let start = Instant::now();
    ices_par::with_threads(threads, || sim.run_clean(passes));
    let secs = start.elapsed().as_secs_f64();
    sim.finish_journal();
    TickBench {
        driver: "vivaldi",
        nodes: sim.len(),
        ticks: passes,
        threads,
        faults,
        journal,
        adversary: "none",
        tier: ambient_tier(),
        secs,
        steps_per_sec: steps as f64 / secs,
    }
}

fn time_nps(scale: &Scale, threads: usize, faults: bool, journal: bool) -> TickBench {
    let mut sim = NpsSimulation::new(scenario(scale));
    if faults {
        sim.set_fault_plan(faulty_plan());
    }
    if journal {
        if let Some(j) = bench_journal("nps") {
            sim.enable_journal(j);
        }
    }
    let rounds = scale.nps_clean_rounds;
    let steps: usize = (0..sim.len())
        .map(|i| sim.reference_points_of(i).len())
        .sum::<usize>()
        * rounds;
    let start = Instant::now();
    ices_par::with_threads(threads, || sim.run_clean(rounds));
    let secs = start.elapsed().as_secs_f64();
    sim.finish_journal();
    TickBench {
        driver: "nps",
        nodes: sim.len(),
        ticks: rounds,
        threads,
        faults,
        journal,
        adversary: "none",
        tier: ambient_tier(),
        secs,
        steps_per_sec: steps as f64 / secs,
    }
}

/// The adversarial scenario: the paper's malicious share is present in
/// the population, detection stays off, and the run goes through the
/// attack-phase plumbing (`run` with an adversary) rather than
/// `run_clean` — so the only variable between the sybil row and its
/// honest twin is the intercept path itself.
fn adversarial_scenario(scale: &Scale) -> ScenarioConfig {
    ScenarioConfig {
        malicious_fraction: 0.2,
        ..scenario(scale)
    }
}

/// Time one attack-phase configuration of one driver: the Sybil swarm
/// at paper-scale parameters (`sybil == true`) or its honest-world
/// twin (`sybil == false`), both sequential.
fn time_adversarial(scale: &Scale, driver: &'static str, sybil: bool) -> TickBench {
    let swarm = |sim_malicious: &std::collections::BTreeSet<usize>,
                 median_rtt: f64,
                 dims: usize| {
        ices_attack::SybilSwarmAttack::new(
            sim_malicious.iter().copied(),
            (median_rtt * 4.0).max(500.0),
            10.0,
            dims,
            scale.seed ^ 0x5B11,
        )
    };
    let honest = ices_attack::HonestWorld;
    if driver == "vivaldi" {
        let mut sim = VivaldiSimulation::new(adversarial_scenario(scale));
        // 4× the clean-pass count: the vivaldi engine finishes a pass in
        // tens of ms, and the sybil/twin delta this pair exists to bound
        // (<10%) drowns in scheduler noise at that run length.
        let passes = scale.clean_passes * 4;
        let steps: usize = (0..sim.len())
            .map(|i| sim.neighbors_of(i).len())
            .sum::<usize>()
            * passes;
        let attack = swarm(
            sim.malicious(),
            sim.network().median_base_rtt(),
            sim.coordinate(0).dims(),
        );
        let start = Instant::now();
        ices_par::with_threads(1, || {
            if sybil {
                sim.run(passes, &attack, false);
            } else {
                sim.run(passes, &honest, false);
            }
        });
        let secs = start.elapsed().as_secs_f64();
        TickBench {
            driver,
            nodes: sim.len(),
            ticks: passes,
            threads: 1,
            faults: false,
            journal: false,
            adversary: if sybil { "sybil" } else { "honest_twin" },
            tier: ambient_tier(),
            secs,
            steps_per_sec: steps as f64 / secs,
        }
    } else {
        let mut sim = NpsSimulation::new(adversarial_scenario(scale));
        let rounds = scale.nps_clean_rounds;
        let steps: usize = (0..sim.len())
            .map(|i| sim.reference_points_of(i).len())
            .sum::<usize>()
            * rounds;
        let attack = swarm(
            sim.malicious(),
            sim.network().median_base_rtt(),
            sim.coordinate(0).dims(),
        );
        let start = Instant::now();
        ices_par::with_threads(1, || {
            if sybil {
                sim.run(rounds, &attack, false);
            } else {
                sim.run(rounds, &honest, false);
            }
        });
        let secs = start.elapsed().as_secs_f64();
        TickBench {
            driver,
            nodes: sim.len(),
            ticks: rounds,
            threads: 1,
            faults: false,
            journal: false,
            adversary: if sybil { "sybil" } else { "honest_twin" },
            tier: ambient_tier(),
            secs,
            steps_per_sec: steps as f64 / secs,
        }
    }
}

/// Extra repetitions for the adversarial pair: the 10% intercept-path
/// budget is tighter than the 20% regression budget, so its two rows
/// get more chances to shed scheduler noise (best-of is the honest
/// estimator for a deterministic workload).
const ADV_REPS: usize = 5;

fn best_adversarial(scale: &Scale, driver: &'static str, sybil: bool) -> TickBench {
    let mut best = time_adversarial(scale, driver, sybil);
    for _ in 1..ADV_REPS {
        let run = time_adversarial(scale, driver, sybil);
        if run.steps_per_sec > best.steps_per_sec {
            best = run;
        }
    }
    best
}

/// A detection-off, fault-free scenario on a **streamed** King
/// topology: no dense matrix exists at any size, so the same code path
/// scales from the paper's 1740 nodes to 50k and beyond in O(n) memory.
fn streamed_scenario(seed: u64, nodes: usize, passes: usize) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        topology: TopologyKind::StreamedKing(KingConfig::small(nodes)),
        surveyors: SurveyorPlacement::Random { fraction: 0.08 },
        malicious_fraction: 0.0,
        alpha: 0.05,
        detection: false,
        clean_cycles: passes,
        attack_cycles: 0,
        embed_against_surveyors_only: false,
    }
}

/// Time `passes` clean Vivaldi passes on a streamed King topology.
fn time_streamed_vivaldi(seed: u64, nodes: usize, passes: usize, threads: usize) -> ScaleRow {
    let mut sim = VivaldiSimulation::new(streamed_scenario(seed, nodes, passes));
    let steps: usize = (0..sim.len())
        .map(|i| sim.neighbors_of(i).len())
        .sum::<usize>()
        * passes;
    let start = Instant::now();
    ices_par::with_threads(threads, || sim.run_clean(passes));
    let secs = start.elapsed().as_secs_f64();
    ScaleRow {
        topology: "streamed_king",
        nodes: sim.len(),
        ticks: passes,
        threads,
        secs,
        steps_per_sec: steps as f64 / secs,
    }
}

/// The streamed-topology scale sweep: `(nodes, passes, threads)` rows.
/// The paper's two population sizes run at every scale; the 50k row —
/// the one that only exists because RTTs stream — is skipped at
/// `--scale test` to keep the quick configuration quick.
fn sweep_plan(scale_name: &str) -> Vec<(usize, usize, usize)> {
    let mut plan = vec![(280, 4, 1), (1740, 2, 1), (1740, 2, 0 /* wide */)];
    if scale_name != "test" {
        plan.push((50_000, 1, 1));
    }
    plan
}

/// Per-call pool-dispatch cost vs the retired per-call scoped-spawn
/// path. Both numbers are means over many calls on a warm pool; the
/// workload is deliberately trivial (64 float increments) so the
/// measurement is dispatch overhead, not work.
fn time_pool_dispatch() -> PoolDispatch {
    let mut data = vec![0.0f64; 64];
    ices_par::with_threads(2, || {
        // Warm-up: first dispatch spawns and parks the workers.
        for _ in 0..16 {
            ices_par::par_map_mut(&mut data, |_, x| *x += 1.0);
        }
        const CALLS: usize = 4000;
        let start = Instant::now();
        for _ in 0..CALLS {
            ices_par::par_map_mut(&mut data, |_, x| *x += 1.0);
        }
        let pool_dispatch_us = start.elapsed().as_secs_f64() * 1e6 / CALLS as f64;

        const SPAWNS: usize = 400;
        let start = Instant::now();
        for _ in 0..SPAWNS {
            ices_par::scope_spawn_reference(2);
        }
        let scope_spawn_us = start.elapsed().as_secs_f64() * 1e6 / SPAWNS as f64;
        PoolDispatch {
            pool_dispatch_us,
            scope_spawn_us,
        }
    })
}

/// `ICES_SCALE=xl`: construct a million-node streamed King network (no
/// simulation — the point is that the topology itself is O(n)) and
/// storm it with deterministic pseudo-random probe pairs.
fn xl_smoke(seed: u64) -> XlSmoke {
    const NODES: usize = 1_000_000;
    const PROBES: usize = 200_000;
    let start = Instant::now();
    let network = Network::from_king_streamed(KingConfig::small(NODES), seed);
    let construct_secs = start.elapsed().as_secs_f64();

    // Weyl-sequence pair picks: deterministic, aperiodic enough for a
    // smoke, and free of any RNG the determinism rules care about.
    let mut acc = 0usize;
    let mut checksum = 0.0f64;
    let start = Instant::now();
    for i in 0..PROBES {
        acc = acc.wrapping_add(0x9E37_79B9_7F4A_7C15usize);
        let a = acc % NODES;
        let b = (acc >> 20).wrapping_add(i) % NODES;
        if a != b {
            checksum += network.base_rtt(a, b);
        }
    }
    let probe_secs = start.elapsed().as_secs_f64();
    assert!(checksum.is_finite() && checksum > 0.0);
    XlSmoke {
        nodes: NODES,
        construct_secs,
        probes: PROBES,
        probes_per_sec: PROBES as f64 / probe_secs,
    }
}

/// Time one snapshot-wide detection sweep both ways: a scalar loop over
/// per-peer `Detector`s (the pre-bank merge-phase shape) and the
/// `DetectorBank` SoA kernels the drivers now run. The observation
/// schedule is a deterministic mix of nominal values and large
/// excursions, so both accept and coast paths stay hot, and each path's
/// suspicious-verdict count is checked against the other — the bank is
/// bit-identical to the scalar loop, so any disagreement is a bug, not
/// noise.
fn time_detector_bank() -> DetectorBankBench {
    const PEERS: usize = 1740; // the paper's larger PlanetLab population
    const SWEEPS: usize = 400;
    let params = StateSpaceParams {
        beta: 0.85,
        v_w: 0.003,
        v_u: 0.002,
        w_bar: 0.015,
        w0: 0.3,
        p0: 0.02,
    };
    let alpha = 0.05;
    // Deterministic observation for (sweep, slot): nominal relative
    // error most of the time, a large excursion on a sliding subset so
    // some verdicts reject and the coast path is exercised too.
    let obs_at = |sweep: usize, slot: usize| -> f64 {
        let phase = (sweep.wrapping_mul(31).wrapping_add(slot.wrapping_mul(17))) % 97;
        if phase == 0 {
            3.0 // far outside any sane threshold
        } else {
            0.08 + 0.10 * (phase as f64 / 97.0)
        }
    };

    // Scalar path: per-peer evaluate → accept/coast, PEERS detectors.
    let time_scalar = || -> (f64, u64) {
        let mut detectors: Vec<Detector> =
            (0..PEERS).map(|_| Detector::new(params, alpha)).collect();
        let mut suspicious = 0u64;
        let start = Instant::now();
        for sweep in 0..SWEEPS {
            for (slot, det) in detectors.iter_mut().enumerate() {
                let obs = obs_at(sweep, slot);
                let verdict = det.evaluate(obs);
                if verdict.suspicious {
                    suspicious += 1;
                    det.coast();
                } else {
                    det.accept(obs);
                }
            }
        }
        (start.elapsed().as_secs_f64(), suspicious)
    };

    // Batched path: the same schedule through the bank's flat sweeps.
    let time_batched = || -> (f64, u64) {
        let proto = Detector::new(params, alpha);
        let mut bank = DetectorBank::with_tier(false);
        for _ in 0..PEERS {
            bank.push(&proto);
        }
        let mut obs = vec![0.0f64; PEERS];
        let active = vec![true; PEERS];
        let mut accept = vec![false; PEERS];
        let mut coast = vec![false; PEERS];
        let mut suspicious = 0u64;
        let start = Instant::now();
        for sweep in 0..SWEEPS {
            for (slot, o) in obs.iter_mut().enumerate() {
                *o = obs_at(sweep, slot);
            }
            bank.predict_all();
            let verdicts = bank.evaluate_all(&obs, &active);
            for (slot, verdict) in verdicts.iter().enumerate() {
                let bad = verdict.map(|v| v.suspicious).unwrap_or(false);
                accept[slot] = !bad;
                coast[slot] = bad;
                suspicious += bad as u64;
            }
            bank.accept_all(&obs, &accept);
            bank.coast_all(&coast);
        }
        (start.elapsed().as_secs_f64(), suspicious)
    };

    let mut scalar_secs = f64::INFINITY;
    let mut batched_secs = f64::INFINITY;
    let mut scalar_sus = 0;
    let mut batched_sus = 0;
    for _ in 0..REPS {
        let (s, n) = time_scalar();
        if s < scalar_secs {
            scalar_secs = s;
        }
        scalar_sus = n;
        let (s, n) = time_batched();
        if s < batched_secs {
            batched_secs = s;
        }
        batched_sus = n;
    }
    assert_eq!(
        scalar_sus, batched_sus,
        "bank diverged from the scalar loop — bit-identity is broken"
    );
    assert!(scalar_sus > 0, "schedule never tripped a detector");
    let scalar_sweeps_per_sec = SWEEPS as f64 / scalar_secs;
    let batched_sweeps_per_sec = SWEEPS as f64 / batched_secs;
    DetectorBankBench {
        peers: PEERS,
        sweeps: SWEEPS,
        scalar_sweeps_per_sec,
        batched_sweeps_per_sec,
        speedup: batched_sweeps_per_sec / scalar_sweeps_per_sec,
    }
}

/// Time the NPS positioning round on one node with the paper's 8-d
/// configuration and a fixed synthetic reference-point layout (the same
/// deterministic anchor grid the solver unit tests use).
fn time_nps_solver() -> SolverBench {
    let config = NpsConfig::paper_default();
    let dims = config.space.dims();
    let rps = config.rps_per_node;
    let truth: Vec<f64> = (0..dims).map(|i| 10.0 * i as f64).collect();
    let samples: Vec<PeerSample> = (0..rps)
        .map(|k| {
            let pos: Vec<f64> = (0..dims)
                .map(|d| {
                    if (k + d) % 3 == 0 {
                        100.0
                    } else {
                        -30.0 * (d as f64 + 1.0) / (k as f64 + 1.0)
                    }
                })
                .collect();
            let dist = pos
                .iter()
                .zip(&truth)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            PeerSample {
                peer: k,
                peer_coord: Coordinate::euclidean(pos),
                peer_error: 0.1,
                rtt_ms: dist.max(1.0),
            }
        })
        .collect();

    let mut node = NpsNode::new(0, config, 42);
    let round = |node: &mut NpsNode| {
        for s in &samples {
            node.apply_step(s);
        }
        node.finish_round();
    };
    // Warm up: converge the coordinate and the solver scratch buffers.
    for _ in 0..3 {
        round(&mut node);
    }
    let solves = 300;
    let start = Instant::now();
    for _ in 0..solves {
        round(&mut node);
    }
    let secs = start.elapsed().as_secs_f64();
    SolverBench {
        reference_points: rps,
        dims,
        solves,
        secs,
        solves_per_sec: solves as f64 / secs,
    }
}

fn main() {
    let options = HarnessOptions::from_args();
    print_header(&options, "tick-engine throughput (BENCH_sim)");

    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Always time a wide configuration so the recorded speedups are
    // measured ratios, never an assumed 1. Host parallelism is read
    // directly (not `ices_par::max_threads`, which an ambient
    // ICES_THREADS would pin); a single-core host still times two
    // workers — an honest oversubscription measurement.
    let wide = host.max(2);

    let configs: [usize; 2] = [1, wide];
    let mut runs = Vec::new();
    for (name, timer) in [
        (
            "vivaldi",
            time_vivaldi as fn(&Scale, usize, bool, bool) -> TickBench,
        ),
        ("nps", time_nps),
    ] {
        for threads in configs {
            let bench = best_of(timer, &options.scale, threads, false, false);
            println!(
                "{name:>8}  threads={:<2}  {:>8.2}s  {:>12.0} steps/s",
                bench.threads, bench.secs, bench.steps_per_sec
            );
            runs.push(bench);
        }
        // One faulty-network configuration per driver (sequential), so
        // the fault layer's overhead is on the perf trajectory too.
        let bench = best_of(timer, &options.scale, 1, true, false);
        println!(
            "{name:>8}  threads={:<2}  {:>8.2}s  {:>12.0} steps/s  (faulty: 10% loss + churn)",
            bench.threads, bench.secs, bench.steps_per_sec
        );
        runs.push(bench);
        // One journaled sequential configuration per driver: the obs
        // layer's contract is < 5% overhead with the JSONL journal
        // streaming to disk.
        let bench = best_of(timer, &options.scale, 1, false, true);
        let clean = runs
            .iter()
            .find(|r| {
                r.driver == name && r.threads == 1 && !r.faults && !r.journal
                    && r.adversary == "none"
            })
            .map(|r| r.steps_per_sec);
        let overhead = clean
            .map(|c| (c / bench.steps_per_sec - 1.0) * 100.0)
            .unwrap_or(f64::NAN);
        println!(
            "{name:>8}  threads={:<2}  {:>8.2}s  {:>12.0} steps/s  (journaled: {overhead:+.1}% overhead)",
            bench.threads, bench.secs, bench.steps_per_sec
        );
        runs.push(bench);
        // Adversarial pair (sequential): the Sybil swarm at the paper's
        // malicious share vs its honest-world twin through the same
        // attack-phase plumbing. bench_check holds the delta — the
        // intercept path's cost — under 10%.
        let twin = best_adversarial(&options.scale, name, false);
        let sybil = best_adversarial(&options.scale, name, true);
        let overhead = (twin.steps_per_sec / sybil.steps_per_sec - 1.0) * 100.0;
        println!(
            "{name:>8}  threads=1   {:>8.2}s  {:>12.0} steps/s  (sybil swarm: {overhead:+.1}% vs honest twin)",
            sybil.secs, sybil.steps_per_sec
        );
        runs.push(twin);
        runs.push(sybil);
        // Fast-tier twin of the clean sequential row (`ICES_FAST=1`
        // reassociated kernels). bench_check compares fast rows only
        // against fast baselines — the tiers are different numerics, so
        // cross-tier ratios are a tier property, not a regression.
        let bench = ices_par::with_fast(true, || {
            best_of(timer, &options.scale, 1, false, false)
        });
        let exact = runs
            .iter()
            .find(|r| {
                r.driver == name && r.threads == 1 && !r.faults && !r.journal
                    && r.adversary == "none" && r.tier == "exact"
            })
            .map(|r| r.steps_per_sec);
        let gain = exact
            .map(|e| (bench.steps_per_sec / e - 1.0) * 100.0)
            .unwrap_or(f64::NAN);
        println!(
            "{name:>8}  threads={:<2}  {:>8.2}s  {:>12.0} steps/s  (fast tier: {gain:+.1}% vs exact)",
            bench.threads, bench.secs, bench.steps_per_sec
        );
        runs.push(bench);
    }

    // Streamed-topology scale sweep: the paper's sizes plus 50k, all on
    // the generator that never materializes a matrix.
    let mut scale_sweep = Vec::new();
    for (nodes, passes, threads) in sweep_plan(&options.scale_name) {
        let threads = if threads == 0 { wide } else { threads };
        // One rep at 50k (seconds per run); best-of-2 below that.
        let mut row = time_streamed_vivaldi(options.scale.seed, nodes, passes, threads);
        if nodes <= 1740 {
            let rerun = time_streamed_vivaldi(options.scale.seed, nodes, passes, threads);
            if rerun.steps_per_sec > row.steps_per_sec {
                row = rerun;
            }
        }
        println!(
            "{:>8}  n={:<7} threads={:<2}  {:>8.2}s  {:>12.0} steps/s  (streamed)",
            "sweep", row.nodes, row.threads, row.secs, row.steps_per_sec
        );
        scale_sweep.push(row);
    }

    let detector_bank = time_detector_bank();
    println!(
        "{:>8}  {} peers × {} sweeps  scalar {:>8.0}/s  batched {:>8.0}/s  ({:.2}x)",
        "detbank",
        detector_bank.peers,
        detector_bank.sweeps,
        detector_bank.scalar_sweeps_per_sec,
        detector_bank.batched_sweeps_per_sec,
        detector_bank.speedup
    );

    let pool_dispatch = time_pool_dispatch();
    println!(
        "{:>8}  pool broadcast {:.2} µs/call vs scoped spawn {:.2} µs/call",
        "pool", pool_dispatch.pool_dispatch_us, pool_dispatch.scope_spawn_us
    );

    let xl_streamed = if std::env::var("ICES_SCALE").as_deref() == Ok("xl") {
        let smoke = xl_smoke(options.scale.seed);
        println!(
            "{:>8}  n={} constructed in {:.2}s, {} probes at {:.0}/s",
            "xl", smoke.nodes, smoke.construct_secs, smoke.probes, smoke.probes_per_sec
        );
        Some(smoke)
    } else {
        None
    };

    let solver = time_nps_solver();
    println!(
        "{:>8}  {} rounds × ({}-d, {} RPs)  {:>8.2}s  {:>12.1} solves/s",
        "nps-kern", solver.solves, solver.dims, solver.reference_points, solver.secs,
        solver.solves_per_sec
    );

    // Speedup compares the clean configurations only — and only on a
    // host that actually has two cores. On a single-core host the wide
    // row measures oversubscription, not parallel speedup, so the field
    // stays `null` rather than recording a ratio no other host should
    // be compared against.
    let speedup = |driver: &str| -> Option<f64> {
        if host < 2 {
            return None;
        }
        let of = |t: usize| {
            runs.iter()
                .find(|r| {
                    r.driver == driver && r.threads == t && !r.faults && !r.journal
                        && r.adversary == "none" && r.tier == "exact"
                })
                .map(|r| r.steps_per_sec)
        };
        Some(of(wide)? / of(1)?)
    };
    let (vivaldi_speedup, nps_speedup) = (speedup("vivaldi"), speedup("nps"));
    let report = BenchReport {
        scale: options.scale_name.clone(),
        host_parallelism: host,
        vivaldi_speedup,
        nps_speedup,
        nps_solver: solver,
        scale_sweep,
        detector_bank,
        pool_dispatch,
        xl_streamed,
        runs,
    };
    match (report.vivaldi_speedup, report.nps_speedup) {
        (Some(v), Some(n)) => println!(
            "\nspeedup: vivaldi {v:.2}x, nps {n:.2}x (host parallelism {host})"
        ),
        _ => println!(
            "\nspeedup: not measured — single-core host (parallelism {host}); \
             the threads={wide} rows are oversubscription measurements"
        ),
    }

    if options.write_json {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => {
                if let Err(e) = std::fs::write("BENCH_sim.json", json) {
                    eprintln!("warning: cannot write BENCH_sim.json: {e}");
                } else {
                    eprintln!("(result written to BENCH_sim.json)");
                }
            }
            Err(e) => eprintln!("warning: cannot serialize result: {e}"),
        }
    }
}
