//! Tick-engine throughput: times `N` clean passes of each driver on the
//! exact sequential path (`ICES_THREADS=1`) and on every available
//! worker, and writes `BENCH_sim.json` at the working directory root so
//! future changes have a perf trajectory to compare against.
//!
//! A "step" is one embedding update: one neighbor probe for Vivaldi,
//! one reference-point probe for NPS. Determinism makes the two
//! configurations directly comparable — they produce bit-for-bit
//! identical simulations, so any throughput delta is pure scheduling.
//!
//! ```text
//! bench_tick [--scale test|harness|paper] [--seed N] [--no-json]
//! ```

use ices_bench::{print_header, HarnessOptions};
use ices_coord::{Coordinate, Embedding, PeerSample};
use ices_netsim::{ChurnModel, FaultPlan};
use ices_obs::Journal;
use ices_nps::{NpsConfig, NpsNode};
use ices_sim::experiments::Scale;
use ices_sim::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use ices_sim::{NpsSimulation, VivaldiSimulation};
use serde::Serialize;
use std::time::Instant;

/// The faulty-network configuration timed alongside the clean runs:
/// 10% probe loss, 2.5% timeouts, 5% per-epoch churn — the chaos
/// sweep's mid-grid operating point.
fn faulty_plan() -> FaultPlan {
    FaultPlan::lossy(0.10, 0.025).with_churn(ChurnModel::new(16, 0.05))
}

/// One timed configuration of one driver.
#[derive(Debug, Serialize)]
struct TickBench {
    driver: &'static str,
    nodes: usize,
    ticks: usize,
    threads: usize,
    /// Whether the faulty-network plan (loss + churn) was active.
    faults: bool,
    /// Whether the run emitted an `ices-obs` JSONL journal to disk.
    journal: bool,
    secs: f64,
    steps_per_sec: f64,
}

/// NPS coordinate-solver microbenchmark: full positioning rounds
/// (buffer samples → security filter trial solve → final solve) of a
/// single node against a fixed synthetic reference-point set, isolated
/// from probing and driver scheduling.
#[derive(Debug, Serialize)]
struct SolverBench {
    /// Synthetic reference points per round.
    reference_points: usize,
    /// Coordinate-space dimensionality.
    dims: usize,
    /// Rounds timed (each runs the trial + final simplex solves).
    solves: usize,
    secs: f64,
    solves_per_sec: f64,
}

/// The full benchmark result written to `BENCH_sim.json`.
#[derive(Debug, Serialize)]
struct BenchReport {
    scale: String,
    host_parallelism: usize,
    runs: Vec<TickBench>,
    nps_solver: SolverBench,
    vivaldi_speedup: f64,
    nps_speedup: f64,
}

fn scenario(scale: &Scale) -> ScenarioConfig {
    ScenarioConfig {
        seed: scale.seed,
        topology: TopologyKind::small_planetlab(scale.planetlab_nodes),
        surveyors: SurveyorPlacement::Random { fraction: 0.08 },
        malicious_fraction: 0.0,
        alpha: 0.05,
        detection: false,
        clean_cycles: scale.clean_passes,
        attack_cycles: 0,
        embed_against_surveyors_only: false,
    }
}

/// The journal sink a journaled configuration writes through: a real
/// file under `target/`, so the measured overhead includes buffered I/O.
fn bench_journal(driver: &str) -> Option<Journal> {
    if let Err(e) = std::fs::create_dir_all("target") {
        eprintln!("warning: cannot create target/: {e}");
        return None;
    }
    let path = format!("target/bench_{driver}.jsonl");
    match Journal::to_file(&path) {
        Ok(j) => Some(j),
        Err(e) => {
            eprintln!("warning: cannot open {path}: {e}");
            None
        }
    }
}

/// Repetitions per configuration; the fastest is recorded. The
/// simulations are deterministic, so reps differ only by scheduling
/// noise — and at sub-second run lengths that noise easily exceeds the
/// 5% journaling budget, making the minimum the honest estimator.
const REPS: usize = 3;

fn best_of(
    timer: fn(&Scale, usize, bool, bool) -> TickBench,
    scale: &Scale,
    threads: usize,
    faults: bool,
    journal: bool,
) -> TickBench {
    let mut best = timer(scale, threads, faults, journal);
    for _ in 1..REPS {
        let run = timer(scale, threads, faults, journal);
        if run.steps_per_sec > best.steps_per_sec {
            best = run;
        }
    }
    best
}

fn time_vivaldi(scale: &Scale, threads: usize, faults: bool, journal: bool) -> TickBench {
    let mut sim = VivaldiSimulation::new(scenario(scale));
    if faults {
        sim.set_fault_plan(faulty_plan());
    }
    if journal {
        if let Some(j) = bench_journal("vivaldi") {
            sim.enable_journal(j);
        }
    }
    let passes = scale.clean_passes;
    let steps: usize = (0..sim.len())
        .map(|i| sim.neighbors_of(i).len())
        .sum::<usize>()
        * passes;
    let start = Instant::now();
    ices_par::with_threads(threads, || sim.run_clean(passes));
    let secs = start.elapsed().as_secs_f64();
    sim.finish_journal();
    TickBench {
        driver: "vivaldi",
        nodes: sim.len(),
        ticks: passes,
        threads,
        faults,
        journal,
        secs,
        steps_per_sec: steps as f64 / secs,
    }
}

fn time_nps(scale: &Scale, threads: usize, faults: bool, journal: bool) -> TickBench {
    let mut sim = NpsSimulation::new(scenario(scale));
    if faults {
        sim.set_fault_plan(faulty_plan());
    }
    if journal {
        if let Some(j) = bench_journal("nps") {
            sim.enable_journal(j);
        }
    }
    let rounds = scale.nps_clean_rounds;
    let steps: usize = (0..sim.len())
        .map(|i| sim.reference_points_of(i).len())
        .sum::<usize>()
        * rounds;
    let start = Instant::now();
    ices_par::with_threads(threads, || sim.run_clean(rounds));
    let secs = start.elapsed().as_secs_f64();
    sim.finish_journal();
    TickBench {
        driver: "nps",
        nodes: sim.len(),
        ticks: rounds,
        threads,
        faults,
        journal,
        secs,
        steps_per_sec: steps as f64 / secs,
    }
}

/// Time the NPS positioning round on one node with the paper's 8-d
/// configuration and a fixed synthetic reference-point layout (the same
/// deterministic anchor grid the solver unit tests use).
fn time_nps_solver() -> SolverBench {
    let config = NpsConfig::paper_default();
    let dims = config.space.dims();
    let rps = config.rps_per_node;
    let truth: Vec<f64> = (0..dims).map(|i| 10.0 * i as f64).collect();
    let samples: Vec<PeerSample> = (0..rps)
        .map(|k| {
            let pos: Vec<f64> = (0..dims)
                .map(|d| {
                    if (k + d) % 3 == 0 {
                        100.0
                    } else {
                        -30.0 * (d as f64 + 1.0) / (k as f64 + 1.0)
                    }
                })
                .collect();
            let dist = pos
                .iter()
                .zip(&truth)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            PeerSample {
                peer: k,
                peer_coord: Coordinate::euclidean(pos),
                peer_error: 0.1,
                rtt_ms: dist.max(1.0),
            }
        })
        .collect();

    let mut node = NpsNode::new(0, config, 42);
    let round = |node: &mut NpsNode| {
        for s in &samples {
            node.apply_step(s);
        }
        node.finish_round();
    };
    // Warm up: converge the coordinate and the solver scratch buffers.
    for _ in 0..3 {
        round(&mut node);
    }
    let solves = 300;
    let start = Instant::now();
    for _ in 0..solves {
        round(&mut node);
    }
    let secs = start.elapsed().as_secs_f64();
    SolverBench {
        reference_points: rps,
        dims,
        solves,
        secs,
        solves_per_sec: solves as f64 / secs,
    }
}

fn main() {
    let options = HarnessOptions::from_args();
    print_header(&options, "tick-engine throughput (BENCH_sim)");

    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Always time a wide configuration so the recorded speedups are
    // measured ratios, never an assumed 1. Host parallelism is read
    // directly (not `ices_par::max_threads`, which an ambient
    // ICES_THREADS would pin); a single-core host still times two
    // workers — an honest oversubscription measurement.
    let wide = host.max(2);

    let configs: [usize; 2] = [1, wide];
    let mut runs = Vec::new();
    for (name, timer) in [
        (
            "vivaldi",
            time_vivaldi as fn(&Scale, usize, bool, bool) -> TickBench,
        ),
        ("nps", time_nps),
    ] {
        for threads in configs {
            let bench = best_of(timer, &options.scale, threads, false, false);
            println!(
                "{name:>8}  threads={:<2}  {:>8.2}s  {:>12.0} steps/s",
                bench.threads, bench.secs, bench.steps_per_sec
            );
            runs.push(bench);
        }
        // One faulty-network configuration per driver (sequential), so
        // the fault layer's overhead is on the perf trajectory too.
        let bench = best_of(timer, &options.scale, 1, true, false);
        println!(
            "{name:>8}  threads={:<2}  {:>8.2}s  {:>12.0} steps/s  (faulty: 10% loss + churn)",
            bench.threads, bench.secs, bench.steps_per_sec
        );
        runs.push(bench);
        // One journaled sequential configuration per driver: the obs
        // layer's contract is < 5% overhead with the JSONL journal
        // streaming to disk.
        let bench = best_of(timer, &options.scale, 1, false, true);
        let clean = runs
            .iter()
            .find(|r| r.driver == name && r.threads == 1 && !r.faults && !r.journal)
            .map(|r| r.steps_per_sec);
        let overhead = clean
            .map(|c| (c / bench.steps_per_sec - 1.0) * 100.0)
            .unwrap_or(f64::NAN);
        println!(
            "{name:>8}  threads={:<2}  {:>8.2}s  {:>12.0} steps/s  (journaled: {overhead:+.1}% overhead)",
            bench.threads, bench.secs, bench.steps_per_sec
        );
        runs.push(bench);
    }

    let solver = time_nps_solver();
    println!(
        "{:>8}  {} rounds × ({}-d, {} RPs)  {:>8.2}s  {:>12.1} solves/s",
        "nps-kern", solver.solves, solver.dims, solver.reference_points, solver.secs,
        solver.solves_per_sec
    );

    // Speedup compares the clean configurations only.
    let speedup = |driver: &str| -> f64 {
        let of = |t: usize| {
            runs.iter()
                .find(|r| r.driver == driver && r.threads == t && !r.faults && !r.journal)
                .map(|r| r.steps_per_sec)
        };
        match (of(1), of(wide)) {
            (Some(seq), Some(par)) => par / seq,
            _ => 1.0, // a configuration is missing: no speedup measured
        }
    };
    let (vivaldi_speedup, nps_speedup) = (speedup("vivaldi"), speedup("nps"));
    let report = BenchReport {
        scale: options.scale_name.clone(),
        host_parallelism: host,
        vivaldi_speedup,
        nps_speedup,
        nps_solver: solver,
        runs,
    };
    println!(
        "\nspeedup: vivaldi {:.2}x, nps {:.2}x (host parallelism {host})",
        report.vivaldi_speedup, report.nps_speedup
    );

    if options.write_json {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => {
                if let Err(e) = std::fs::write("BENCH_sim.json", json) {
                    eprintln!("warning: cannot write BENCH_sim.json: {e}");
                } else {
                    eprintln!("(result written to BENCH_sim.json)");
                }
            }
            Err(e) => eprintln!("warning: cannot serialize result: {e}"),
        }
    }
}
