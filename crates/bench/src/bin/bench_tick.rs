//! Tick-engine throughput: times `N` clean passes of each driver on the
//! exact sequential path (`ICES_THREADS=1`) and on every available
//! worker, and writes `BENCH_sim.json` at the working directory root so
//! future changes have a perf trajectory to compare against.
//!
//! A "step" is one embedding update: one neighbor probe for Vivaldi,
//! one reference-point probe for NPS. Determinism makes the two
//! configurations directly comparable — they produce bit-for-bit
//! identical simulations, so any throughput delta is pure scheduling.
//!
//! ```text
//! bench_tick [--scale test|harness|paper] [--seed N] [--no-json]
//! ```

use ices_bench::{print_header, HarnessOptions};
use ices_netsim::{ChurnModel, FaultPlan};
use ices_sim::experiments::Scale;
use ices_sim::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use ices_sim::{NpsSimulation, VivaldiSimulation};
use serde::Serialize;
use std::time::Instant;

/// The faulty-network configuration timed alongside the clean runs:
/// 10% probe loss, 2.5% timeouts, 5% per-epoch churn — the chaos
/// sweep's mid-grid operating point.
fn faulty_plan() -> FaultPlan {
    FaultPlan::lossy(0.10, 0.025).with_churn(ChurnModel::new(16, 0.05))
}

/// One timed configuration of one driver.
#[derive(Debug, Serialize)]
struct TickBench {
    driver: &'static str,
    nodes: usize,
    ticks: usize,
    threads: usize,
    /// Whether the faulty-network plan (loss + churn) was active.
    faults: bool,
    secs: f64,
    steps_per_sec: f64,
}

/// The full benchmark result written to `BENCH_sim.json`.
#[derive(Debug, Serialize)]
struct BenchReport {
    scale: String,
    host_parallelism: usize,
    runs: Vec<TickBench>,
    vivaldi_speedup: f64,
    nps_speedup: f64,
}

fn scenario(scale: &Scale) -> ScenarioConfig {
    ScenarioConfig {
        seed: scale.seed,
        topology: TopologyKind::small_planetlab(scale.planetlab_nodes),
        surveyors: SurveyorPlacement::Random { fraction: 0.08 },
        malicious_fraction: 0.0,
        alpha: 0.05,
        detection: false,
        clean_cycles: scale.clean_passes,
        attack_cycles: 0,
        embed_against_surveyors_only: false,
    }
}

fn time_vivaldi(scale: &Scale, threads: usize, faults: bool) -> TickBench {
    let mut sim = VivaldiSimulation::new(scenario(scale));
    if faults {
        sim.set_fault_plan(faulty_plan());
    }
    let passes = scale.clean_passes;
    let steps: usize = (0..sim.len())
        .map(|i| sim.neighbors_of(i).len())
        .sum::<usize>()
        * passes;
    let start = Instant::now();
    ices_par::with_threads(threads, || sim.run_clean(passes));
    let secs = start.elapsed().as_secs_f64();
    TickBench {
        driver: "vivaldi",
        nodes: sim.len(),
        ticks: passes,
        threads,
        faults,
        secs,
        steps_per_sec: steps as f64 / secs,
    }
}

fn time_nps(scale: &Scale, threads: usize, faults: bool) -> TickBench {
    let mut sim = NpsSimulation::new(scenario(scale));
    if faults {
        sim.set_fault_plan(faulty_plan());
    }
    let rounds = scale.nps_clean_rounds;
    let steps: usize = (0..sim.len())
        .map(|i| sim.reference_points_of(i).len())
        .sum::<usize>()
        * rounds;
    let start = Instant::now();
    ices_par::with_threads(threads, || sim.run_clean(rounds));
    let secs = start.elapsed().as_secs_f64();
    TickBench {
        driver: "nps",
        nodes: sim.len(),
        ticks: rounds,
        threads,
        faults,
        secs,
        steps_per_sec: steps as f64 / secs,
    }
}

fn main() {
    let options = HarnessOptions::from_args();
    print_header(&options, "tick-engine throughput (BENCH_sim)");

    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let wide = ices_par::max_threads().max(1);

    // On a single-core host the wide configuration is the sequential
    // path; time it once rather than twice.
    let configs: &[usize] = if wide > 1 { &[1, wide] } else { &[1] };
    let mut runs = Vec::new();
    for (name, timer) in [
        ("vivaldi", time_vivaldi as fn(&Scale, usize, bool) -> TickBench),
        ("nps", time_nps),
    ] {
        for &threads in configs {
            let bench = timer(&options.scale, threads, false);
            println!(
                "{name:>8}  threads={:<2}  {:>8.2}s  {:>12.0} steps/s",
                bench.threads, bench.secs, bench.steps_per_sec
            );
            runs.push(bench);
        }
        // One faulty-network configuration per driver (sequential), so
        // the fault layer's overhead is on the perf trajectory too.
        let bench = timer(&options.scale, 1, true);
        println!(
            "{name:>8}  threads={:<2}  {:>8.2}s  {:>12.0} steps/s  (faulty: 10% loss + churn)",
            bench.threads, bench.secs, bench.steps_per_sec
        );
        runs.push(bench);
    }

    // Speedup compares the clean configurations only.
    let speedup = |driver: &str| -> f64 {
        let of = |t: usize| {
            runs.iter()
                .find(|r| r.driver == driver && r.threads == t && !r.faults)
                .map(|r| r.steps_per_sec)
        };
        match (of(1), of(wide)) {
            (Some(seq), Some(par)) if wide > 1 => par / seq,
            _ => 1.0, // single configuration: no parallel speedup measured
        }
    };
    let (vivaldi_speedup, nps_speedup) = (speedup("vivaldi"), speedup("nps"));
    let report = BenchReport {
        scale: options.scale_name.clone(),
        host_parallelism: host,
        vivaldi_speedup,
        nps_speedup,
        runs,
    };
    println!(
        "\nspeedup: vivaldi {:.2}x, nps {:.2}x (host parallelism {host})",
        report.vivaldi_speedup, report.nps_speedup
    );

    if options.write_json {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => {
                if let Err(e) = std::fs::write("BENCH_sim.json", json) {
                    eprintln!("warning: cannot write BENCH_sim.json: {e}");
                } else {
                    eprintln!("(result written to BENCH_sim.json)");
                }
            }
            Err(e) => eprintln!("warning: cannot serialize result: {e}"),
        }
    }
}
