//! Fast-tier statistical-equivalence gate (tier-2).
//!
//! The `ICES_FAST=1` tier reassociates float reductions (the NPS flat
//! objective, the batched threshold sweep), so it is deliberately NOT
//! bit-identical to the exact tier. Its contract is statistical: the
//! same detection quality and the same embedding accuracy, within
//! tolerances far smaller than any effect the experiments report. This
//! gate runs each smoke cell once per tier and **hard-fails** (exit 1)
//! if the tiers drift apart:
//!
//! * Vivaldi detection cell (colluding isolation attack, 20% malicious,
//!   α = 0.05): |ΔTPR| and |ΔFPR| within tolerance.
//! * NPS detection cell (colluding reference-point attack, same
//!   operating point): |ΔTPR| and |ΔFPR| within tolerance.
//! * Chaos cell (10% loss + 5% churn + the isolation attack): rate
//!   deltas within tolerance and the honest-node median relative error
//!   within a relative band.
//!
//! ```text
//! fast_equiv [--scale test|harness|paper] [--seed N] [--no-json]
//! ```

use ices_bench::{print_header, HarnessOptions};
use ices_sim::experiments::chaos::{chaos_cell, ChaosCell};
use ices_sim::experiments::detection::{nps_cell, vivaldi_cell, SweepCell};
use std::process::ExitCode;

/// Absolute true-positive-rate divergence allowed between the tiers.
const TPR_TOLERANCE: f64 = 0.05;

/// Absolute false-positive-rate divergence allowed between the tiers.
/// FPR sits near α = 0.05, so this band is proportionally wider than it
/// looks — but still far below any degradation the paper plots.
const FPR_TOLERANCE: f64 = 0.03;

/// Relative divergence allowed on the chaos cell's honest-node median
/// embedding error.
const ACCURACY_TOLERANCE: f64 = 0.15;

/// One tier-pair comparison of a detection operating point.
fn check_rates(
    label: &str,
    exact: (f64, f64),
    fast: (f64, f64),
    failures: &mut Vec<String>,
) {
    let (exact_tpr, exact_fpr) = exact;
    let (fast_tpr, fast_fpr) = fast;
    println!(
        "{label:>14}  TPR {exact_tpr:.4} → {fast_tpr:.4}  FPR {exact_fpr:.4} → {fast_fpr:.4}"
    );
    if (fast_tpr - exact_tpr).abs() > TPR_TOLERANCE {
        failures.push(format!(
            "{label}: TPR diverged {exact_tpr:.4} (exact) vs {fast_tpr:.4} (fast), \
             tolerance {TPR_TOLERANCE}"
        ));
    }
    if (fast_fpr - exact_fpr).abs() > FPR_TOLERANCE {
        failures.push(format!(
            "{label}: FPR diverged {exact_fpr:.4} (exact) vs {fast_fpr:.4} (fast), \
             tolerance {FPR_TOLERANCE}"
        ));
    }
}

fn rates(cell: &SweepCell) -> (f64, f64) {
    (cell.confusion.tpr(), cell.confusion.fpr())
}

fn chaos_rates(cell: &ChaosCell) -> (f64, f64) {
    (cell.confusion.tpr(), cell.confusion.fpr())
}

fn main() -> ExitCode {
    let options = HarnessOptions::from_args();
    print_header(&options, "fast-tier statistical equivalence (ICES_FAST)");
    let scale = &options.scale;

    // Each cell is a self-contained deterministic simulation; the only
    // variable between the two runs of a pair is the numeric tier.
    let per_tier = |fast: bool| {
        ices_par::with_fast(fast, || {
            (
                vivaldi_cell(scale, 0.2, 0.05),
                nps_cell(scale, 0.2, 0.05),
                chaos_cell(scale, 0.10, 0.05),
            )
        })
    };
    let (viv_exact, nps_exact, chaos_exact) = per_tier(false);
    let (viv_fast, nps_fast, chaos_fast) = per_tier(true);

    let mut failures = Vec::new();
    check_rates("vivaldi", rates(&viv_exact), rates(&viv_fast), &mut failures);
    check_rates("nps", rates(&nps_exact), rates(&nps_fast), &mut failures);
    check_rates(
        "chaos",
        chaos_rates(&chaos_exact),
        chaos_rates(&chaos_fast),
        &mut failures,
    );
    match (chaos_exact.accuracy_median, chaos_fast.accuracy_median) {
        (Some(exact), Some(fast)) => {
            println!("{:>14}  median err {exact:.4} → {fast:.4}", "chaos acc");
            // Guard the ratio against a degenerate zero-error run.
            let base = exact.abs().max(1e-9);
            if ((fast - exact) / base).abs() > ACCURACY_TOLERANCE {
                failures.push(format!(
                    "chaos: honest median error diverged {exact:.4} (exact) vs \
                     {fast:.4} (fast), relative tolerance {ACCURACY_TOLERANCE}"
                ));
            }
        }
        (exact, fast) => failures.push(format!(
            "chaos: accuracy median missing (exact {exact:?}, fast {fast:?})"
        )),
    }
    // A gate that compares two identical runs gates nothing: require
    // the cells to have actually classified steps on both tiers.
    for (label, cell) in [("vivaldi", &viv_exact), ("nps", &nps_exact)] {
        if cell.confusion.total() == 0 {
            failures.push(format!("{label}: exact cell classified zero steps"));
        }
    }

    if failures.is_empty() {
        println!();
        println!("fast_equiv ok: tiers statistically equivalent on all smoke cells");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("fast_equiv FAILED: {f}");
        }
        ExitCode::FAILURE
    }
}
