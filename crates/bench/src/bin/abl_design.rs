//! Ablation harness — quantifies the design choices DESIGN.md calls out
//! by re-running the standard detection workload (Vivaldi, 20% colluding
//! attackers, α = 5%) with one piece changed at a time:
//!
//! * the EM-fitted AR coefficient β vs a white model vs a random walk;
//! * the first-time-peer reprieve on vs off;
//! * filter parameters from the closest Surveyor vs a random Surveyor;
//! * freshly calibrated filters vs stale ones from another network.

use ices_bench::{print_header, write_result, HarnessOptions};
use ices_sim::experiments::ablations::{
    ablate_beta, ablate_filter_source, ablate_recalibration, ablate_reprieve, AblationResult,
};

fn print_ablation(r: &AblationResult) {
    println!("## ablation: {}", r.name);
    println!(
        "{:<44}  {:>8}  {:>8}  {:>8}  {:>8}",
        "variant", "TPR", "FPR", "FNR", "TPTF"
    );
    for arm in &r.arms {
        let c = &arm.confusion;
        println!(
            "{:<44}  {:>8.4}  {:>8.4}  {:>8.4}  {:>8.4}",
            arm.label,
            c.tpr(),
            c.fpr(),
            c.fnr(),
            c.tptf()
        );
    }
    println!();
}

fn main() {
    let options = HarnessOptions::from_args();
    print_header(
        &options,
        "Design ablations (Vivaldi, 20% malicious, α = 5%)",
    );

    let results = vec![
        ablate_beta(&options.scale),
        ablate_reprieve(&options.scale),
        ablate_filter_source(&options.scale),
        ablate_recalibration(&options.scale),
    ];
    for r in &results {
        print_ablation(r);
    }
    write_result(&options, "abl_design", &results);
}
