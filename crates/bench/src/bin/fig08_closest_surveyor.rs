//! Fig 8 — maximum prediction error per node when each node adopts its
//! *closest* Surveyor's filter parameters.

use ices_bench::{print_header, write_result, HarnessOptions};
use ices_sim::experiments::cross_prediction::fig678_cross_prediction;

fn main() {
    let options = HarnessOptions::from_args();
    print_header(
        &options,
        "Fig 8: max prediction errors with the closest Surveyor",
    );
    let result = fig678_cross_prediction(&options.scale);

    println!(
        "{} Surveyors, {} normal nodes",
        result.surveyor_count, result.node_count
    );
    println!();
    println!(
        "{:>6}  {:>16}  {:>10}",
        "node", "closest surveyor", "max err"
    );
    let step = (result.closest.len() / 60).max(1);
    for (i, (node, surveyor, err)) in result.closest.iter().enumerate() {
        if i % step == 0 || i + 1 == result.closest.len() {
            println!("{node:>6}  {surveyor:>16}  {err:>10.4}");
        }
    }
    let errors: Vec<f64> = result.closest.iter().map(|(_, _, e)| *e).collect();
    if !errors.is_empty() {
        let ecdf = ices_stats::Ecdf::new(errors);
        println!();
        println!(
            "max-prediction-error percentiles over nodes: p50 {:.4}, p90 {:.4}, p99 {:.4}",
            ecdf.percentile(50.0),
            ecdf.percentile(90.0),
            ecdf.percentile(99.0)
        );
    }
    println!("(paper's Fig 8 shows max prediction errors mostly below ~0.16 when each");
    println!(" node uses its closest Surveyor)");

    write_result(&options, "fig08_closest_surveyor", &result);
}
