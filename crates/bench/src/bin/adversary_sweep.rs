//! Adversary sweep — the post-2007 attack taxonomy (Sybil swarms,
//! eclipse translations, calibrated slow drift) against the paper's
//! innovation-test detector, each with the cross-verification defense
//! off and on. Not a paper figure: the paper stops at two blatant
//! colluding attacks; this maps where its detector holds, where it is
//! structurally blind, and how much the defense knob buys back.
//!
//! ```text
//! adversary_sweep [--scale test|harness|paper] [--seed N] [--no-json]
//! adversary_sweep --smoke   one intensity per attack at test scale,
//!                           assert the three headline behaviors, write
//!                           nothing
//! ```
//!
//! `--smoke` is the tier-2 gate: sybil must stay blatant (TPR > 0.5),
//! defense-off cells must never cross-check, defense-on eclipse must
//! recover detection over defense-off, and sub-threshold slow drift
//! must evade (TPR < 0.2) — the headline negative result.

use ices_bench::{print_header, write_result, HarnessOptions};
use ices_sim::experiments::adversary::{
    adversary_sweep, adversary_sweep_over, AdversaryCell, AdversarySweep, AttackKind,
};
use ices_sim::experiments::Scale;
use std::process::ExitCode;

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: adversary_sweep [--scale test|harness|paper] [--seed N] [--no-json] [--smoke]");
    std::process::exit(2);
}

/// `HarnessOptions::from_args` exits on flags it does not know, so the
/// extra `--smoke` mode parses the shared flags by hand.
fn parse_args() -> (HarnessOptions, bool) {
    let mut scale_name = "harness".to_string();
    let mut seed: Option<u64> = None;
    let mut write_json = true;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale_name = args.next().unwrap_or_else(|| usage("--scale needs a value")),
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage("--seed needs a value"));
                seed = Some(v.parse().unwrap_or_else(|_| usage("--seed must be a u64")));
            }
            "--no-json" => write_json = false,
            "--smoke" => smoke = true,
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    if smoke {
        // The smoke gate is fixed-shape: test scale, no artifacts.
        scale_name = "test".to_string();
        write_json = false;
    }
    let mut scale = match scale_name.as_str() {
        "test" => Scale::test(),
        "harness" => Scale::harness_default(),
        "paper" => Scale::paper(),
        other => usage(&format!("unknown scale: {other}")),
    };
    if let Some(s) = seed {
        scale.seed = s;
    }
    (
        HarnessOptions {
            scale,
            scale_name,
            write_json,
        },
        smoke,
    )
}

fn opt(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{v:>8.3}"),
        None => format!("{:>8}", "-"),
    }
}

fn row(cell: &AdversaryCell) {
    println!(
        "{:>10} {:>9.2} {:>7} | {:>7.3} {:>7.4} | {} {} {} | {:>6} {:>6} {:>7} {:>6}",
        cell.attack.tag(),
        cell.intensity,
        if cell.defense { "on" } else { "off" },
        cell.tpr(),
        cell.fpr(),
        opt(cell.accuracy_median),
        opt(cell.accuracy_p95),
        opt(cell.accuracy_degradation),
        cell.adversary.active_lies,
        cell.adversary.cross_checks,
        cell.adversary.rejections,
        cell.replacements,
    );
}

fn print_sweep(sweep: &AdversarySweep) {
    println!(
        "{:>10} {:>9} {:>7} | {:>7} {:>7} | {:>8} {:>8} {:>8} | {:>6} {:>6} {:>7} {:>6}",
        "attack", "intensity", "defense", "TPR", "FPR", "med err", "p95 err", "degrade", "lies",
        "checks", "rejects", "repl"
    );
    for cell in &sweep.cells {
        row(cell);
    }
    println!();
    println!(
        "honest baseline median error: {}",
        opt(sweep.honest_accuracy_median)
    );
    println!("(sybil should be blatant: high TPR at every intensity;");
    println!(" eclipse defense-off TPR collapses — victims converged inside the");
    println!(" translated frame — and cross-verification buys it back;");
    println!(" sub-threshold slow drift evades both layers: the reported negative result)");
}

fn smoke_gate(sweep: &AdversarySweep) -> Result<(), String> {
    let need = |k: AttackKind, i: f64, d: bool| {
        sweep
            .cell(k, i, d)
            .ok_or_else(|| format!("missing {} cell at {i}/{d}", k.tag()))
    };
    let sybil = need(AttackKind::Sybil, 0.25, false)?;
    if sybil.tpr() <= 0.5 {
        return Err(format!("sybil must stay blatant, tpr {}", sybil.tpr()));
    }
    let ecl_off = need(AttackKind::Eclipse, 0.50, false)?;
    let ecl_on = need(AttackKind::Eclipse, 0.50, true)?;
    if ecl_off.adversary.cross_checks != 0 {
        return Err("defense-off cell ran cross-checks".to_string());
    }
    if ecl_on.tpr() <= ecl_off.tpr() + 0.2 {
        return Err(format!(
            "cross-verification must recover eclipse detection: off {} vs on {}",
            ecl_off.tpr(),
            ecl_on.tpr()
        ));
    }
    let drift = need(AttackKind::SlowDrift, 0.05, false)?;
    if drift.tpr() >= 0.2 {
        return Err(format!(
            "sub-threshold drift should evade the detector, tpr {}",
            drift.tpr()
        ));
    }
    // Eclipse is exempt: victims converged inside the translated frame,
    // so even honest samples look inconsistent there — its elevated FPR
    // is part of the reported result, not detector breakage.
    for cell in &sweep.cells {
        if cell.attack != AttackKind::Eclipse && cell.fpr() >= 0.15 {
            return Err(format!(
                "fpr blew up on {} at {}: {}",
                cell.attack.tag(),
                cell.intensity,
                cell.fpr()
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let (options, smoke) = parse_args();
    print_header(
        &options,
        "Adversary sweep: attack taxonomy x intensity x defense",
    );
    let sweep = if smoke {
        // One intensity per attack, both defense arms: the cells the
        // gate asserts on, nothing else.
        adversary_sweep_over(
            &options.scale,
            &[
                (AttackKind::Sybil, 0.25, false),
                (AttackKind::Sybil, 0.25, true),
                (AttackKind::Eclipse, 0.50, false),
                (AttackKind::Eclipse, 0.50, true),
                (AttackKind::SlowDrift, 0.05, false),
                (AttackKind::SlowDrift, 0.05, true),
            ],
        )
    } else {
        adversary_sweep(&options.scale)
    };
    write_result(&options, "adversary_sweep", &sweep);
    print_sweep(&sweep);
    if smoke {
        if let Err(msg) = smoke_gate(&sweep) {
            eprintln!("adversary smoke FAILED: {msg}");
            return ExitCode::FAILURE;
        }
        println!();
        println!("adversary smoke ok (blatant sybil, defense recovery, drift evasion)");
    }
    ExitCode::SUCCESS
}
