//! Fig 1 — QQ plots of innovation processes against the standard normal,
//! plus the §3.1 Lilliefors normality census.

use ices_bench::{print_header, write_result, HarnessOptions};
use ices_sim::experiments::validation::fig1_innovation_gaussianity;

fn main() {
    let options = HarnessOptions::from_args();
    print_header(
        &options,
        "Fig 1: innovation gaussianity (QQ + Lilliefors census)",
    );
    let result = fig1_innovation_gaussianity(&options.scale);

    println!("Lilliefors rejections at the 5% level (paper: 14/1720 sim, 5/260 PlanetLab):");
    for (combo, rejections, tested) in &result.lilliefors {
        println!("  {:<24} {rejections:>5} / {tested}", combo.label());
    }
    println!();

    for (name, qq) in [("Vivaldi", &result.qq_vivaldi), ("NPS", &result.qq_nps)] {
        println!("## QQ plot, {name} (PlanetLab-like), median node");
        println!("{:>14}  {:>14}", "normal quantile", "sample quantile");
        let step = (qq.len() / 40).max(1);
        for (i, p) in qq.iter().enumerate() {
            if i % step == 0 || i + 1 == qq.len() {
                println!("{:>14.4}  {:>14.4}", p.theoretical, p.sample);
            }
        }
        let r2 = ices_stats::qq::qq_correlation(qq);
        println!("(QQ correlation r² = {r2:.4})");
        println!();
    }

    write_result(&options, "fig01_qq", &result);
}
