//! Non-fatal throughput regression check over two `BENCH_sim.json`
//! files.
//!
//! ```text
//! bench_check <baseline.json> <current.json>
//! ```
//!
//! Compares every matching tick-engine configuration (driver × threads
//! × faults × journal) and the NPS solver microbenchmark; a
//! configuration whose throughput dropped more than 20% gets a loudly
//! printed warning, and a journaled configuration running more than 5%
//! below its unjournaled twin *in the current report* violates the obs
//! layer's overhead budget. Always exits 0 on a completed comparison —
//! timings on shared hardware are advisory, the warning is the signal —
//! and exits 2 only on usage or parse errors.

use serde::Value;

/// Fractional throughput drop that triggers a warning.
const TOLERANCE: f64 = 0.20;

/// Budgeted journaling overhead: a journaled run must stay within 5% of
/// the matching unjournaled configuration.
const JOURNAL_BUDGET: f64 = 0.05;

fn field<'a>(v: &'a Value, name: &str) -> Option<&'a Value> {
    match v {
        Value::Map(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

fn number(v: &Value) -> Option<f64> {
    match v {
        Value::F64(x) => Some(*x),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    }
}

/// `(driver, threads, faults, journal) → steps_per_sec` per run entry.
/// Reports recorded before the obs layer carry no `journal` field; those
/// entries default to `false`, keeping old baselines comparable.
fn runs(report: &Value) -> Vec<(String, u64, bool, bool, f64)> {
    let mut out = Vec::new();
    if let Some(Value::Seq(entries)) = field(report, "runs") {
        for run in entries {
            let driver = match field(run, "driver") {
                Some(Value::Str(s)) => s.clone(),
                _ => continue,
            };
            let threads = match field(run, "threads").and_then(number) {
                Some(t) => t as u64,
                None => continue,
            };
            let faults = matches!(field(run, "faults"), Some(Value::Bool(true)));
            let journal = matches!(field(run, "journal"), Some(Value::Bool(true)));
            let sps = match field(run, "steps_per_sec").and_then(number) {
                Some(s) => s,
                None => continue,
            };
            out.push((driver, threads, faults, journal, sps));
        }
    }
    out
}

fn solver_rate(report: &Value) -> Option<f64> {
    field(report, "nps_solver").and_then(|s| field(s, "solves_per_sec").and_then(number))
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = args.as_slice() else {
        eprintln!("usage: bench_check <baseline.json> <current.json>");
        std::process::exit(2);
    };
    if std::fs::metadata(baseline_path).map(|m| m.len()).unwrap_or(0) == 0 {
        println!("bench_check: no committed baseline to compare against — skipping");
        return;
    }
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b, c] {
                if let Err(e) = r {
                    eprintln!("bench_check: {e}");
                }
            }
            std::process::exit(2);
        }
    };

    let mut warnings = 0usize;
    let mut compared = 0usize;
    let old_runs = runs(&baseline);
    let new_runs = runs(&current);
    for (driver, threads, faults, journal, new_sps) in &new_runs {
        let Some((_, _, _, _, old_sps)) = old_runs.iter().find(|(d, t, f, j, _)| {
            d == driver && t == threads && f == faults && j == journal
        }) else {
            continue;
        };
        compared += 1;
        if *new_sps < old_sps * (1.0 - TOLERANCE) {
            warnings += 1;
            println!(
                "PERF WARNING: {driver} (threads={threads}, faults={faults}, \
                 journal={journal}) regressed {:.0}% — {:.0} → {:.0} steps/sec",
                100.0 * (1.0 - new_sps / old_sps),
                old_sps,
                new_sps
            );
        }
    }
    // The obs overhead budget is checked within the current report:
    // journaled vs unjournaled twins share the hardware and the moment,
    // so the ratio is meaningful even when absolute timings are noisy.
    for (driver, threads, faults, journal, j_sps) in &new_runs {
        if !journal {
            continue;
        }
        let Some((_, _, _, _, clean_sps)) = new_runs
            .iter()
            .find(|(d, t, f, j, _)| d == driver && t == threads && f == faults && !j)
        else {
            continue;
        };
        compared += 1;
        if *j_sps < clean_sps * (1.0 - JOURNAL_BUDGET) {
            warnings += 1;
            println!(
                "PERF WARNING: {driver} (threads={threads}) journaling overhead {:.1}% \
                 exceeds the {:.0}% budget — {:.0} → {:.0} steps/sec",
                100.0 * (1.0 - j_sps / clean_sps),
                100.0 * JOURNAL_BUDGET,
                clean_sps,
                j_sps
            );
        }
    }
    if let (Some(old), Some(new)) = (solver_rate(&baseline), solver_rate(&current)) {
        compared += 1;
        if new < old * (1.0 - TOLERANCE) {
            warnings += 1;
            println!(
                "PERF WARNING: nps_solver regressed {:.0}% — {:.1} → {:.1} solves/sec",
                100.0 * (1.0 - new / old),
                old,
                new
            );
        }
    }

    if warnings == 0 {
        println!("bench_check: {compared} configurations within {:.0}% of baseline", 100.0 * TOLERANCE);
    } else {
        println!(
            "bench_check: {warnings}/{compared} configurations regressed >{:.0}% (non-fatal; \
             investigate or re-record BENCH_sim.json with rationale)",
            100.0 * TOLERANCE
        );
    }
}
