//! Non-fatal throughput regression check over two `BENCH_sim.json`
//! files.
//!
//! ```text
//! bench_check <baseline.json> <current.json>
//! ```
//!
//! Compares every matching tick-engine configuration (driver × threads
//! × faults × journal), the streamed-topology scale-sweep rows (with a
//! wider 30% budget at ≥50k nodes, where run-to-run variance grows with
//! the constant-factor work per probe), and the NPS solver
//! microbenchmark; a configuration whose throughput dropped more than
//! its budget gets a loudly printed warning, a journaled configuration
//! running more than 5% below its unjournaled twin *in the current
//! report* violates the obs layer's overhead budget, and the Sybil
//! adversarial configuration running more than 10% below its
//! honest-world twin violates the intercept path's budget.
//!
//! When the two reports disagree on `host_parallelism`, only the
//! `threads == 1` configurations are compared: multi-thread rows (and
//! the recorded speedups, which may legitimately be `null` on
//! single-core hosts) are functions of the machine, not of the code,
//! so cross-host comparison of them is noise presented as signal.
//!
//! Always exits 0 on a completed comparison — timings on shared
//! hardware are advisory, the warning is the signal — and exits 2 only
//! on usage or parse errors.

use serde::Value;

/// Fractional throughput drop that triggers a warning.
const TOLERANCE: f64 = 0.20;

/// Wider budget for scale-sweep rows at or above this population: big
/// streamed runs are single-rep and allocator/page-cache sensitive.
const SWEEP_BIG_NODES: u64 = 50_000;
const SWEEP_BIG_TOLERANCE: f64 = 0.30;

/// Budgeted journaling overhead: a journaled run must stay within 5% of
/// the matching unjournaled configuration.
const JOURNAL_BUDGET: f64 = 0.05;

/// Budgeted intercept-path overhead: the Sybil-swarm configuration must
/// stay within 10% of its honest-world twin (same driver, same
/// attack-phase plumbing, the adversary the only variable).
const ADVERSARY_BUDGET: f64 = 0.10;

fn field<'a>(v: &'a Value, name: &str) -> Option<&'a Value> {
    match v {
        Value::Map(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

fn number(v: &Value) -> Option<f64> {
    match v {
        Value::F64(x) => Some(*x),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    }
}

/// `(driver, threads, faults, journal, adversary) → steps_per_sec` per
/// run entry. Reports recorded before the obs layer carry no `journal`
/// field (defaults `false`), and reports recorded before the adversary
/// rows carry no `adversary` field (defaults `"none"`) — old baselines
/// stay comparable either way.
fn runs(report: &Value) -> Vec<(String, u64, bool, bool, String, f64)> {
    let mut out = Vec::new();
    if let Some(Value::Seq(entries)) = field(report, "runs") {
        for run in entries {
            let driver = match field(run, "driver") {
                Some(Value::Str(s)) => s.clone(),
                _ => continue,
            };
            let threads = match field(run, "threads").and_then(number) {
                Some(t) => t as u64,
                None => continue,
            };
            let faults = matches!(field(run, "faults"), Some(Value::Bool(true)));
            let journal = matches!(field(run, "journal"), Some(Value::Bool(true)));
            let adversary = match field(run, "adversary") {
                Some(Value::Str(s)) => s.clone(),
                _ => "none".to_string(),
            };
            let sps = match field(run, "steps_per_sec").and_then(number) {
                Some(s) => s,
                None => continue,
            };
            out.push((driver, threads, faults, journal, adversary, sps));
        }
    }
    out
}

/// `(nodes, threads) → steps_per_sec` per scale-sweep row. Reports
/// recorded before the streamed sweep carry no `scale_sweep` field;
/// those yield no rows and the comparison is skipped.
fn sweep_rows(report: &Value) -> Vec<(u64, u64, f64)> {
    let mut out = Vec::new();
    if let Some(Value::Seq(entries)) = field(report, "scale_sweep") {
        for row in entries {
            let (Some(nodes), Some(threads), Some(sps)) = (
                field(row, "nodes").and_then(number),
                field(row, "threads").and_then(number),
                field(row, "steps_per_sec").and_then(number),
            ) else {
                continue;
            };
            out.push((nodes as u64, threads as u64, sps));
        }
    }
    out
}

fn host_parallelism(report: &Value) -> Option<u64> {
    field(report, "host_parallelism").and_then(number).map(|n| n as u64)
}

fn solver_rate(report: &Value) -> Option<f64> {
    field(report, "nps_solver").and_then(|s| field(s, "solves_per_sec").and_then(number))
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = args.as_slice() else {
        eprintln!("usage: bench_check <baseline.json> <current.json>");
        std::process::exit(2);
    };
    if std::fs::metadata(baseline_path).map(|m| m.len()).unwrap_or(0) == 0 {
        println!("bench_check: no committed baseline to compare against — skipping");
        return;
    }
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b, c] {
                if let Err(e) = r {
                    eprintln!("bench_check: {e}");
                }
            }
            std::process::exit(2);
        }
    };

    let mut warnings = 0usize;
    let mut compared = 0usize;
    // Differently-sized hosts make every multi-thread row (and any
    // recorded speedup) incomparable; restrict to the sequential rows.
    let same_host = match (host_parallelism(&baseline), host_parallelism(&current)) {
        (Some(b), Some(c)) => b == c,
        _ => true, // a pre-sweep report: keep the old permissive behavior
    };
    if !same_host {
        println!(
            "bench_check: host_parallelism differs between reports — \
             comparing threads=1 configurations only"
        );
    }
    let old_runs = runs(&baseline);
    let new_runs = runs(&current);
    for (driver, threads, faults, journal, adversary, new_sps) in &new_runs {
        if !same_host && *threads != 1 {
            continue;
        }
        let Some((_, _, _, _, _, old_sps)) = old_runs.iter().find(|(d, t, f, j, a, _)| {
            d == driver && t == threads && f == faults && j == journal && a == adversary
        }) else {
            continue;
        };
        compared += 1;
        if *new_sps < old_sps * (1.0 - TOLERANCE) {
            warnings += 1;
            println!(
                "PERF WARNING: {driver} (threads={threads}, faults={faults}, \
                 journal={journal}, adversary={adversary}) regressed {:.0}% — \
                 {:.0} → {:.0} steps/sec",
                100.0 * (1.0 - new_sps / old_sps),
                old_sps,
                new_sps
            );
        }
    }
    // The obs overhead budget is checked within the current report:
    // journaled vs unjournaled twins share the hardware and the moment,
    // so the ratio is meaningful even when absolute timings are noisy.
    for (driver, threads, faults, journal, adversary, j_sps) in &new_runs {
        if !journal {
            continue;
        }
        let Some((_, _, _, _, _, clean_sps)) = new_runs.iter().find(|(d, t, f, j, a, _)| {
            d == driver && t == threads && f == faults && !j && a == adversary
        }) else {
            continue;
        };
        compared += 1;
        if *j_sps < clean_sps * (1.0 - JOURNAL_BUDGET) {
            warnings += 1;
            println!(
                "PERF WARNING: {driver} (threads={threads}) journaling overhead {:.1}% \
                 exceeds the {:.0}% budget — {:.0} → {:.0} steps/sec",
                100.0 * (1.0 - j_sps / clean_sps),
                100.0 * JOURNAL_BUDGET,
                clean_sps,
                j_sps
            );
        }
    }
    // The intercept-path budget is likewise checked within the current
    // report: the Sybil row against its honest-world twin, same driver,
    // same moment, same hardware.
    for (driver, threads, faults, journal, adversary, sybil_sps) in &new_runs {
        if adversary != "sybil" {
            continue;
        }
        let Some((_, _, _, _, _, twin_sps)) = new_runs.iter().find(|(d, t, f, j, a, _)| {
            d == driver && t == threads && f == faults && j == journal && a == "honest_twin"
        }) else {
            continue;
        };
        compared += 1;
        if *sybil_sps < twin_sps * (1.0 - ADVERSARY_BUDGET) {
            warnings += 1;
            println!(
                "PERF WARNING: {driver} (threads={threads}) intercept-path overhead {:.1}% \
                 exceeds the {:.0}% budget — {:.0} → {:.0} steps/sec vs honest twin",
                100.0 * (1.0 - sybil_sps / twin_sps),
                100.0 * ADVERSARY_BUDGET,
                twin_sps,
                sybil_sps
            );
        }
    }
    // Scale-sweep rows: per-scale budgets (big streamed runs get 30%).
    let old_sweep = sweep_rows(&baseline);
    for (nodes, threads, new_sps) in sweep_rows(&current) {
        if !same_host && threads != 1 {
            continue;
        }
        let Some((_, _, old_sps)) = old_sweep
            .iter()
            .find(|(n, t, _)| *n == nodes && *t == threads)
        else {
            continue;
        };
        compared += 1;
        let budget = if nodes >= SWEEP_BIG_NODES {
            SWEEP_BIG_TOLERANCE
        } else {
            TOLERANCE
        };
        if new_sps < old_sps * (1.0 - budget) {
            warnings += 1;
            println!(
                "PERF WARNING: streamed sweep n={nodes} (threads={threads}) regressed \
                 {:.0}% (budget {:.0}%) — {:.0} → {:.0} steps/sec",
                100.0 * (1.0 - new_sps / old_sps),
                100.0 * budget,
                old_sps,
                new_sps
            );
        }
    }
    if let (Some(old), Some(new)) = (solver_rate(&baseline), solver_rate(&current)) {
        compared += 1;
        if new < old * (1.0 - TOLERANCE) {
            warnings += 1;
            println!(
                "PERF WARNING: nps_solver regressed {:.0}% — {:.1} → {:.1} solves/sec",
                100.0 * (1.0 - new / old),
                old,
                new
            );
        }
    }

    if warnings == 0 {
        println!("bench_check: {compared} configurations within {:.0}% of baseline", 100.0 * TOLERANCE);
    } else {
        println!(
            "bench_check: {warnings}/{compared} configurations regressed >{:.0}% (non-fatal; \
             investigate or re-record BENCH_sim.json with rationale)",
            100.0 * TOLERANCE
        );
    }
}
