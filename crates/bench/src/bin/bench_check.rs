//! Non-fatal throughput regression check over two `BENCH_sim.json`
//! files.
//!
//! ```text
//! bench_check <baseline.json> <current.json>
//! ```
//!
//! A thin shell over [`ices_bench::check::compare`], which owns the
//! comparison rules, the per-section budgets, and the schema-evolution
//! policy (fields an old baseline predates are defaulted, with a
//! printed migration note — see the module docs of
//! `crates/bench/src/check.rs`).
//!
//! Always exits 0 on a completed comparison — timings on shared
//! hardware are advisory, the warning is the signal — and exits 2 only
//! on usage or parse errors.

use ices_bench::check::{compare, TOLERANCE};
use serde::Value;

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = args.as_slice() else {
        eprintln!("usage: bench_check <baseline.json> <current.json>");
        std::process::exit(2);
    };
    if std::fs::metadata(baseline_path).map(|m| m.len()).unwrap_or(0) == 0 {
        println!("bench_check: no committed baseline to compare against — skipping");
        return;
    }
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b, c] {
                if let Err(e) = r {
                    eprintln!("bench_check: {e}");
                }
            }
            std::process::exit(2);
        }
    };

    let report = compare(&baseline, &current);
    for note in &report.notes {
        println!("bench_check: note — {note}");
    }
    for warning in &report.warnings {
        println!("PERF WARNING: {warning}");
    }
    if report.warnings.is_empty() {
        println!(
            "bench_check: {} configurations within {:.0}% of baseline",
            report.compared,
            100.0 * TOLERANCE
        );
    } else {
        println!(
            "bench_check: {}/{} configurations regressed >{:.0}% (non-fatal; \
             investigate or re-record BENCH_sim.json with rationale)",
            report.warnings.len(),
            report.compared,
            100.0 * TOLERANCE
        );
    }
}
