//! Non-fatal throughput regression check over two `BENCH_sim.json`
//! files.
//!
//! ```text
//! bench_check <baseline.json> <current.json>
//! ```
//!
//! Compares every matching tick-engine configuration (driver × threads
//! × faults × journal × adversary × tier — fast-tier rows only ever
//! compare against fast-tier baselines), the detector-bank
//! microbenchmark (both paths on the 20% budget, and the batched sweep
//! must beat the scalar loop within the current report), the
//! streamed-topology scale-sweep rows (with a
//! wider 30% budget at ≥50k nodes, where run-to-run variance grows with
//! the constant-factor work per probe), and the NPS solver
//! microbenchmark; a configuration whose throughput dropped more than
//! its budget gets a loudly printed warning, a journaled configuration
//! running more than 5% below its unjournaled twin *in the current
//! report* violates the obs layer's overhead budget, and the Sybil
//! adversarial configuration running more than 10% below its
//! honest-world twin violates the intercept path's budget.
//!
//! When the two reports disagree on `host_parallelism`, only the
//! `threads == 1` configurations are compared: multi-thread rows (and
//! the recorded speedups, which may legitimately be `null` on
//! single-core hosts) are functions of the machine, not of the code,
//! so cross-host comparison of them is noise presented as signal.
//!
//! Always exits 0 on a completed comparison — timings on shared
//! hardware are advisory, the warning is the signal — and exits 2 only
//! on usage or parse errors.

use serde::Value;

/// Fractional throughput drop that triggers a warning.
const TOLERANCE: f64 = 0.20;

/// Wider budget for scale-sweep rows at or above this population: big
/// streamed runs are single-rep and allocator/page-cache sensitive.
const SWEEP_BIG_NODES: u64 = 50_000;
const SWEEP_BIG_TOLERANCE: f64 = 0.30;

/// Budgeted journaling overhead: a journaled run must stay within 5% of
/// the matching unjournaled configuration.
const JOURNAL_BUDGET: f64 = 0.05;

/// Budgeted intercept-path overhead: the Sybil-swarm configuration must
/// stay within 10% of its honest-world twin (same driver, same
/// attack-phase plumbing, the adversary the only variable).
const ADVERSARY_BUDGET: f64 = 0.10;

fn field<'a>(v: &'a Value, name: &str) -> Option<&'a Value> {
    match v {
        Value::Map(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

fn number(v: &Value) -> Option<f64> {
    match v {
        Value::F64(x) => Some(*x),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    }
}

/// One tick-engine row's identity plus its throughput.
struct Row {
    driver: String,
    threads: u64,
    faults: bool,
    journal: bool,
    adversary: String,
    /// Numeric tier (`"exact"`/`"fast"`). Reports recorded before the
    /// fast tier carry no `tier` field; those rows default `"exact"`,
    /// which is what they were — and fast rows only ever compare
    /// against fast baselines, never across tiers.
    tier: String,
    sps: f64,
}

/// Per-run-entry rows. Reports recorded before the obs layer carry no
/// `journal` field (defaults `false`), reports recorded before the
/// adversary rows carry no `adversary` field (defaults `"none"`), and
/// pre-tier reports carry no `tier` field (defaults `"exact"`) — old
/// baselines stay comparable in every case.
fn runs(report: &Value) -> Vec<Row> {
    let mut out = Vec::new();
    if let Some(Value::Seq(entries)) = field(report, "runs") {
        for run in entries {
            let driver = match field(run, "driver") {
                Some(Value::Str(s)) => s.clone(),
                _ => continue,
            };
            let threads = match field(run, "threads").and_then(number) {
                Some(t) => t as u64,
                None => continue,
            };
            let faults = matches!(field(run, "faults"), Some(Value::Bool(true)));
            let journal = matches!(field(run, "journal"), Some(Value::Bool(true)));
            let adversary = match field(run, "adversary") {
                Some(Value::Str(s)) => s.clone(),
                _ => "none".to_string(),
            };
            let tier = match field(run, "tier") {
                Some(Value::Str(s)) => s.clone(),
                _ => "exact".to_string(),
            };
            let sps = match field(run, "steps_per_sec").and_then(number) {
                Some(s) => s,
                None => continue,
            };
            out.push(Row {
                driver,
                threads,
                faults,
                journal,
                adversary,
                tier,
                sps,
            });
        }
    }
    out
}

/// `(scalar, batched)` sweeps/sec of the detector-bank microbenchmark,
/// absent on reports recorded before the bank existed.
fn detector_bank_rates(report: &Value) -> Option<(f64, f64)> {
    let bank = field(report, "detector_bank")?;
    Some((
        field(bank, "scalar_sweeps_per_sec").and_then(number)?,
        field(bank, "batched_sweeps_per_sec").and_then(number)?,
    ))
}

/// `(nodes, threads) → steps_per_sec` per scale-sweep row. Reports
/// recorded before the streamed sweep carry no `scale_sweep` field;
/// those yield no rows and the comparison is skipped.
fn sweep_rows(report: &Value) -> Vec<(u64, u64, f64)> {
    let mut out = Vec::new();
    if let Some(Value::Seq(entries)) = field(report, "scale_sweep") {
        for row in entries {
            let (Some(nodes), Some(threads), Some(sps)) = (
                field(row, "nodes").and_then(number),
                field(row, "threads").and_then(number),
                field(row, "steps_per_sec").and_then(number),
            ) else {
                continue;
            };
            out.push((nodes as u64, threads as u64, sps));
        }
    }
    out
}

fn host_parallelism(report: &Value) -> Option<u64> {
    field(report, "host_parallelism").and_then(number).map(|n| n as u64)
}

fn solver_rate(report: &Value) -> Option<f64> {
    field(report, "nps_solver").and_then(|s| field(s, "solves_per_sec").and_then(number))
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = args.as_slice() else {
        eprintln!("usage: bench_check <baseline.json> <current.json>");
        std::process::exit(2);
    };
    if std::fs::metadata(baseline_path).map(|m| m.len()).unwrap_or(0) == 0 {
        println!("bench_check: no committed baseline to compare against — skipping");
        return;
    }
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b, c] {
                if let Err(e) = r {
                    eprintln!("bench_check: {e}");
                }
            }
            std::process::exit(2);
        }
    };

    let mut warnings = 0usize;
    let mut compared = 0usize;
    // Differently-sized hosts make every multi-thread row (and any
    // recorded speedup) incomparable; restrict to the sequential rows.
    let same_host = match (host_parallelism(&baseline), host_parallelism(&current)) {
        (Some(b), Some(c)) => b == c,
        _ => true, // a pre-sweep report: keep the old permissive behavior
    };
    if !same_host {
        println!(
            "bench_check: host_parallelism differs between reports — \
             comparing threads=1 configurations only"
        );
    }
    let old_runs = runs(&baseline);
    let new_runs = runs(&current);
    for row in &new_runs {
        if !same_host && row.threads != 1 {
            continue;
        }
        // Tier is part of the row's identity: a fast row never compares
        // against an exact baseline (or vice versa).
        let Some(old) = old_runs.iter().find(|o| {
            o.driver == row.driver
                && o.threads == row.threads
                && o.faults == row.faults
                && o.journal == row.journal
                && o.adversary == row.adversary
                && o.tier == row.tier
        }) else {
            continue;
        };
        compared += 1;
        if row.sps < old.sps * (1.0 - TOLERANCE) {
            warnings += 1;
            println!(
                "PERF WARNING: {} (threads={}, faults={}, journal={}, \
                 adversary={}, tier={}) regressed {:.0}% — \
                 {:.0} → {:.0} steps/sec",
                row.driver,
                row.threads,
                row.faults,
                row.journal,
                row.adversary,
                row.tier,
                100.0 * (1.0 - row.sps / old.sps),
                old.sps,
                row.sps
            );
        }
    }
    // The obs overhead budget is checked within the current report:
    // journaled vs unjournaled twins share the hardware and the moment,
    // so the ratio is meaningful even when absolute timings are noisy.
    for row in &new_runs {
        if !row.journal {
            continue;
        }
        let Some(clean) = new_runs.iter().find(|o| {
            o.driver == row.driver
                && o.threads == row.threads
                && o.faults == row.faults
                && !o.journal
                && o.adversary == row.adversary
                && o.tier == row.tier
        }) else {
            continue;
        };
        compared += 1;
        if row.sps < clean.sps * (1.0 - JOURNAL_BUDGET) {
            warnings += 1;
            println!(
                "PERF WARNING: {} (threads={}) journaling overhead {:.1}% \
                 exceeds the {:.0}% budget — {:.0} → {:.0} steps/sec",
                row.driver,
                row.threads,
                100.0 * (1.0 - row.sps / clean.sps),
                100.0 * JOURNAL_BUDGET,
                clean.sps,
                row.sps
            );
        }
    }
    // The intercept-path budget is likewise checked within the current
    // report: the Sybil row against its honest-world twin, same driver,
    // same moment, same hardware.
    for row in &new_runs {
        if row.adversary != "sybil" {
            continue;
        }
        let Some(twin) = new_runs.iter().find(|o| {
            o.driver == row.driver
                && o.threads == row.threads
                && o.faults == row.faults
                && o.journal == row.journal
                && o.adversary == "honest_twin"
                && o.tier == row.tier
        }) else {
            continue;
        };
        compared += 1;
        if row.sps < twin.sps * (1.0 - ADVERSARY_BUDGET) {
            warnings += 1;
            println!(
                "PERF WARNING: {} (threads={}) intercept-path overhead {:.1}% \
                 exceeds the {:.0}% budget — {:.0} → {:.0} steps/sec vs honest twin",
                row.driver,
                row.threads,
                100.0 * (1.0 - row.sps / twin.sps),
                100.0 * ADVERSARY_BUDGET,
                twin.sps,
                row.sps
            );
        }
    }
    // Scale-sweep rows: per-scale budgets (big streamed runs get 30%).
    let old_sweep = sweep_rows(&baseline);
    for (nodes, threads, new_sps) in sweep_rows(&current) {
        if !same_host && threads != 1 {
            continue;
        }
        let Some((_, _, old_sps)) = old_sweep
            .iter()
            .find(|(n, t, _)| *n == nodes && *t == threads)
        else {
            continue;
        };
        compared += 1;
        let budget = if nodes >= SWEEP_BIG_NODES {
            SWEEP_BIG_TOLERANCE
        } else {
            TOLERANCE
        };
        if new_sps < old_sps * (1.0 - budget) {
            warnings += 1;
            println!(
                "PERF WARNING: streamed sweep n={nodes} (threads={threads}) regressed \
                 {:.0}% (budget {:.0}%) — {:.0} → {:.0} steps/sec",
                100.0 * (1.0 - new_sps / old_sps),
                100.0 * budget,
                old_sps,
                new_sps
            );
        }
    }
    // Detector-bank microbenchmark rows: the regular 20% budget on each
    // path's absolute rate against the baseline, and — within the
    // current report — the bank must actually beat the scalar loop it
    // exists to replace.
    if let (Some((old_scalar, old_batched)), Some((new_scalar, new_batched))) =
        (detector_bank_rates(&baseline), detector_bank_rates(&current))
    {
        for (name, old, new) in [
            ("scalar", old_scalar, new_scalar),
            ("batched", old_batched, new_batched),
        ] {
            compared += 1;
            if new < old * (1.0 - TOLERANCE) {
                warnings += 1;
                println!(
                    "PERF WARNING: detector_bank {name} sweep regressed {:.0}% — \
                     {:.0} → {:.0} sweeps/sec",
                    100.0 * (1.0 - new / old),
                    old,
                    new
                );
            }
        }
    }
    if let Some((scalar, batched)) = detector_bank_rates(&current) {
        compared += 1;
        if batched <= scalar {
            warnings += 1;
            println!(
                "PERF WARNING: detector_bank batched sweep ({batched:.0}/s) is not \
                 faster than the scalar loop ({scalar:.0}/s)"
            );
        }
    }
    if let (Some(old), Some(new)) = (solver_rate(&baseline), solver_rate(&current)) {
        compared += 1;
        if new < old * (1.0 - TOLERANCE) {
            warnings += 1;
            println!(
                "PERF WARNING: nps_solver regressed {:.0}% — {:.1} → {:.1} solves/sec",
                100.0 * (1.0 - new / old),
                old,
                new
            );
        }
    }

    if warnings == 0 {
        println!("bench_check: {compared} configurations within {:.0}% of baseline", 100.0 * TOLERANCE);
    } else {
        println!(
            "bench_check: {warnings}/{compared} configurations regressed >{:.0}% (non-fatal; \
             investigate or re-record BENCH_sim.json with rationale)",
            100.0 * TOLERANCE
        );
    }
}
