//! Fig 13 — CDFs of measured relative errors across normal nodes:
//! clean baseline, attack with/without detection at several intensities,
//! and the "dedicated Surveyors for embedding" variant.

use ices_bench::{print_curve, print_header, write_result, HarnessOptions};
use ices_sim::experiments::system_perf::fig13_vivaldi;

fn main() {
    let options = HarnessOptions::from_args();
    print_header(&options, "Fig 13: Vivaldi system accuracy under attack");
    let result = fig13_vivaldi(&options.scale, &[0.1, 0.3, 0.5]);

    for curve in &result.curves {
        print_curve(curve, 25);
    }
    println!("median relative error per configuration:");
    for (label, median) in &result.medians {
        println!("  {label:<42} {median:.4}");
    }
    println!();
    println!("(paper: near-immunity up to ~30% malicious with detection on; the");
    println!(" dedicated-Surveyor variant trades accuracy for unconditional immunity)");

    write_result(&options, "fig13_vivaldi_cdf", &result);
}
