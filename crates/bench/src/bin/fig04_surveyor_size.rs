//! Fig 4 — impact of Surveyor population size (and k-means placement)
//! on representativeness.

use ices_bench::{print_curve, print_header, write_result, HarnessOptions};
use ices_sim::experiments::representativeness::fig4_surveyor_population;

fn main() {
    let options = HarnessOptions::from_args();
    print_header(
        &options,
        "Fig 4: Surveyor population size vs representativeness",
    );
    let result = fig4_surveyor_population(&options.scale);

    for curve in &result.curves {
        print_curve(curve, 25);
    }
    println!("KS distance to the normal-node distribution (smaller = more representative):");
    for (label, d) in &result.ks {
        println!("  {label:<20} {d:.4}");
    }
    println!();
    println!("(paper: ~8% random Surveyors ≈ the full population; ~1% k-means cluster");
    println!(" heads achieve comparable representativeness)");

    write_result(&options, "fig04_surveyor_size", &result);
}
