//! bench_check against fixture baselines: the schema-evolution contract.
//!
//! `tests/fixtures/bench_old_schema.json` is a report the way the
//! harness wrote it before the `journal`, `adversary`, `tier`, and
//! `loadgen` sections existed. It must stay comparable — defaults plus
//! one migration note per missing field — forever; an old committed
//! baseline going dark (or erroring) after a schema change is exactly
//! the regression this file pins down. The committed `BENCH_sim.json`
//! must also always self-compare clean.

use ices_bench::check::compare;
use serde::Value;
use std::path::Path;

fn load(path: impl AsRef<Path>) -> Value {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {}: {e:?}", path.display()))
}

fn fixture(name: &str) -> Value {
    load(Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name))
}

/// A current-schema report shaped like today's harness output.
fn modern_report() -> Value {
    serde_json::from_str(
        r#"{
            "runs": [
                {"driver": "vivaldi", "threads": 1, "faults": false,
                 "journal": false, "adversary": "none", "tier": "exact",
                 "steps_per_sec": 1150.0},
                {"driver": "vivaldi", "threads": 1, "faults": true,
                 "journal": false, "adversary": "none", "tier": "exact",
                 "steps_per_sec": 1050.0},
                {"driver": "nps", "threads": 1, "faults": false,
                 "journal": false, "adversary": "none", "tier": "exact",
                 "steps_per_sec": 790.0}
            ],
            "nps_solver": {"solves_per_sec": 41.0},
            "loadgen": {"probes_per_sec": 50000.0}
        }"#,
    )
    .unwrap_or_else(|e| panic!("{e:?}"))
}

#[test]
fn old_schema_baseline_compares_with_migration_notes() {
    let baseline = fixture("bench_old_schema.json");
    let report = compare(&baseline, &modern_report());

    // All three tick-engine rows plus the solver row matched under the
    // defaults; nothing regressed, so no warnings.
    assert_eq!(report.compared, 4, "notes: {:?}", report.notes);
    assert!(report.warnings.is_empty(), "{:?}", report.warnings);

    // One note per defaulted field, naming the field and the row count,
    // plus one for the missing loadgen section.
    for needle in ["`journal`", "`adversary`", "`tier`", "loadgen"] {
        assert!(
            report.notes.iter().any(|n| n.contains(needle)),
            "no migration note mentioning {needle}: {:?}",
            report.notes
        );
    }
    assert!(
        report.notes.iter().any(|n| n.contains("3 row(s)")),
        "note must count the defaulted rows: {:?}",
        report.notes
    );
}

#[test]
fn old_schema_baseline_still_catches_regressions() {
    let baseline = fixture("bench_old_schema.json");
    let mut current = modern_report();
    // Halve the vivaldi fault-free row's throughput.
    if let Value::Map(top) = &mut current {
        if let Some((_, Value::Seq(runs))) = top.iter_mut().find(|(k, _)| k == "runs") {
            if let Some(Value::Map(run)) = runs.first_mut() {
                if let Some((_, sps)) = run.iter_mut().find(|(k, _)| k == "steps_per_sec") {
                    *sps = Value::F64(400.0);
                }
            }
        }
    }
    let report = compare(&baseline, &current);
    assert_eq!(report.warnings.len(), 1, "{:?}", report.warnings);
    assert!(report.warnings[0].contains("vivaldi"));
}

#[test]
fn committed_baseline_self_compares_clean() {
    let committed = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sim.json");
    let baseline = load(&committed);
    let report = compare(&baseline, &baseline);
    assert!(
        report.compared > 0,
        "committed BENCH_sim.json produced no comparable rows"
    );
    assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    assert!(
        report.notes.is_empty(),
        "committed baseline must be current-schema: {:?}",
        report.notes
    );
}
