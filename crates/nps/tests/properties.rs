//! Property-based tests of the NPS substrate: simplex optimizer
//! contracts and node round behavior over randomized inputs.

use ices_coord::{Coordinate, Embedding, PeerSample, Space};
use ices_nps::{nelder_mead, NpsConfig, NpsNode};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn nelder_mead_never_worsens_the_start(
        x0 in proptest::collection::vec(-50f64..50.0, 1..6),
        shift in proptest::collection::vec(-20f64..20.0, 6),
    ) {
        // Quadratic bowl with a random center: the result must be at
        // least as good as the starting point.
        let center = shift[..x0.len()].to_vec();
        let f = |x: &[f64]| -> f64 {
            x.iter().zip(&center).map(|(a, b)| (a - b) * (a - b)).sum()
        };
        let start_value = f(&x0);
        let r = nelder_mead(f, &x0, 1.0, 300, 1e-10);
        prop_assert!(r.value <= start_value + 1e-12);
        prop_assert!(r.x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn nelder_mead_finds_quadratic_minimum(
        center in proptest::collection::vec(-30f64..30.0, 2..5),
    ) {
        let c = center.clone();
        let f = move |x: &[f64]| -> f64 {
            x.iter().zip(&c).map(|(a, b)| (a - b) * (a - b)).sum()
        };
        let x0 = vec![0.0; center.len()];
        let r = nelder_mead(f, &x0, 2.0, 4000, 1e-12);
        for (got, want) in r.x.iter().zip(&center) {
            prop_assert!((got - want).abs() < 0.01, "got {got}, want {want}");
        }
    }

    #[test]
    fn node_rounds_never_produce_nonfinite_coordinates(
        anchors in proptest::collection::vec(
            (proptest::collection::vec(-200f64..200.0, 2), 1f64..400.0), 4..12),
        seed in 0u64..300,
    ) {
        let cfg = NpsConfig {
            space: Space::euclidean(2),
            landmarks: 6,
            rps_per_node: 12,
            min_rps: 3,
            solver_max_iter: 150,
            ..NpsConfig::paper_default()
        };
        let mut node = NpsNode::new(0, cfg, seed);
        for (i, (pos, rtt)) in anchors.iter().enumerate() {
            node.apply_step(&PeerSample {
                peer: i,
                peer_coord: Coordinate::euclidean(pos.clone()),
                peer_error: 0.2,
                rtt_ms: *rtt,
            });
        }
        let summary = node.finish_round();
        prop_assert!(node.coordinate().is_finite());
        if let Some(s) = summary {
            prop_assert!(s.fit_error.is_finite() && s.fit_error >= 0.0);
            prop_assert!(s.samples_used >= cfg.min_rps.saturating_sub(1));
        }
        prop_assert_eq!(node.pending_samples(), 0, "buffer always clears");
    }

    #[test]
    fn exact_distances_are_recovered_regardless_of_truth(
        tx in -80f64..80.0,
        ty in -80f64..80.0,
        seed in 0u64..200,
    ) {
        // Anchors at fixed spread positions; distances generated from the
        // random truth point must be recovered by the round.
        let anchors = [
            [0.0, 0.0],
            [120.0, 0.0],
            [0.0, 120.0],
            [120.0, 120.0],
            [60.0, -50.0],
            [-50.0, 60.0],
        ];
        let cfg = NpsConfig {
            space: Space::euclidean(2),
            landmarks: 6,
            rps_per_node: 6,
            min_rps: 3,
            solver_max_iter: 1200,
            solver_restarts: 5,
            ..NpsConfig::paper_default()
        };
        let mut node = NpsNode::new(0, cfg, seed);
        for (i, a) in anchors.iter().enumerate() {
            let d = ((a[0] - tx).powi(2) + (a[1] - ty).powi(2)).sqrt().max(1.0);
            node.apply_step(&PeerSample {
                peer: i,
                peer_coord: Coordinate::euclidean(a.to_vec()),
                peer_error: 0.1,
                rtt_ms: d,
            });
        }
        let summary = node.finish_round().expect("enough samples");
        prop_assert!(
            summary.fit_error < 0.02,
            "exact distances must fit nearly perfectly: {}",
            summary.fit_error
        );
    }
}
