//! Counting-allocator proof of the scratch solver's zero-allocation
//! contract: after a warm-up call, [`NelderMeadScratch::minimize`]
//! performs no heap allocation at all — not per iteration, not per call.
//!
//! This integration test is its own binary with exactly one test, so the
//! global counting allocator observes only the harness and the solver;
//! the measured window brackets the solve alone.

use ices_nps::NelderMeadScratch;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// System allocator with an allocation-event counter. `dealloc` is
/// uncounted on purpose: freeing warm-up garbage is fine, acquiring new
/// memory inside the measured window is not.
struct CountingAllocator;

// SAFETY: delegates every operation verbatim to `System`; the counter is
// a relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn rosenbrock(x: &[f64]) -> f64 {
    let (a, b) = (x[0], x[1]);
    (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
}

fn bowl8(x: &[f64]) -> f64 {
    x.iter().map(|v| (v - 3.0) * (v - 3.0)).sum()
}

#[test]
fn warm_scratch_minimize_does_not_allocate() {
    let mut scratch = NelderMeadScratch::new();
    // Warm up both dimensionalities the measured window exercises.
    scratch.minimize(rosenbrock, &[-1.2, 1.0], 0.5, 5000, 1e-12);
    scratch.minimize(bowl8, &[0.0; 8], 1.0, 2000, 1e-10);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..5 {
        let stats = scratch.minimize(rosenbrock, &[-1.2, 1.0], 0.5, 5000, 1e-12);
        assert!(stats.converged);
        let stats = scratch.minimize(bowl8, &[0.0; 8], 1.0, 2000, 1e-10);
        assert!(stats.converged);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm NelderMeadScratch::minimize must not touch the allocator"
    );
}
