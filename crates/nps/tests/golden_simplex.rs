//! Golden `to_bits` regression tests for the Nelder–Mead solver.
//!
//! The expected values were captured from the original (allocating)
//! implementation before the scratch-space rewrite; the optimized solver
//! must reproduce every bit. Any future "optimization" that perturbs the
//! floating-point operation order — reassociating the accumulation,
//! changing the vertex tie-break, fusing operations — fails here loudly
//! instead of silently shifting every simulation result downstream.

use ices_nps::{nelder_mead, NelderMeadResult};

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[track_caller]
fn assert_bits(r: &NelderMeadResult, x_bits: &[u64], value_bits: u64, iterations: usize, converged: bool) {
    let got: Vec<u64> = r.x.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, x_bits, "x drifted: {:?}", r.x);
    assert_eq!(r.value.to_bits(), value_bits, "value drifted: {}", r.value);
    assert_eq!(r.iterations, iterations, "iteration count drifted");
    assert_eq!(r.converged, converged, "convergence flag drifted");
}

#[test]
fn rosenbrock_2d_bits_are_stable() {
    let rosen = |x: &[f64]| {
        let (a, b) = (x[0], x[1]);
        (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
    };
    let r = nelder_mead(rosen, &[-1.2, 1.0], 0.5, 5000, 1e-12);
    assert_bits(
        &r,
        &[4607182418800017448, 4607182418800017573],
        4226092822484221952,
        150,
        true,
    );
}

#[test]
fn gnp_2d_objective_bits_are_stable() {
    // 5 anchors, exact distances to a hidden point — the GNP objective
    // shape an NPS node minimizes every round.
    let anchors: [[f64; 2]; 5] = [
        [0.0, 0.0],
        [100.0, 0.0],
        [0.0, 100.0],
        [100.0, 100.0],
        [50.0, 120.0],
    ];
    let truth = [37.0, 61.0];
    let rtts: Vec<f64> = anchors.iter().map(|a| dist(a, &truth)).collect();
    let objective = |x: &[f64]| -> f64 {
        anchors
            .iter()
            .zip(&rtts)
            .map(|(a, &rtt)| {
                let est = dist(a, x);
                ((est - rtt) / rtt).powi(2)
            })
            .sum()
    };
    let r = nelder_mead(objective, &[0.0, 0.0], 10.0, 5000, 1e-14);
    assert_bits(
        &r,
        &[4630404104378646528, 4633781804099174400],
        0, // the solve bottoms out at exactly +0.0
        139,
        true,
    );
}

#[test]
fn gnp_8d_objective_bits_are_stable() {
    // The paper's 8-d configuration: 20 deterministic anchors, iteration
    // cap at the production solver_max_iter so the capped path is pinned
    // too.
    let truth: Vec<f64> = (0..8).map(|i| 10.0 * i as f64).collect();
    let anchors: Vec<Vec<f64>> = (0..20usize)
        .map(|k| {
            (0..8)
                .map(|d| {
                    if (k + d) % 3 == 0 {
                        100.0
                    } else {
                        -30.0 * (d as f64 + 1.0) / (k as f64 + 1.0)
                    }
                })
                .collect()
        })
        .collect();
    let rtts: Vec<f64> = anchors.iter().map(|a| dist(a, &truth)).collect();
    let objective = |x: &[f64]| -> f64 {
        anchors
            .iter()
            .zip(&rtts)
            .map(|(a, &rtt)| {
                let est = dist(a, x);
                ((est - rtt) / rtt).powi(2)
            })
            .sum()
    };
    let r = nelder_mead(objective, &[0.0; 8], 25.0, 600, 1e-8);
    assert_bits(
        &r,
        &[
            13837690620005887472,
            4624078763543945294,
            4625399041461412575,
            4632791086344457034,
            4633923935935641159,
            4633384838249820440,
            4631526973022107598,
            4632338435002074422,
        ],
        4547130067293897008,
        600,
        false,
    );
}
