//! Nelder–Mead downhill simplex minimization.
//!
//! NPS (like GNP before it) computes a node's coordinate by minimizing
//! the sum of squared relative errors against its reference points with
//! the downhill simplex method — derivative-free, robust to the
//! non-smooth objective that absolute values and RTT noise produce.
//!
//! Standard coefficients: reflection 1, expansion 2, contraction ½,
//! shrink ½.
//!
//! The solver runs inside every NPS positioning round, so the hot entry
//! point is [`NelderMeadScratch::minimize`]: the simplex lives in one
//! flat row-major buffer and every intermediate (centroid, reflection,
//! expansion/contraction candidate, vertex ordering) is a preallocated
//! buffer reused across iterations and across calls. After the first
//! call at a given dimensionality, an iteration performs zero heap
//! allocations. The free function [`nelder_mead`] is a thin shim that
//! builds a one-shot scratch, for callers that don't care.
//!
//! Bit-for-bit guarantee: `minimize` executes the exact floating-point
//! operation sequence of the original allocating implementation — same
//! evaluation order, same accumulation order, same tie-breaking (the
//! vertex ordering maintains the permutation a stable sort of the
//! identity produces, i.e. sorted by `(value, vertex index)`). The
//! golden `to_bits` regression tests pin this.

/// Result of a Nelder–Mead run.
#[derive(Debug, Clone, PartialEq)]
pub struct NelderMeadResult {
    /// The best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Whether the simplex diameter converged below tolerance (as
    /// opposed to hitting the iteration cap).
    pub converged: bool,
}

/// Outcome of a scratch-based run; the best point itself stays in the
/// scratch (read it with [`NelderMeadScratch::best_point`]) so the
/// solver never has to allocate for it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadStats {
    /// Objective value at the best point.
    pub value: f64,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Whether the simplex diameter converged below tolerance.
    pub converged: bool,
}

const ALPHA: f64 = 1.0; // reflection
const GAMMA: f64 = 2.0; // expansion
const RHO: f64 = 0.5; // contraction
const SIGMA: f64 = 0.5; // shrink

/// Reusable workspace for Nelder–Mead runs.
///
/// All buffers are grown on demand and kept between calls, so repeated
/// solves at the same dimensionality (the NPS restart loop, successive
/// rounds) never touch the allocator: after warm-up, `minimize` performs
/// zero heap allocations per iteration — the `&mut self` contract is
/// exactly that the workspace owns every byte the solver needs.
#[derive(Debug, Clone, Default)]
pub struct NelderMeadScratch {
    /// The simplex: `n + 1` vertices of dimension `n`, flat row-major.
    simplex: Vec<f64>,
    /// Objective value of each vertex.
    values: Vec<f64>,
    /// Vertex indices sorted by `(value, index)` — the permutation a
    /// stable sort of `0..=n` by value produces. Maintained
    /// incrementally: accepted moves re-insert the single replaced
    /// vertex; only a shrink (which re-evaluates every vertex) rebuilds.
    order: Vec<usize>,
    /// Centroid of all vertices but the worst.
    centroid: Vec<f64>,
    /// Reflection candidate.
    reflect: Vec<f64>,
    /// Expansion *and* contraction candidate (never both live at once).
    expand: Vec<f64>,
    /// Copy of the best vertex pinned during an in-place shrink.
    best_copy: Vec<f64>,
    /// Best point of the last run.
    best_x: Vec<f64>,
}

/// Dimensionality parameter for the solver core: either a compile-time
/// constant (so the per-iteration loops unroll and vectorize into
/// straight-line code) or a runtime value. Both instantiations are the
/// same source body, so they execute the same floating-point operation
/// sequence — monomorphization changes code generation, never op order.
trait Dim: Copy {
    fn get(self) -> usize;
}

/// Compile-time dimensionality (the production NPS configuration runs
/// 8-d, so `Fixed::<8>` carries the hot path).
#[derive(Copy, Clone)]
struct Fixed<const N: usize>;

impl<const N: usize> Dim for Fixed<N> {
    #[inline(always)]
    fn get(self) -> usize {
        N
    }
}

/// Runtime dimensionality — the fallback for every other `n`.
#[derive(Copy, Clone)]
struct Dyn(usize);

impl Dim for Dyn {
    #[inline(always)]
    fn get(self) -> usize {
        self.0
    }
}

/// `(value, index)` strict less-than — the total order the vertex
/// ranking maintains. Ties on value break by vertex index, which is
/// exactly what a stable sort of the identity permutation yields.
#[inline]
fn rank_less(values: &[f64], a: usize, b: usize) -> bool {
    match values[a].total_cmp(&values[b]) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => a < b,
    }
}

/// Rebuild `order` as `0..values.len()` sorted by `(value, index)`.
/// Insertion sort: the simplex has at most a handful of vertices.
fn rebuild_order(order: &mut Vec<usize>, values: &[f64]) {
    order.clear();
    for i in 0..values.len() {
        order.push(i);
        let mut j = order.len() - 1;
        while j > 0 && rank_less(values, order[j], order[j - 1]) {
            order.swap(j, j - 1);
            j -= 1;
        }
    }
}

/// Re-insert the (just replaced) last-ranked vertex into its sorted
/// position after its value changed.
fn reposition_last(order: &mut [usize], values: &[f64]) {
    let mut j = order.len() - 1;
    let moved = order[j];
    while j > 0 && rank_less(values, moved, order[j - 1]) {
        order[j] = order[j - 1];
        j -= 1;
    }
    order[j] = moved;
}

impl NelderMeadScratch {
    /// Create an empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Best point found by the most recent [`minimize`](Self::minimize)
    /// call. Empty before the first call.
    pub fn best_point(&self) -> &[f64] {
        &self.best_x
    }

    /// Size every buffer for dimensionality `n` without shrinking
    /// capacity, so repeat calls at the same `n` never reallocate.
    fn prepare(&mut self, n: usize) {
        self.simplex.clear();
        self.simplex.resize((n + 1) * n, 0.0);
        self.values.clear();
        self.values.reserve(n + 1);
        self.order.clear();
        self.order.reserve(n + 1);
        self.centroid.clear();
        self.centroid.resize(n, 0.0);
        self.reflect.clear();
        self.reflect.resize(n, 0.0);
        self.expand.clear();
        self.expand.resize(n, 0.0);
        self.best_copy.clear();
        self.best_copy.resize(n, 0.0);
        self.best_x.reserve(n);
    }

    /// Minimize `f` starting from `x0`, building the initial simplex by
    /// stepping `initial_step` along each axis.
    ///
    /// Stops when the simplex's objective spread and diameter fall below
    /// `tol`, or after `max_iter` iterations. The best point is left in
    /// the scratch — read it with [`best_point`](Self::best_point).
    ///
    /// # Panics
    /// Panics if `x0` is empty, `initial_step` is not positive, `tol` is
    /// not positive, or `f` returns NaN at the starting point.
    pub fn minimize(
        &mut self,
        f: impl FnMut(&[f64]) -> f64,
        x0: &[f64],
        initial_step: f64,
        max_iter: usize,
        tol: f64,
    ) -> NelderMeadStats {
        assert!(!x0.is_empty(), "cannot optimize a zero-dimensional point");
        assert!(initial_step > 0.0, "initial_step must be positive");
        assert!(tol > 0.0, "tol must be positive");
        // Dispatch to a monomorphized core when the dimensionality is the
        // production one: with `n` a compile-time constant the centroid /
        // reflect / shrink loops become straight-line vector code. Both
        // arms run the identical source body (see [`Dim`]).
        match x0.len() {
            8 => self.minimize_impl(Fixed::<8>, f, x0, initial_step, max_iter, tol),
            n => self.minimize_impl(Dyn(n), f, x0, initial_step, max_iter, tol),
        }
    }

    fn minimize_impl<D: Dim>(
        &mut self,
        dim: D,
        mut f: impl FnMut(&[f64]) -> f64,
        x0: &[f64],
        initial_step: f64,
        max_iter: usize,
        tol: f64,
    ) -> NelderMeadStats {
        let n = dim.get();
        debug_assert_eq!(n, x0.len());
        self.prepare(n);

        // Re-slice every buffer through the `Dim`-provided length so the
        // monomorphized instantiation sees compile-time trip counts (the
        // `Vec` lengths alone are opaque to the optimizer). Pure
        // re-slicing — no arithmetic is touched.
        let Self {
            simplex,
            values,
            order,
            centroid,
            reflect,
            expand,
            best_copy,
            best_x,
        } = self;
        let simplex = &mut simplex[..(n + 1) * n];
        let centroid = &mut centroid[..n];
        let reflect = &mut reflect[..n];
        let expand = &mut expand[..n];
        let best_copy = &mut best_copy[..n];

        // Initial simplex: x0 plus one axis-step vertex per dimension.
        // audit:allow(FAST01): row views into the flattened simplex matrix, not a reduction
        for (row, v) in simplex.chunks_exact_mut(n).enumerate() {
            v.copy_from_slice(x0);
            if row > 0 {
                v[row - 1] += initial_step;
            }
        }
        // audit:allow(FAST01): row views into the flattened simplex matrix, not a reduction
        for v in simplex.chunks_exact(n) {
            let value = f(v);
            values.push(value);
        }
        // audit:allow(PANIC02): simplex holds n + 1 >= 2 vertices by construction
        assert!(!values[0].is_nan(), "objective is NaN at the starting point");
        let values = &mut values[..n + 1];
        rebuild_order(order, values);

        let mut iterations = 0;
        let mut converged = false;
        while iterations < max_iter {
            iterations += 1;

            let best = order[0]; // audit:allow(PANIC02): order holds n + 1 >= 2 entries by construction
            let worst = order[n];
            let second_worst = order[n - 1];

            // Convergence: objective spread and simplex diameter. The
            // O(n²) diameter is only consulted once the spread is below
            // tolerance (`&&` short-circuit), so the common far-from-
            // converged iteration skips it entirely — a pure-function
            // elision with no observable effect.
            let spread = values[worst] - values[best];
            if spread.abs() < tol {
                let best_row = &simplex[best * n..(best + 1) * n];
                let diameter = simplex
                    // audit:allow(FAST01): row views; the max-fold is order-independent
                    .chunks_exact(n)
                    .map(|v| {
                        v.iter()
                            .zip(best_row)
                            .map(|(a, b)| (a - b).abs())
                            .fold(0.0, f64::max)
                    })
                    .fold(0.0, f64::max);
                if diameter < tol {
                    converged = true;
                    break;
                }
            }

            // Centroid of all but the worst vertex: rows below the worst,
            // then rows above it — the same row-ascending accumulation
            // order as a skip-one scan, without a per-row branch.
            for c in centroid.iter_mut() {
                *c = 0.0;
            }
            // audit:allow(FAST01): row-ascending centroid accumulation, order fixed
            for v in simplex[..worst * n].chunks_exact(n) {
                for (c, &x) in centroid.iter_mut().zip(v) {
                    *c += x;
                }
            }
            // audit:allow(FAST01): row-ascending centroid accumulation, order fixed
            for v in simplex[(worst + 1) * n..].chunks_exact(n) {
                for (c, &x) in centroid.iter_mut().zip(v) {
                    *c += x;
                }
            }
            for c in centroid.iter_mut() {
                *c /= n as f64;
            }

            let worst_row = &simplex[worst * n..(worst + 1) * n];
            for ((r, c), w) in reflect.iter_mut().zip(centroid.iter()).zip(worst_row) {
                *r = c + ALPHA * (c - w);
            }
            let f_reflect = f(reflect);

            if f_reflect < values[best] {
                // Try expanding further.
                for ((e, c), w) in expand.iter_mut().zip(centroid.iter()).zip(worst_row) {
                    *e = c + GAMMA * (c - w);
                }
                let f_expand = f(expand);
                if f_expand < f_reflect {
                    simplex[worst * n..(worst + 1) * n].copy_from_slice(expand);
                    values[worst] = f_expand;
                } else {
                    simplex[worst * n..(worst + 1) * n].copy_from_slice(reflect);
                    values[worst] = f_reflect;
                }
                reposition_last(order, values);
            } else if f_reflect < values[second_worst] {
                simplex[worst * n..(worst + 1) * n].copy_from_slice(reflect);
                values[worst] = f_reflect;
                reposition_last(order, values);
            } else {
                // Contract toward the centroid (reusing the expansion
                // buffer — the two candidates are never live together).
                for ((e, c), w) in expand.iter_mut().zip(centroid.iter()).zip(worst_row) {
                    *e = c + RHO * (w - c);
                }
                let f_contract = f(expand);
                if f_contract < values[worst] {
                    simplex[worst * n..(worst + 1) * n].copy_from_slice(expand);
                    values[worst] = f_contract;
                    reposition_last(order, values);
                } else {
                    // Shrink everything toward the best vertex, in place.
                    best_copy.copy_from_slice(&simplex[best * n..(best + 1) * n]);
                    // audit:allow(FAST01): row views into the flattened simplex matrix, not a reduction
                    for (i, v) in simplex.chunks_exact_mut(n).enumerate() {
                        if i != best {
                            for (x, &b) in v.iter_mut().zip(best_copy.iter()) {
                                *x = b + SIGMA * (*x - b);
                            }
                            values[i] = f(v);
                        }
                    }
                    rebuild_order(order, values);
                }
            }
        }

        let best = (0..=n)
            .min_by(|&a, &b| values[a].total_cmp(&values[b]))
            .unwrap_or(0);
        best_x.clear();
        best_x.extend_from_slice(&simplex[best * n..(best + 1) * n]);
        NelderMeadStats {
            value: values[best],
            iterations,
            converged,
        }
    }
}

/// Minimize `f` starting from `x0`, building the initial simplex by
/// stepping `initial_step` along each axis.
///
/// Stops when the simplex's objective spread and diameter fall below
/// `tol`, or after `max_iter` iterations.
///
/// Thin shim over [`NelderMeadScratch::minimize`] for one-shot callers;
/// hot paths should hold a scratch and call it directly.
///
/// # Panics
/// Panics if `x0` is empty, `initial_step` is not positive, `tol` is not
/// positive, or `f` returns NaN at the starting point.
pub fn nelder_mead(
    f: impl FnMut(&[f64]) -> f64,
    x0: &[f64],
    initial_step: f64,
    max_iter: usize,
    tol: f64,
) -> NelderMeadResult {
    let mut scratch = NelderMeadScratch::new();
    let stats = scratch.minimize(f, x0, initial_step, max_iter, tol);
    NelderMeadResult {
        x: scratch.best_x,
        value: stats.value,
        iterations: stats.iterations,
        converged: stats.converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        let r = nelder_mead(
            |x| x.iter().map(|v| (v - 3.0) * (v - 3.0)).sum(),
            &[0.0, 0.0, 0.0],
            1.0,
            2000,
            1e-10,
        );
        assert!(r.converged);
        for v in &r.x {
            assert!((v - 3.0).abs() < 1e-4, "x = {:?}", r.x);
        }
        assert!(r.value < 1e-8);
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let rosen = |x: &[f64]| {
            let (a, b) = (x[0], x[1]);
            (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
        };
        let r = nelder_mead(rosen, &[-1.2, 1.0], 0.5, 5000, 1e-12);
        assert!(
            (r.x[0] - 1.0).abs() < 1e-3 && (r.x[1] - 1.0).abs() < 1e-3,
            "x = {:?}",
            r.x
        );
    }

    #[test]
    fn handles_non_smooth_objective() {
        // |x| + |y| has a kink at the optimum; simplex should still land
        // close.
        let r = nelder_mead(
            |x| x.iter().map(|v| v.abs()).sum(),
            &[5.0, -7.0],
            1.0,
            2000,
            1e-10,
        );
        assert!(r.value < 1e-4, "value = {}", r.value);
    }

    #[test]
    fn one_dimensional_works() {
        let r = nelder_mead(|x| (x[0] + 2.0).powi(2) + 1.0, &[10.0], 1.0, 1000, 1e-12);
        assert!((r.x[0] + 2.0).abs() < 1e-4);
        assert!((r.value - 1.0).abs() < 1e-8);
    }

    #[test]
    fn respects_iteration_cap() {
        let r = nelder_mead(
            |x| x.iter().map(|v| v * v).sum(),
            &[100.0; 8],
            1.0,
            3,
            1e-16,
        );
        assert_eq!(r.iterations, 3);
        assert!(!r.converged);
    }

    #[test]
    fn gnp_style_objective_recovers_position() {
        // Place 5 anchors in 2-d; recover an unknown point from exact
        // distances by minimizing squared relative error — the exact
        // computation an NPS node performs.
        let anchors = [
            [0.0, 0.0],
            [100.0, 0.0],
            [0.0, 100.0],
            [100.0, 100.0],
            [50.0, 120.0],
        ];
        let truth = [37.0, 61.0];
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        let rtts: Vec<f64> = anchors.iter().map(|a| dist(a, &truth)).collect();
        let objective = |x: &[f64]| -> f64 {
            anchors
                .iter()
                .zip(&rtts)
                .map(|(a, &rtt)| {
                    let est = dist(a, x);
                    ((est - rtt) / rtt).powi(2)
                })
                .sum()
        };
        let r = nelder_mead(objective, &[0.0, 0.0], 10.0, 5000, 1e-14);
        assert!(
            (r.x[0] - truth[0]).abs() < 0.01 && (r.x[1] - truth[1]).abs() < 0.01,
            "recovered {:?}",
            r.x
        );
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        // One workspace reused across different objectives and
        // dimensionalities must reproduce each one-shot result exactly.
        let bowl = |x: &[f64]| -> f64 { x.iter().map(|v| (v - 3.0) * (v - 3.0)).sum() };
        let rosen = |x: &[f64]| {
            let (a, b) = (x[0], x[1]);
            (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
        };
        let mut scratch = NelderMeadScratch::new();
        for _ in 0..3 {
            let stats = scratch.minimize(rosen, &[-1.2, 1.0], 0.5, 5000, 1e-12);
            let fresh = nelder_mead(rosen, &[-1.2, 1.0], 0.5, 5000, 1e-12);
            assert_eq!(scratch.best_point(), &fresh.x[..]);
            assert_eq!(stats.value.to_bits(), fresh.value.to_bits());
            assert_eq!(stats.iterations, fresh.iterations);
            assert_eq!(stats.converged, fresh.converged);

            // Interleave a different dimensionality to exercise regrowth.
            let stats = scratch.minimize(bowl, &[0.0; 5], 1.0, 2000, 1e-10);
            let fresh = nelder_mead(bowl, &[0.0; 5], 1.0, 2000, 1e-10);
            assert_eq!(scratch.best_point(), &fresh.x[..]);
            assert_eq!(stats.value.to_bits(), fresh.value.to_bits());
        }
    }

    #[test]
    fn incremental_order_handles_ties() {
        // A flat objective makes every vertex value identical, so the
        // ordering is decided purely by the stable-sort index tie-break;
        // every iteration shrinks until the diameter converges.
        let r = nelder_mead(|_| 1.0, &[2.0, 4.0], 1.0, 100, 1e-6);
        assert_eq!(r.value, 1.0);
        assert!(r.converged, "flat objective converges by diameter");
        assert_eq!(r.x, vec![2.0, 4.0], "tie-break keeps the first vertex");
    }

    #[test]
    #[should_panic(expected = "initial_step must be positive")]
    fn rejects_zero_step() {
        nelder_mead(|x| x[0], &[0.0], 0.0, 10, 1e-6);
    }

    #[test]
    #[should_panic(expected = "zero-dimensional")]
    fn rejects_empty_start() {
        nelder_mead(|_| 0.0, &[], 1.0, 10, 1e-6);
    }
}
