//! Nelder–Mead downhill simplex minimization.
//!
//! NPS (like GNP before it) computes a node's coordinate by minimizing
//! the sum of squared relative errors against its reference points with
//! the downhill simplex method — derivative-free, robust to the
//! non-smooth objective that absolute values and RTT noise produce.
//!
//! Standard coefficients: reflection 1, expansion 2, contraction ½,
//! shrink ½.

/// Result of a Nelder–Mead run.
#[derive(Debug, Clone, PartialEq)]
pub struct NelderMeadResult {
    /// The best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Whether the simplex diameter converged below tolerance (as
    /// opposed to hitting the iteration cap).
    pub converged: bool,
}

const ALPHA: f64 = 1.0; // reflection
const GAMMA: f64 = 2.0; // expansion
const RHO: f64 = 0.5; // contraction
const SIGMA: f64 = 0.5; // shrink

/// Minimize `f` starting from `x0`, building the initial simplex by
/// stepping `initial_step` along each axis.
///
/// Stops when the simplex's objective spread and diameter fall below
/// `tol`, or after `max_iter` iterations.
///
/// # Panics
/// Panics if `x0` is empty, `initial_step` is not positive, `tol` is not
/// positive, or `f` returns NaN at the starting point.
pub fn nelder_mead(
    mut f: impl FnMut(&[f64]) -> f64,
    x0: &[f64],
    initial_step: f64,
    max_iter: usize,
    tol: f64,
) -> NelderMeadResult {
    assert!(!x0.is_empty(), "cannot optimize a zero-dimensional point");
    assert!(initial_step > 0.0, "initial_step must be positive");
    assert!(tol > 0.0, "tol must be positive");
    let n = x0.len();

    // Initial simplex: x0 plus one axis-step vertex per dimension.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    simplex.push(x0.to_vec());
    for d in 0..n {
        let mut v = x0.to_vec();
        v[d] += initial_step;
        simplex.push(v);
    }
    let mut values: Vec<f64> = simplex.iter().map(|v| f(v)).collect();
    assert!(
        !values[0].is_nan(),
        "objective is NaN at the starting point"
    );

    let mut iterations = 0;
    let mut converged = false;
    while iterations < max_iter {
        iterations += 1;

        // Order vertices by objective.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
        let best = order[0];
        let worst = order[n];
        let second_worst = order[n - 1];

        // Convergence: objective spread and simplex diameter.
        let spread = values[worst] - values[best];
        let diameter = simplex
            .iter()
            .map(|v| {
                v.iter()
                    .zip(&simplex[best])
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f64::max)
            })
            .fold(0.0, f64::max);
        if spread.abs() < tol && diameter < tol {
            converged = true;
            break;
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; n];
        for (i, v) in simplex.iter().enumerate() {
            if i != worst {
                for (c, &x) in centroid.iter_mut().zip(v) {
                    *c += x;
                }
            }
        }
        for c in &mut centroid {
            *c /= n as f64;
        }

        let reflect: Vec<f64> = centroid
            .iter()
            .zip(&simplex[worst])
            .map(|(c, w)| c + ALPHA * (c - w))
            .collect();
        let f_reflect = f(&reflect);

        if f_reflect < values[best] {
            // Try expanding further.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(&simplex[worst])
                .map(|(c, w)| c + GAMMA * (c - w))
                .collect();
            let f_expand = f(&expand);
            if f_expand < f_reflect {
                simplex[worst] = expand;
                values[worst] = f_expand;
            } else {
                simplex[worst] = reflect;
                values[worst] = f_reflect;
            }
        } else if f_reflect < values[second_worst] {
            simplex[worst] = reflect;
            values[worst] = f_reflect;
        } else {
            // Contract toward the centroid.
            let contract: Vec<f64> = centroid
                .iter()
                .zip(&simplex[worst])
                .map(|(c, w)| c + RHO * (w - c))
                .collect();
            let f_contract = f(&contract);
            if f_contract < values[worst] {
                simplex[worst] = contract;
                values[worst] = f_contract;
            } else {
                // Shrink everything toward the best vertex.
                let best_point = simplex[best].clone();
                for (i, v) in simplex.iter_mut().enumerate() {
                    if i != best {
                        for (x, &b) in v.iter_mut().zip(&best_point) {
                            *x = b + SIGMA * (*x - b);
                        }
                        values[i] = f(v);
                    }
                }
            }
        }
    }

    let best = (0..=n)
        .min_by(|&a, &b| values[a].total_cmp(&values[b]))
        .unwrap_or(0);
    NelderMeadResult {
        x: simplex[best].clone(),
        value: values[best],
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        let r = nelder_mead(
            |x| x.iter().map(|v| (v - 3.0) * (v - 3.0)).sum(),
            &[0.0, 0.0, 0.0],
            1.0,
            2000,
            1e-10,
        );
        assert!(r.converged);
        for v in &r.x {
            assert!((v - 3.0).abs() < 1e-4, "x = {:?}", r.x);
        }
        assert!(r.value < 1e-8);
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let rosen = |x: &[f64]| {
            let (a, b) = (x[0], x[1]);
            (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
        };
        let r = nelder_mead(rosen, &[-1.2, 1.0], 0.5, 5000, 1e-12);
        assert!(
            (r.x[0] - 1.0).abs() < 1e-3 && (r.x[1] - 1.0).abs() < 1e-3,
            "x = {:?}",
            r.x
        );
    }

    #[test]
    fn handles_non_smooth_objective() {
        // |x| + |y| has a kink at the optimum; simplex should still land
        // close.
        let r = nelder_mead(
            |x| x.iter().map(|v| v.abs()).sum(),
            &[5.0, -7.0],
            1.0,
            2000,
            1e-10,
        );
        assert!(r.value < 1e-4, "value = {}", r.value);
    }

    #[test]
    fn one_dimensional_works() {
        let r = nelder_mead(|x| (x[0] + 2.0).powi(2) + 1.0, &[10.0], 1.0, 1000, 1e-12);
        assert!((r.x[0] + 2.0).abs() < 1e-4);
        assert!((r.value - 1.0).abs() < 1e-8);
    }

    #[test]
    fn respects_iteration_cap() {
        let r = nelder_mead(
            |x| x.iter().map(|v| v * v).sum(),
            &[100.0; 8],
            1.0,
            3,
            1e-16,
        );
        assert_eq!(r.iterations, 3);
        assert!(!r.converged);
    }

    #[test]
    fn gnp_style_objective_recovers_position() {
        // Place 5 anchors in 2-d; recover an unknown point from exact
        // distances by minimizing squared relative error — the exact
        // computation an NPS node performs.
        let anchors = [
            [0.0, 0.0],
            [100.0, 0.0],
            [0.0, 100.0],
            [100.0, 100.0],
            [50.0, 120.0],
        ];
        let truth = [37.0, 61.0];
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        let rtts: Vec<f64> = anchors.iter().map(|a| dist(a, &truth)).collect();
        let objective = |x: &[f64]| -> f64 {
            anchors
                .iter()
                .zip(&rtts)
                .map(|(a, &rtt)| {
                    let est = dist(a, x);
                    ((est - rtt) / rtt).powi(2)
                })
                .sum()
        };
        let r = nelder_mead(objective, &[0.0, 0.0], 10.0, 5000, 1e-14);
        assert!(
            (r.x[0] - truth[0]).abs() < 0.01 && (r.x[1] - truth[1]).abs() < 0.01,
            "recovered {:?}",
            r.x
        );
    }

    #[test]
    #[should_panic(expected = "initial_step must be positive")]
    fn rejects_zero_step() {
        nelder_mead(|x| x[0], &[0.0], 0.0, 10, 1e-6);
    }

    #[test]
    #[should_panic(expected = "zero-dimensional")]
    fn rejects_empty_start() {
        nelder_mead(|_| 0.0, &[], 1.0, 10, 1e-6);
    }
}
