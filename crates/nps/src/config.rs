//! NPS tuning parameters.

use ices_coord::Space;
use serde::{Deserialize, Serialize};

/// Parameters of the NPS system and its built-in security test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NpsConfig {
    /// The geometric space (the paper: 8-d Euclidean).
    pub space: Space,
    /// Number of hierarchy layers (the paper: 4).
    pub layers: usize,
    /// Permanent landmarks in the top layer (the paper: 20).
    pub landmarks: usize,
    /// Fraction of each layer's nodes serving as reference points for the
    /// layer below (the paper: 20%).
    pub rp_fraction: f64,
    /// Reference points a node positions against per round.
    pub rps_per_node: usize,
    /// Minimum reference points needed before a round can reposition.
    pub min_rps: usize,
    /// Sensitivity constant of NPS's built-in malicious-landmark filter
    /// (the paper turns it on with sensitivity 4).
    pub sensitivity: f64,
    /// Whether the built-in filter is active.
    pub basic_security: bool,
    /// Simplex iteration cap per repositioning.
    pub solver_max_iter: usize,
    /// Random restarts per repositioning (GNP solves from several
    /// random initial points and keeps the best, because the squared
    /// relative-error objective has mirror-fold local minima).
    pub solver_restarts: usize,
    /// Simplex convergence tolerance.
    pub solver_tol: f64,
    /// Initial local error for a fresh node.
    pub initial_error: f64,
    /// EWMA smoothing for the local error estimate.
    pub error_smoothing: f64,
}

impl Default for NpsConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl NpsConfig {
    /// The configuration used throughout the paper's evaluation.
    pub fn paper_default() -> Self {
        Self {
            space: Space::nps_default(),
            layers: 4,
            landmarks: 20,
            rp_fraction: 0.2,
            rps_per_node: 20,
            min_rps: 9, // need dims+1 anchors to pin 8 dimensions
            sensitivity: 4.0,
            basic_security: true,
            solver_max_iter: 600,
            solver_restarts: 2,
            solver_tol: 1e-8,
            initial_error: 1.0,
            error_smoothing: 0.25,
        }
    }

    /// Validate invariants.
    ///
    /// # Panics
    /// Panics on inconsistent parameters.
    pub fn validate(&self) {
        assert!(self.layers >= 2, "NPS needs at least landmarks + one layer");
        assert!(
            self.landmarks > self.space.dims(),
            "need more landmarks than dimensions to pin the space"
        );
        assert!(
            self.rp_fraction > 0.0 && self.rp_fraction <= 1.0,
            "rp_fraction outside (0, 1]"
        );
        assert!(self.rps_per_node >= self.min_rps, "rps_per_node < min_rps");
        assert!(
            self.min_rps > self.space.dims(),
            "min_rps must exceed the dimensionality"
        );
        assert!(self.sensitivity > 1.0, "sensitivity must exceed 1");
        assert!(self.solver_max_iter > 0, "solver needs iterations");
        assert!(self.solver_restarts >= 1, "solver needs at least one start");
        assert!(self.solver_tol > 0.0, "solver_tol must be positive");
        assert!(self.initial_error > 0.0, "initial_error must be positive");
        assert!(
            self.error_smoothing > 0.0 && self.error_smoothing <= 1.0,
            "error_smoothing outside (0, 1]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_evaluation_setup() {
        let c = NpsConfig::paper_default();
        assert_eq!(c.space, Space::euclidean(8));
        assert_eq!(c.layers, 4);
        assert_eq!(c.landmarks, 20);
        assert_eq!(c.rp_fraction, 0.2);
        assert_eq!(c.sensitivity, 4.0);
        assert!(c.basic_security);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "more landmarks than dimensions")]
    fn rejects_underdetermined_landmarks() {
        let mut c = NpsConfig::paper_default();
        c.landmarks = 5;
        c.validate();
    }

    #[test]
    fn serde_roundtrip() {
        let c = NpsConfig::paper_default();
        let json = serde_json::to_string(&c).expect("serialize");
        let back: NpsConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(c, back);
    }
}
