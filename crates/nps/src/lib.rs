//! NPS: a hierarchical network positioning system.
//!
//! From-scratch implementation of NPS (Ng & Zhang, USENIX ATC 2004) in
//! the configuration the paper's evaluation uses: an 8-dimensional
//! Euclidean space, a 4-layer positioning hierarchy whose top layer holds
//! 20 permanent landmarks, 20% of the nodes of each layer serving as
//! reference points for the layer below, and NPS's built-in security
//! test with sensitivity 4.
//!
//! An NPS node positions itself by measuring RTTs to a set of reference
//! points from the layer above and minimizing the sum of squared relative
//! errors with a Nelder–Mead downhill simplex ([`simplex`]) — the solver
//! NPS inherited from GNP. Landmarks position against each other only
//! (distributed landmark coordinate computation), which is exactly the
//! property the paper's Surveyor concept generalizes.
//!
//! For the purposes of the SIGCOMM'07 paper's model, each RTT sample
//! toward a reference point is one *embedding step* (§2: "when the
//! embedding protocol requires that a node uses several peer nodes
//! simultaneously ... each peer node corresponds to a distinct embedding
//! step"). [`NpsNode`] therefore implements [`ices_coord::Embedding`] by
//! buffering accepted samples and repositioning when its round completes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
mod fast;
pub mod hierarchy;
pub mod node;
pub mod simplex;

pub use config::NpsConfig;
pub use hierarchy::{Hierarchy, Role};
pub use node::NpsNode;
pub use simplex::{nelder_mead, NelderMeadResult, NelderMeadScratch, NelderMeadStats};
