//! The NPS positioning hierarchy.
//!
//! NPS organizes nodes in layers: layer 0 holds the permanent landmarks;
//! every other node belongs to a layer `l ≥ 1` and positions itself
//! against *reference points* — nodes of layer `l − 1` that have been
//! promoted to serve the layer below. The paper's setup: 4 layers, 20
//! landmarks, 20% of each layer's nodes promoted to reference points.

use crate::config::NpsConfig;
use ices_stats::rng::stream_rng;
use ices_stats::sample::sample_indices;
use serde::{Deserialize, Serialize};
use ices_stats::streams;

/// A node's role in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// Permanent landmark (layer 0).
    Landmark,
    /// Positioned node also serving as a reference point for the layer
    /// below.
    ReferencePoint,
    /// Ordinary positioned node.
    Regular,
}

/// Layer/role assignment plus per-node reference-point sets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hierarchy {
    /// Layer per node (0 = landmarks).
    pub layer: Vec<usize>,
    /// Role per node.
    pub role: Vec<Role>,
    /// Reference points (node ids from the layer above) per node.
    /// Landmarks list the *other landmarks* here — they position against
    /// each other.
    pub reference_points: Vec<Vec<usize>>,
}

impl Hierarchy {
    /// Build a hierarchy over `n` nodes according to `config`,
    /// deterministically from `seed`.
    ///
    /// Landmarks are the first `config.landmarks` indices after a seeded
    /// shuffle; remaining nodes are spread uniformly over layers
    /// `1..config.layers`; within each layer, `rp_fraction` of the nodes
    /// are promoted to reference points. Each node's RP set is drawn from
    /// the serving nodes of the layer above (landmarks serve layer 1).
    ///
    /// # Panics
    /// Panics if `n` is too small to populate the hierarchy.
    pub fn build(n: usize, config: &NpsConfig, seed: u64) -> Self {
        config.validate();
        assert!(
            n > config.landmarks * 2,
            "need well more nodes ({n}) than landmarks ({})",
            config.landmarks
        );

        let mut rng = stream_rng(seed, streams::NPSH); // "NPSH"
        let order = sample_indices(&mut rng, n, n); // seeded permutation

        let mut layer = vec![0usize; n];
        let mut role = vec![Role::Regular; n];

        // Landmarks.
        for &id in &order[..config.landmarks] {
            layer[id] = 0;
            role[id] = Role::Landmark;
        }
        // Remaining nodes spread over layers 1..layers.
        let rest = &order[config.landmarks..];
        let lower_layers = config.layers - 1;
        for (i, &id) in rest.iter().enumerate() {
            layer[id] = 1 + (i * lower_layers) / rest.len();
        }

        // Promote rp_fraction of each non-final layer to reference
        // points — but never fewer than the layer below needs to be able
        // to position at all (min_rps), population permitting.
        for l in 1..config.layers - 1 {
            let members: Vec<usize> = (0..n).filter(|&i| layer[i] == l).collect();
            let promote = (((members.len() as f64) * config.rp_fraction).round() as usize)
                .max(config.min_rps)
                .min(members.len());
            let chosen = sample_indices(&mut rng, members.len(), promote);
            for idx in chosen {
                role[members[idx]] = Role::ReferencePoint;
            }
        }

        // Reference-point sets.
        let landmarks: Vec<usize> = (0..n).filter(|&i| role[i] == Role::Landmark).collect();
        let mut reference_points = vec![Vec::new(); n];
        for id in 0..n {
            if role[id] == Role::Landmark {
                // Landmarks position against the other landmarks.
                reference_points[id] = landmarks.iter().copied().filter(|&l| l != id).collect();
                continue;
            }
            let serving: Vec<usize> = if layer[id] == 1 {
                landmarks.clone()
            } else {
                (0..n)
                    .filter(|&i| layer[i] == layer[id] - 1 && role[i] == Role::ReferencePoint)
                    .collect()
            };
            assert!(
                !serving.is_empty(),
                "layer {} has no serving nodes above it",
                layer[id]
            );
            let take = config.rps_per_node.min(serving.len());
            let chosen = sample_indices(&mut rng, serving.len(), take);
            reference_points[id] = chosen.into_iter().map(|i| serving[i]).collect();
        }

        Self {
            layer,
            role,
            reference_points,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.layer.len()
    }

    /// Whether the hierarchy is empty.
    pub fn is_empty(&self) -> bool {
        self.layer.is_empty()
    }

    /// Ids of the permanent landmarks.
    pub fn landmarks(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.role[i] == Role::Landmark)
            .collect()
    }

    /// Ids of the reference points at a given layer.
    pub fn reference_points_at(&self, l: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.layer[i] == l && self.role[i] == Role::ReferencePoint)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize, seed: u64) -> (Hierarchy, NpsConfig) {
        let cfg = NpsConfig::paper_default();
        (Hierarchy::build(n, &cfg, seed), cfg)
    }

    #[test]
    fn landmark_count_matches_config() {
        let (h, cfg) = build(300, 1);
        assert_eq!(h.landmarks().len(), cfg.landmarks);
        for l in h.landmarks() {
            assert_eq!(h.layer[l], 0);
        }
    }

    #[test]
    fn every_non_landmark_is_in_layers_1_to_3() {
        let (h, cfg) = build(300, 2);
        for i in 0..h.len() {
            if h.role[i] != Role::Landmark {
                assert!((1..cfg.layers).contains(&h.layer[i]));
            }
        }
    }

    #[test]
    fn rp_fraction_respected_per_middle_layer() {
        let (h, cfg) = build(1000, 3);
        for l in 1..cfg.layers - 1 {
            let members = (0..h.len()).filter(|&i| h.layer[i] == l).count();
            let rps = h.reference_points_at(l).len();
            let expected = ((members as f64 * cfg.rp_fraction).round() as usize)
                .max(cfg.min_rps)
                .min(members);
            assert_eq!(rps, expected, "layer {l}: {rps}/{members}");
        }
    }

    #[test]
    fn small_populations_still_promote_enough_rps() {
        // At 120 nodes a 20% fraction of a ~33-node layer is below
        // min_rps; the floor must kick in or the layer below can never
        // complete a positioning round.
        let (h, cfg) = build(120, 19);
        for l in 1..cfg.layers - 1 {
            let rps = h.reference_points_at(l).len();
            assert!(
                rps >= cfg.min_rps,
                "layer {l} has {rps} reference points, below min_rps {}",
                cfg.min_rps
            );
        }
    }

    #[test]
    fn final_layer_has_no_reference_points() {
        let (h, cfg) = build(500, 4);
        assert!(h.reference_points_at(cfg.layers - 1).is_empty());
    }

    #[test]
    fn landmarks_use_each_other() {
        let (h, cfg) = build(300, 5);
        for l in h.landmarks() {
            let rps = &h.reference_points[l];
            assert_eq!(rps.len(), cfg.landmarks - 1);
            assert!(!rps.contains(&l), "a landmark must not reference itself");
            assert!(rps.iter().all(|&r| h.role[r] == Role::Landmark));
        }
    }

    #[test]
    fn rps_come_from_the_layer_above() {
        let (h, _) = build(600, 6);
        for i in 0..h.len() {
            if h.role[i] == Role::Landmark {
                continue;
            }
            for &rp in &h.reference_points[i] {
                assert_eq!(
                    h.layer[rp],
                    h.layer[i] - 1,
                    "node {i} (layer {}) references {rp} (layer {})",
                    h.layer[i],
                    h.layer[rp]
                );
                assert!(
                    h.role[rp] == Role::Landmark || h.role[rp] == Role::ReferencePoint,
                    "rp {rp} must be serving"
                );
            }
        }
    }

    #[test]
    fn layer_1_nodes_use_landmarks() {
        let (h, _) = build(400, 7);
        let landmarks = h.landmarks();
        for i in 0..h.len() {
            if h.layer[i] == 1 && h.role[i] != Role::Landmark {
                for &rp in &h.reference_points[i] {
                    assert!(landmarks.contains(&rp));
                }
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let (a, _) = build(300, 8);
        let (b, _) = build(300, 8);
        assert_eq!(a, b);
        let (c, _) = build(300, 9);
        assert_ne!(a, c);
    }

    #[test]
    fn every_positioned_node_has_enough_rps() {
        let (h, cfg) = build(800, 10);
        for i in 0..h.len() {
            assert!(
                h.reference_points[i].len() >= cfg.min_rps.min(cfg.landmarks - 1),
                "node {i} has only {} rps",
                h.reference_points[i].len()
            );
        }
    }

    #[test]
    #[should_panic(expected = "well more nodes")]
    fn rejects_tiny_populations() {
        Hierarchy::build(30, &NpsConfig::paper_default(), 1);
    }
}
