//! Fast-tier GNP objective (`ICES_FAST=1`).
//!
//! This module is the only place in the crate allowed to reorder or
//! refactor the objective's f64 arithmetic (the FAST01 audit rule
//! confines reassociation-bearing code to `fast` modules). Relative to
//! [`crate::node`]'s exact kernel it changes two things:
//!
//! * **fused normalize** — the per-sample relative error multiplies by
//!   a precomputed reciprocal RTT instead of dividing
//!   (`(est − rtt) · rtt⁻¹` vs `(est − rtt) / rtt`), which differs in
//!   the low bits but lets the loop pipeline without the divider;
//! * **4-lane reassociated reduction** — the final sum accumulates four
//!   independent partial sums and folds them pairwise, instead of the
//!   exact kernel's strict left-to-right sum.
//!
//! Outputs are deterministic for the tier (same inputs → same bits, at
//! any `ICES_THREADS` — the kernel is still called from one thread per
//! node and carries no cross-sample ordering dependence), but are NOT
//! bit-identical to the exact tier. The fast tier has its own golden
//! fingerprint below, and tier-2 gates it on statistical equivalence
//! (see DESIGN.md §14).

const LANES: usize = 4;

/// The GNP objective with reassociated arithmetic. Same signature as
/// the exact kernel plus the precomputed `inv_rtts` column (filled by
/// `solve()` only on the fast tier).
#[inline(always)]
#[allow(clippy::too_many_arguments)] // the exact kernel's columns plus the precomputed reciprocal column
pub(crate) fn flat_objective_fast(
    x: &[f64],
    rp_soa: &[f64],
    stride: usize,
    inv_rtts: &[f64],
    rp_heights: &[f64],
    rtts: &[f64],
    sq: &mut [f64],
    terms: &mut [f64],
) -> f64 {
    debug_assert!(!x.is_empty(), "candidate point must have dimensions");
    debug_assert_eq!(inv_rtts.len(), rtts.len());
    // The squared-distance accumulation is unchanged from the exact
    // kernel: it is lane-independent per sample, so there is nothing to
    // reassociate.
    let mut rows = x.iter().zip(rp_soa.chunks_exact(stride));
    if let Some((&xd, row)) = rows.next() {
        for (q, &p) in sq.iter_mut().zip(row) {
            let diff = xd - p;
            *q = diff * diff;
        }
    }
    for (&xd, row) in rows {
        for (q, &p) in sq.iter_mut().zip(row) {
            let diff = xd - p;
            *q += diff * diff;
        }
    }
    for ((((t, &q), &height), &rtt), &inv_rtt) in terms
        .iter_mut()
        .zip(sq.iter())
        .zip(rp_heights)
        .zip(rtts)
        .zip(inv_rtts)
    {
        debug_assert!(
            rtt > 0.0,
            "non-positive RTT {rtt} reached the objective kernel"
        );
        let est = q.sqrt() + height;
        let rel = (est - rtt) * inv_rtt;
        *t = rel * rel;
    }
    // 4-lane reassociated reduction of the per-sample terms.
    let mut lanes = [0.0f64; LANES];
    let chunks = terms.chunks_exact(LANES);
    let remainder = chunks.remainder();
    for c in chunks {
        for (lane, &term) in lanes.iter_mut().zip(c) {
            *lane += term;
        }
    }
    let [l0, l1, l2, l3] = lanes;
    let mut total = (l0 + l1) + (l2 + l3);
    for &t in remainder {
        total += t;
    }
    total
}

/// Fill the reciprocal-RTT column the fast kernel multiplies by.
pub(crate) fn fill_inv_rtts(rtts: &[f64], inv_rtts: &mut Vec<f64>) {
    inv_rtts.clear();
    inv_rtts.extend(rtts.iter().map(|&rtt| 1.0 / rtt));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::flat_objective;

    /// A deterministic reference set: `n` samples in `dims` dimensions
    /// with irrational-ish values so low-bit differences surface.
    fn fixture(n: usize, dims: usize) -> (Vec<f64>, usize, Vec<f64>, Vec<f64>, Vec<f64>) {
        let stride = (n + 7) & !7;
        let mut rp_soa = vec![0.0; dims * stride];
        for d in 0..dims {
            for s in 0..n {
                rp_soa[d * stride + s] =
                    ((d * 31 + s * 17) as f64).sin() * 90.0 + 0.137 * s as f64;
            }
        }
        let rp_heights: Vec<f64> = (0..n).map(|s| 0.05 * (s % 5) as f64).collect();
        let rtts: Vec<f64> = (0..n)
            .map(|s| 35.0 + ((s * 13) as f64).cos().abs() * 120.0)
            .collect();
        let x: Vec<f64> = (0..dims).map(|d| 10.0 + 3.7 * d as f64).collect();
        (rp_soa, stride, rp_heights, rtts, x)
    }

    #[test]
    fn fast_objective_tracks_exact_within_tolerance() {
        for n in [1, 3, 4, 7, 8, 19, 64] {
            let (rp_soa, stride, rp_heights, rtts, x) = fixture(n, 8);
            let mut inv_rtts = Vec::new();
            fill_inv_rtts(&rtts, &mut inv_rtts);
            let mut sq = vec![0.0; n];
            let mut terms = vec![0.0; n];
            let exact = flat_objective(&x, &rp_soa, stride, &rp_heights, &rtts, &mut sq, &mut terms);
            let mut sq_f = vec![0.0; n];
            let mut terms_f = vec![0.0; n];
            let fast = flat_objective_fast(
                &x,
                &rp_soa,
                stride,
                &inv_rtts,
                &rp_heights,
                &rtts,
                &mut sq_f,
                &mut terms_f,
            );
            let rel = ((fast - exact) / exact).abs();
            assert!(
                rel < 1e-12,
                "n={n}: fast {fast} vs exact {exact} (rel {rel})"
            );
        }
    }

    /// Golden fingerprint of the fast-tier objective bits: the tier may
    /// differ from exact, but must never drift silently from itself.
    #[test]
    fn fast_objective_fingerprint_is_stable() {
        let mut fingerprint = 0u64;
        for n in [5, 16, 33] {
            let (rp_soa, stride, rp_heights, rtts, x) = fixture(n, 8);
            let mut inv_rtts = Vec::new();
            fill_inv_rtts(&rtts, &mut inv_rtts);
            let mut sq = vec![0.0; n];
            let mut terms = vec![0.0; n];
            let value = flat_objective_fast(
                &x,
                &rp_soa,
                stride,
                &inv_rtts,
                &rp_heights,
                &rtts,
                &mut sq,
                &mut terms,
            );
            fingerprint =
                fingerprint.rotate_left(13) ^ value.to_bits().wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        assert_eq!(
            fingerprint, 0xe824_2dfa_dd8a_071b,
            "fast-tier objective fingerprint changed: got {fingerprint:#018x}; \
             if the reassociation deliberately changed, re-record this constant"
        );
    }

    #[test]
    fn fast_solver_path_is_deterministic_per_tier() {
        let (rp_soa, stride, rp_heights, rtts, x) = fixture(23, 8);
        let mut inv_rtts = Vec::new();
        fill_inv_rtts(&rtts, &mut inv_rtts);
        let eval = || {
            let mut sq = vec![0.0; 23];
            let mut terms = vec![0.0; 23];
            flat_objective_fast(
                &x,
                &rp_soa,
                stride,
                &inv_rtts,
                &rp_heights,
                &rtts,
                &mut sq,
                &mut terms,
            )
            .to_bits()
        };
        assert_eq!(eval(), eval());
    }
}
