//! A single NPS node.

use crate::config::NpsConfig;
use crate::simplex::NelderMeadScratch;
use ices_coord::{relative_error, Coordinate, Embedding, PeerSample, StepOutcome};
use ices_stats::ewma::Ewma;
use ices_stats::rng::SimRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use ices_stats::streams;

/// Summary of one completed positioning round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundSummary {
    /// Residual objective (mean squared relative fit error) after the
    /// round's repositioning.
    pub fit_error: f64,
    /// Reference points discarded by NPS's built-in security filter.
    pub discarded: Vec<usize>,
    /// Samples used in the final solve.
    pub samples_used: usize,
}

/// Per-node NPS state.
///
/// The node buffers accepted reference-point samples during a round
/// ([`Embedding::apply_step`] stores a sample and reports `moved:
/// false`); [`NpsNode::finish_round`] runs the built-in security filter
/// and the downhill-simplex solve, actually moving the coordinate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NpsNode {
    id: usize,
    config: NpsConfig,
    coordinate: Coordinate,
    local_error: Ewma,
    round: Vec<PeerSample>,
    steps: u64,
    rounds: u64,
    rng: SimRng,
    /// Solver workspace reused across restarts and rounds. Pure scratch:
    /// not part of the node's semantic state — it serializes as `null`
    /// and deserialized nodes start with a cold workspace.
    scratch: SolveScratch,
}

/// Flattened per-solve inputs plus the Nelder–Mead workspace.
///
/// `solve()` copies the round's reference-point coordinates and RTTs
/// into these flat buffers once, then the objective kernel streams over
/// plain `&[f64]` slices — no `Coordinate` construction per evaluation.
#[derive(Debug, Clone, Default)]
struct SolveScratch {
    nm: NelderMeadScratch,
    /// Reference-point positions, **dimension-major** `dims × samples`
    /// (structure-of-arrays): per-dimension rows keep the kernel's inner
    /// loops lane-independent, so they vectorize without any
    /// reassociation.
    rp_soa: Vec<f64>,
    /// Reference-point coordinate heights, one per sample.
    rp_heights: Vec<f64>,
    /// Measured RTTs, one per sample.
    rtts: Vec<f64>,
    /// Reciprocal RTTs for the fast tier's fused normalize (filled only
    /// when `ICES_FAST=1`; empty on the exact tier).
    inv_rtts: Vec<f64>,
    /// RTTs again, sorted for the median.
    sorted_rtts: Vec<f64>,
    /// Per-sample squared-distance accumulators (kernel buffer).
    sq: Vec<f64>,
    /// Per-sample squared relative errors (kernel buffer).
    terms: Vec<f64>,
    /// Starting point of the current restart.
    start: Vec<f64>,
    /// Best solution across restarts.
    best_x: Vec<f64>,
}

// The vendored serde derive has no `#[serde(skip)]`, so the workspace
// opts out by hand: it encodes as `null` and always deserializes cold.
impl Serialize for SolveScratch {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl Deserialize for SolveScratch {
    fn from_value(_: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Self::default())
    }
}

impl NpsNode {
    /// Create a node with a small random initial coordinate (breaking the
    /// all-at-origin symmetry that the simplex solver cannot).
    pub fn new(id: usize, config: NpsConfig, seed: u64) -> Self {
        config.validate();
        let mut rng = SimRng::from_stream(seed, id as u64, streams::NPSN); // "NPSN"
        let coordinate = Coordinate::random(config.space, 1.0, &mut rng);
        Self {
            id,
            config,
            coordinate,
            local_error: Ewma::new(config.error_smoothing, config.initial_error),
            round: Vec::new(),
            steps: 0,
            rounds: 0,
            rng,
            scratch: SolveScratch::default(),
        }
    }

    /// Node identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Configuration in force.
    pub fn config(&self) -> &NpsConfig {
        &self.config
    }

    /// Embedding steps accepted so far (across all rounds).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Positioning rounds completed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Samples buffered in the current round.
    pub fn pending_samples(&self) -> usize {
        self.round.len()
    }

    /// Forget all positioning state and rejoin (§3.2's second embedding).
    pub fn reset(&mut self) {
        self.coordinate = Coordinate::random(self.config.space, 1.0, &mut self.rng);
        self.local_error = Ewma::new(self.config.error_smoothing, self.config.initial_error);
        self.round.clear();
        self.steps = 0;
        self.rounds = 0;
    }

    /// Complete the current round: run NPS's built-in security filter,
    /// reposition via downhill simplex, update the local error, and clear
    /// the buffer.
    ///
    /// Returns `None` — leaving the coordinate untouched — when fewer
    /// than `config.min_rps` samples were accepted this round (the
    /// detection protocol may have vetoed the rest).
    pub fn finish_round(&mut self) -> Option<RoundSummary> {
        if self.round.len() < self.config.min_rps {
            self.round.clear();
            return None;
        }
        let mut samples = std::mem::take(&mut self.round);
        let mut discarded = Vec::new();

        if self.config.basic_security {
            // NPS's built-in landmark filter, faithfully primitive: after
            // a trial solve, discard only the SINGLE worst-fitting
            // reference point, and only if its error exceeds
            // `sensitivity ×` the median fit error. (One elimination per
            // round is exactly why the paper's reference [11] defeats it
            // with a colluding minority — the SIGCOMM'07 paper calls the
            // mechanism "too primitive".)
            if samples.len() > self.config.min_rps {
                let trial = self.solve(&samples);
                let errors: Vec<f64> = samples.iter().map(|s| fit_error(&trial, s)).collect();
                let mut sorted = errors.clone();
                sorted.sort_by(f64::total_cmp);
                let median = sorted[sorted.len() / 2].max(1e-3);
                let threshold = self.config.sensitivity * median;
                let worst = errors
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                if errors.get(worst).copied().unwrap_or(0.0) > threshold {
                    let dropped = samples.remove(worst);
                    discarded.push(dropped.peer);
                }
            }
        }

        let solution = self.solve(&samples);
        let fit = mean_sq_rel_error(&solution, &samples);
        self.coordinate = solution;
        self.rounds += 1;
        Some(RoundSummary {
            fit_error: fit,
            discarded,
            samples_used: samples.len(),
        })
    }

    /// Minimize the GNP objective — the sum of squared relative errors
    /// against the sampled reference points. Solves from the current
    /// coordinate plus `solver_restarts − 1` random starting points (the
    /// GNP recipe: the objective has mirror-fold local minima) and keeps
    /// the best.
    fn solve(&mut self, samples: &[PeerSample]) -> Coordinate {
        debug_assert!(!samples.is_empty());
        let dims = self.config.space.dims();
        // Numeric tier, resolved once per solve. On the exact tier every
        // objective evaluation is bit-for-bit the per-sample scalar op
        // order; `ICES_FAST=1` swaps in the reassociated kernel from
        // `crate::fast`.
        // audit:allow(FAST01): the one sanctioned dispatch point into the fast objective; the kernel itself lives in the fast module
        let fast = ices_par::fast_enabled();
        let scratch = &mut self.scratch;

        // Flatten the reference set once per solve (transposed to
        // dimension-major); the objective kernel then streams over plain
        // slices. Rows are padded to a whole number of cache lines (the
        // pad lanes are never read) so each dimension row starts aligned.
        let ns = samples.len();
        let stride = (ns + 7) & !7;
        scratch.rp_soa.clear();
        scratch.rp_soa.resize(dims * stride, 0.0);
        scratch.rp_heights.clear();
        scratch.rtts.clear();
        for (s_idx, s) in samples.iter().enumerate() {
            for (d, &p) in s.peer_coord.position().iter().enumerate() {
                scratch.rp_soa[d * stride + s_idx] = p;
            }
            scratch.rp_heights.push(s.peer_coord.height());
            scratch.rtts.push(s.rtt_ms);
        }
        scratch.sq.clear();
        scratch.sq.resize(ns, 0.0);
        scratch.terms.clear();
        scratch.terms.resize(ns, 0.0);
        scratch.sorted_rtts.clear();
        scratch.sorted_rtts.extend_from_slice(&scratch.rtts);
        scratch.sorted_rtts.sort_by(f64::total_cmp);
        let median_rtt = scratch.sorted_rtts[scratch.sorted_rtts.len() / 2];
        let step = (median_rtt / 4.0).max(1.0);
        if fast {
            crate::fast::fill_inv_rtts(&scratch.rtts, &mut scratch.inv_rtts);
        } else {
            scratch.inv_rtts.clear();
        }

        let SolveScratch {
            nm,
            rp_soa,
            rp_heights,
            rtts,
            inv_rtts,
            sq,
            terms,
            start,
            best_x,
            ..
        } = scratch;
        // Bind plain slices once so the objective closure captures flat
        // pointers, not `&mut Vec` indirections.
        let rp_soa = &rp_soa[..];
        let rp_heights = &rp_heights[..];
        let rtts = &rtts[..];
        let inv_rtts = &inv_rtts[..];
        let sq = &mut sq[..];
        let terms = &mut terms[..];
        let mut best: Option<f64> = None;
        for restart in 0..self.config.solver_restarts {
            start.clear();
            if restart == 0 {
                start.extend_from_slice(self.coordinate.position());
            } else {
                // A random point at the network's scale.
                for _ in 0..dims {
                    start.push((self.rng.random::<f64>() * 2.0 - 1.0) * median_rtt);
                }
            }
            let stats = nm.minimize(
                |x| {
                    if fast {
                        crate::fast::flat_objective_fast(
                            x, rp_soa, stride, inv_rtts, rp_heights, rtts, sq, terms,
                        )
                    } else {
                        flat_objective(x, rp_soa, stride, rp_heights, rtts, sq, terms)
                    }
                },
                start,
                step,
                self.config.solver_max_iter,
                self.config.solver_tol,
            );
            if best.map(|v| stats.value < v).unwrap_or(true) {
                best = Some(stats.value);
                best_x.clear();
                best_x.extend_from_slice(nm.best_point());
            }
        }
        // solver_restarts >= 1 (config invariant), so best_x was written
        // by at least one restart.
        Coordinate::euclidean(best_x.clone())
    }
}

/// The GNP objective over flat slices: the sum of squared relative
/// errors of candidate `x` against every reference point.
///
/// Bit-for-bit identical to evaluating `Coordinate::euclidean(x)` and
/// `Coordinate::distance` per sample, but laid out for vectorization:
/// every loop except the final reduction is lane-independent across
/// samples, so the compiler may pack lanes freely — each lane executes
/// the exact scalar IEEE op sequence, no reassociation required.
///
/// Per sample the operation order is preserved exactly: the
/// squared-difference accumulator advances in component order from 0.0
/// (as `vector::distance`'s `sum()` does); the candidate's height is
/// zero, so `sqrt(sq) + peer_height` reproduces
/// `dist + self.height + other.height` (`d + 0.0` is exact for the
/// non-negative `d` a square root returns); and the final sum adds the
/// per-sample terms in sample order from 0.0.
#[inline(always)]
pub(crate) fn flat_objective(
    x: &[f64],
    rp_soa: &[f64],
    stride: usize,
    rp_heights: &[f64],
    rtts: &[f64],
    sq: &mut [f64],
    terms: &mut [f64],
) -> f64 {
    debug_assert!(!x.is_empty(), "candidate point must have dimensions");
    // sq[s] += (x_d − p_{s,d})² in dimension order — per-sample order
    // identical to the scalar distance, lanes independent across `s`.
    // Rows are `stride`-spaced (cache-line padded); the pad is dead.
    // The first dimension initializes the accumulators outright: a
    // square is never −0.0, so `0.0 + diff²` is bitwise `diff²` and the
    // explicit zeroing pass can be skipped.
    // audit:allow(FAST01): row walk over the SoA matrix; per-sample op order matches the scalar distance, no reduction reassociated
    let mut rows = x.iter().zip(rp_soa.chunks_exact(stride));
    if let Some((&xd, row)) = rows.next() {
        for (q, &p) in sq.iter_mut().zip(row) {
            let diff = xd - p;
            *q = diff * diff;
        }
    }
    for (&xd, row) in rows {
        for (q, &p) in sq.iter_mut().zip(row) {
            let diff = xd - p;
            *q += diff * diff;
        }
    }
    for (((t, &q), &height), &rtt) in
        terms.iter_mut().zip(sq.iter()).zip(rp_heights).zip(rtts)
    {
        debug_assert!(
            rtt > 0.0,
            "non-positive RTT {rtt} reached the objective kernel"
        );
        let est = q.sqrt() + height;
        let rel = (est - rtt) / rtt;
        *t = rel * rel;
    }
    let mut total = 0.0;
    for &t in terms.iter() {
        total += t;
    }
    total
}

fn fit_error(coord: &Coordinate, sample: &PeerSample) -> f64 {
    relative_error(coord, &sample.peer_coord, sample.rtt_ms)
}

fn mean_sq_rel_error(coord: &Coordinate, samples: &[PeerSample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples
        .iter()
        .map(|s| fit_error(coord, s).powi(2))
        .sum::<f64>()
        / samples.len() as f64
}

impl Embedding for NpsNode {
    fn coordinate(&self) -> &Coordinate {
        &self.coordinate
    }

    fn local_error(&self) -> f64 {
        if self.local_error.is_initialized() {
            self.local_error.value()
        } else {
            self.config.initial_error
        }
    }

    fn apply_step(&mut self, sample: &PeerSample) -> StepOutcome {
        // A zero, negative, or non-finite RTT is a broken measurement:
        // the GNP objective divides by it, so one such sample would feed
        // NaN/Inf into every evaluation of the round's solve. Refuse to
        // buffer it — the node observes nothing and the coordinate
        // holds.
        if !(sample.rtt_ms.is_finite() && sample.rtt_ms > 0.0) {
            return StepOutcome {
                relative_error: f64::INFINITY,
                local_error: self.local_error(),
                moved: false,
            };
        }
        let d = relative_error(&self.coordinate, &sample.peer_coord, sample.rtt_ms);
        self.local_error.update(d);
        self.round.push(sample.clone());
        self.steps += 1;
        StepOutcome {
            relative_error: d,
            local_error: self.local_error(),
            moved: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ices_coord::Space;

    fn small_config() -> NpsConfig {
        // 2-d space so tests are cheap and geometric intuition holds.
        NpsConfig {
            space: Space::euclidean(2),
            landmarks: 6,
            rps_per_node: 6,
            min_rps: 3,
            ..NpsConfig::paper_default()
        }
    }

    /// Anchors on a ring plus the true distances toward `truth`.
    fn anchors_and_samples(truth: &[f64]) -> Vec<PeerSample> {
        let anchors = [
            vec![0.0, 0.0],
            vec![100.0, 0.0],
            vec![0.0, 100.0],
            vec![100.0, 100.0],
            vec![50.0, -40.0],
            vec![-40.0, 50.0],
        ];
        anchors
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let d = ((a[0] - truth[0]).powi(2) + (a[1] - truth[1]).powi(2)).sqrt();
                PeerSample {
                    peer: i,
                    peer_coord: Coordinate::euclidean(a.clone()),
                    peer_error: 0.1,
                    rtt_ms: d.max(1.0),
                }
            })
            .collect()
    }

    #[test]
    fn steps_buffer_without_moving() {
        let mut n = NpsNode::new(0, small_config(), 1);
        let before = n.coordinate().clone();
        let samples = anchors_and_samples(&[30.0, 40.0]);
        for s in &samples[..3] {
            let out = n.apply_step(s);
            assert!(!out.moved);
        }
        assert_eq!(n.pending_samples(), 3);
        assert_eq!(n.coordinate(), &before);
    }

    #[test]
    fn non_positive_rtt_samples_are_rejected() {
        let mut n = NpsNode::new(0, small_config(), 9);
        let before_err = n.local_error();
        let mut bad = anchors_and_samples(&[30.0, 40.0]).remove(0);
        for rtt in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            bad.rtt_ms = rtt;
            let out = n.apply_step(&bad);
            assert!(!out.moved);
            assert!(out.relative_error.is_infinite());
        }
        assert_eq!(n.pending_samples(), 0, "broken samples must not buffer");
        assert_eq!(n.steps(), 0);
        assert_eq!(n.local_error(), before_err, "EWMA must not absorb garbage");
    }

    #[test]
    fn finish_round_recovers_position() {
        let mut n = NpsNode::new(0, small_config(), 2);
        for s in anchors_and_samples(&[30.0, 40.0]) {
            n.apply_step(&s);
        }
        let summary = n.finish_round().expect("round should complete");
        assert!(summary.fit_error < 1e-4, "fit = {}", summary.fit_error);
        assert!(summary.discarded.is_empty());
        let pos = n.coordinate().position();
        assert!(
            (pos[0] - 30.0).abs() < 1.0 && (pos[1] - 40.0).abs() < 1.0,
            "recovered {pos:?}"
        );
        assert_eq!(n.rounds(), 1);
        assert_eq!(n.pending_samples(), 0);
    }

    #[test]
    fn fast_tier_solve_recovers_position_too() {
        // The reassociated kernel must still position correctly — and
        // deterministically — under ICES_FAST=1.
        let run = || {
            ices_par::with_fast(true, || {
                let mut n = NpsNode::new(0, small_config(), 2);
                for s in anchors_and_samples(&[30.0, 40.0]) {
                    n.apply_step(&s);
                }
                let summary = n.finish_round().expect("round should complete");
                assert!(summary.fit_error < 1e-4, "fit = {}", summary.fit_error);
                n.coordinate().clone()
            })
        };
        let pos = run();
        assert!(
            (pos.position()[0] - 30.0).abs() < 1.0 && (pos.position()[1] - 40.0).abs() < 1.0,
            "recovered {pos:?}"
        );
        assert_eq!(pos, run(), "fast tier must be deterministic");
    }

    #[test]
    fn too_few_samples_skip_the_round() {
        let mut n = NpsNode::new(0, small_config(), 3);
        let before = n.coordinate().clone();
        let samples = anchors_and_samples(&[30.0, 40.0]);
        n.apply_step(&samples[0]);
        n.apply_step(&samples[1]);
        assert!(n.finish_round().is_none());
        assert_eq!(n.coordinate(), &before);
        assert_eq!(n.rounds(), 0);
        assert_eq!(n.pending_samples(), 0, "buffer must clear regardless");
    }

    #[test]
    fn basic_security_discards_lying_reference_point() {
        let mut cfg = small_config();
        cfg.sensitivity = 4.0;
        cfg.basic_security = true;
        let mut n = NpsNode::new(0, cfg, 4);
        let mut samples = anchors_and_samples(&[30.0, 40.0]);
        // One RP lies wildly about its coordinate: claims to be far away
        // while the RTT says close.
        samples[5].peer_coord = Coordinate::euclidean(vec![5000.0, 5000.0]);
        for s in &samples {
            n.apply_step(s);
        }
        let summary = n.finish_round().expect("round completes");
        assert_eq!(summary.discarded, vec![5], "the liar should be dropped");
        let pos = n.coordinate().position();
        assert!(
            (pos[0] - 30.0).abs() < 2.0 && (pos[1] - 40.0).abs() < 2.0,
            "position survived the attack: {pos:?}"
        );
    }

    #[test]
    fn security_off_lets_the_lie_through() {
        let mut cfg = small_config();
        cfg.basic_security = false;
        let mut n = NpsNode::new(0, cfg, 5);
        let mut samples = anchors_and_samples(&[30.0, 40.0]);
        samples[5].peer_coord = Coordinate::euclidean(vec![5000.0, 5000.0]);
        for s in &samples {
            n.apply_step(s);
        }
        let summary = n.finish_round().expect("round completes");
        assert!(summary.discarded.is_empty());
        assert!(
            summary.fit_error > 1e-2,
            "the lie should hurt the fit: {}",
            summary.fit_error
        );
    }

    #[test]
    fn local_error_decreases_on_good_rounds() {
        let mut n = NpsNode::new(0, small_config(), 6);
        assert_eq!(n.local_error(), 1.0);
        for _ in 0..5 {
            for s in anchors_and_samples(&[30.0, 40.0]) {
                n.apply_step(&s);
            }
            n.finish_round();
        }
        assert!(n.local_error() < 0.2, "e_l = {}", n.local_error());
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut n = NpsNode::new(0, small_config(), 7);
        for s in anchors_and_samples(&[30.0, 40.0]) {
            n.apply_step(&s);
        }
        n.finish_round();
        n.reset();
        assert_eq!(n.rounds(), 0);
        assert_eq!(n.steps(), 0);
        assert_eq!(n.local_error(), 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut n = NpsNode::new(3, small_config(), 11);
            for s in anchors_and_samples(&[70.0, -20.0]) {
                n.apply_step(&s);
            }
            n.finish_round();
            n.coordinate().clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn eight_dimensional_solve_works() {
        // The paper's actual 8-d configuration, landmarks at distinct
        // random-ish corners.
        let cfg = NpsConfig::paper_default();
        let mut n = NpsNode::new(0, cfg, 8);
        let truth: Vec<f64> = (0..8).map(|i| 10.0 * i as f64).collect();
        let samples: Vec<PeerSample> = (0..20)
            .map(|k| {
                let pos: Vec<f64> = (0..8)
                    .map(|d| {
                        if (k + d) % 3 == 0 {
                            100.0
                        } else {
                            -30.0 * (d as f64 + 1.0) / (k as f64 + 1.0)
                        }
                    })
                    .collect();
                let dist = pos
                    .iter()
                    .zip(&truth)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                PeerSample {
                    peer: k,
                    peer_coord: Coordinate::euclidean(pos),
                    peer_error: 0.1,
                    rtt_ms: dist.max(1.0),
                }
            })
            .collect();
        for s in &samples {
            n.apply_step(s);
        }
        let summary = n.finish_round().expect("round completes");
        assert!(
            summary.fit_error < 0.05,
            "8-d fit error = {}",
            summary.fit_error
        );
    }
}
