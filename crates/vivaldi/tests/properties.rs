//! Property-based tests of Vivaldi's update invariants over randomized
//! peer streams.

use ices_coord::{Coordinate, Embedding, PeerSample};
use ices_vivaldi::{VivaldiConfig, VivaldiNode};
use proptest::prelude::*;

fn sample_strategy() -> impl Strategy<Value = PeerSample> {
    (
        0usize..64,
        proptest::collection::vec(-300f64..300.0, 2),
        0f64..60.0,
        0f64..1.0,
        1f64..500.0,
    )
        .prop_map(|(peer, pos, h, err, rtt)| PeerSample {
            peer,
            peer_coord: Coordinate::new(pos, h),
            peer_error: err,
            rtt_ms: rtt,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn state_stays_finite_under_arbitrary_streams(
        samples in proptest::collection::vec(sample_strategy(), 1..120),
        seed in 0u64..500,
    ) {
        let cfg = VivaldiConfig::paper_default();
        let mut node = VivaldiNode::new(0, cfg, seed);
        for s in &samples {
            let out = node.apply_step(s);
            prop_assert!(out.relative_error.is_finite());
            prop_assert!(out.relative_error >= 0.0);
            prop_assert!(node.coordinate().is_finite());
            prop_assert!(node.coordinate().height() >= cfg.min_height_ms);
            prop_assert!(node.local_error().is_finite());
            prop_assert!(node.local_error() >= 0.0);
        }
        prop_assert_eq!(node.steps(), samples.len() as u64);
    }

    #[test]
    fn local_error_stays_within_observed_hull(
        samples in proptest::collection::vec(sample_strategy(), 1..60),
        seed in 0u64..500,
    ) {
        // e_l is a weighted moving average of observed relative errors,
        // so it can never exceed the largest error seen (or the initial
        // value before the first sample).
        let cfg = VivaldiConfig::paper_default();
        let mut node = VivaldiNode::new(0, cfg, seed);
        let mut max_seen = 0.0f64;
        for s in &samples {
            let out = node.apply_step(s);
            max_seen = max_seen.max(out.relative_error);
            prop_assert!(
                node.local_error() <= max_seen.max(cfg.initial_error) + 1e-9,
                "e_l {} exceeded the observed hull {}",
                node.local_error(),
                max_seen
            );
        }
    }

    #[test]
    fn reset_is_equivalent_to_fresh_node(
        samples in proptest::collection::vec(sample_strategy(), 1..40),
        seed in 0u64..500,
    ) {
        let cfg = VivaldiConfig::paper_default();
        let mut used = VivaldiNode::new(3, cfg, seed);
        for s in &samples {
            used.apply_step(s);
        }
        used.reset();
        let fresh = VivaldiNode::new(3, cfg, seed);
        prop_assert_eq!(used.coordinate(), fresh.coordinate());
        prop_assert_eq!(used.local_error(), fresh.local_error());
        prop_assert_eq!(used.steps(), 0);
    }

    #[test]
    fn a_perfect_peer_stream_converges_the_estimate(
        rtt in 20f64..300.0,
        seed in 0u64..100,
    ) {
        // Repeated steps against one fixed peer with a constant RTT must
        // drive the estimated distance toward that RTT.
        let cfg = VivaldiConfig::paper_default();
        let mut node = VivaldiNode::new(0, cfg, seed);
        let peer = Coordinate::new(vec![40.0, -25.0], 3.0);
        for _ in 0..400 {
            node.apply_step(&PeerSample {
                peer: 1,
                peer_coord: peer.clone(),
                peer_error: 0.25,
                rtt_ms: rtt,
            });
        }
        let est = node.coordinate().distance(&peer);
        prop_assert!(
            (est - rtt).abs() / rtt < 0.05,
            "estimate {est} should approach rtt {rtt}"
        );
    }
}
