//! A single Vivaldi node.

use crate::config::VivaldiConfig;
use ices_coord::{relative_error, Coordinate, Embedding, PeerSample, StepOutcome};
use ices_stats::ewma::WeightedEwma;
use ices_stats::rng::SimRng;
use serde::{Deserialize, Serialize};
use ices_stats::streams;

/// Per-node Vivaldi state: coordinate, local error estimate, and a private
/// random stream (used only to break symmetry between colocated nodes).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VivaldiNode {
    id: usize,
    config: VivaldiConfig,
    coordinate: Coordinate,
    local_error: WeightedEwma,
    steps: u64,
    rng: SimRng,
    seed: u64,
}

impl VivaldiNode {
    /// Create a node starting at the origin with maximal local error.
    ///
    /// Vivaldi famously bootstraps from everyone-at-the-origin; the first
    /// update draws a random direction to break the symmetry.
    pub fn new(id: usize, config: VivaldiConfig, seed: u64) -> Self {
        config.validate();
        Self {
            id,
            config,
            coordinate: initial_coordinate(&config),
            local_error: WeightedEwma::new(config.initial_error),
            steps: 0,
            rng: SimRng::from_stream(seed, id as u64, streams::VIVA), // "VIVA"
            seed,
        }
    }

    /// Node identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Configuration in force.
    pub fn config(&self) -> &VivaldiConfig {
        &self.config
    }

    /// Number of embedding steps applied so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Forget all positioning state (the paper's §3.2 experiment has
    /// nodes "forget their coordinates and rejoin the system").
    pub fn reset(&mut self) {
        self.coordinate = initial_coordinate(&self.config);
        self.local_error = WeightedEwma::new(self.config.initial_error);
        self.steps = 0;
    }

    /// The Vivaldi update against a peer's claimed coordinate/error and a
    /// measured RTT. Returns the measured relative error of the step.
    fn update(&mut self, peer_coord: &Coordinate, peer_error: f64, rtt_ms: f64) -> f64 {
        let peer_error = peer_error.max(1e-6); // a zero claim must not zero w's denominator
        let own_error = if self.local_error.is_initialized() {
            self.local_error.value().max(1e-6)
        } else {
            self.config.initial_error
        };

        // Sample-confidence balance.
        let w = own_error / (own_error + peer_error);

        // Measured relative error of this step.
        let es = relative_error(&self.coordinate, peer_coord, rtt_ms);

        // Update the local error estimate (weighted EWMA).
        self.local_error.update(es, w, self.config.ce);

        // Move along the spring force: δ·(rtt − est)·u(x_i − x_j).
        let est = self.coordinate.distance(peer_coord);
        let delta = self.config.cc * w;
        let direction = self.coordinate.direction_from(peer_coord, &mut self.rng);
        self.coordinate
            .apply_force(delta * (rtt_ms - est), &direction);
        if self.config.space.uses_height() {
            self.coordinate.clamp_height_min(self.config.min_height_ms);
        }
        self.steps += 1;
        es
    }
}

/// The bootstrap coordinate: the spatial origin, with a positive height
/// in height-augmented spaces.
fn initial_coordinate(config: &VivaldiConfig) -> Coordinate {
    let height = if config.space.uses_height() {
        config.initial_height_ms
    } else {
        0.0
    };
    Coordinate::new(vec![0.0; config.space.dims()], height)
}

impl Embedding for VivaldiNode {
    fn coordinate(&self) -> &Coordinate {
        &self.coordinate
    }

    fn local_error(&self) -> f64 {
        if self.local_error.is_initialized() {
            self.local_error.value()
        } else {
            self.config.initial_error
        }
    }

    fn apply_step(&mut self, sample: &PeerSample) -> StepOutcome {
        let relative_error = self.update(&sample.peer_coord, sample.peer_error, sample.rtt_ms);
        StepOutcome {
            relative_error,
            local_error: self.local_error(),
            moved: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(peer_coord: Coordinate, peer_error: f64, rtt_ms: f64) -> PeerSample {
        PeerSample {
            peer: 999,
            peer_coord,
            peer_error,
            rtt_ms,
        }
    }

    fn node(id: usize) -> VivaldiNode {
        VivaldiNode::new(id, VivaldiConfig::paper_default(), 42)
    }

    #[test]
    fn starts_at_origin_with_bootstrap_height_and_full_error() {
        let n = node(0);
        assert_eq!(n.coordinate().position(), &[0.0, 0.0]);
        assert_eq!(
            n.coordinate().height(),
            VivaldiConfig::paper_default().initial_height_ms,
            "a fresh node needs a positive height (zero is near-absorbing)"
        );
        assert_eq!(n.local_error(), 1.0);
        assert_eq!(n.steps(), 0);
    }

    #[test]
    fn single_step_moves_node() {
        let mut n = node(0);
        let peer = Coordinate::new(vec![100.0, 0.0], 0.0);
        n.apply_step(&sample(peer, 0.5, 50.0));
        assert_eq!(n.steps(), 1);
        assert!(
            n.coordinate().magnitude() > 0.0,
            "node should have moved off the origin"
        );
    }

    #[test]
    fn overestimation_pulls_nodes_together() {
        // Node at (100, 0), peer at origin, measured RTT 10 « estimated
        // 100 → the spring is compressed and pushes the node toward the
        // peer.
        let mut n = node(0);
        let peer = Coordinate::new(vec![0.0, 0.0], 0.0);
        n.apply_step(&sample(peer.clone(), 1.0, 100.0)); // place roughly
        let far = Coordinate::new(vec![200.0, 0.0], 0.0);
        let before = n.coordinate().distance(&far);
        // Measured much smaller than estimated → move toward peer.
        let est_before = n.coordinate().distance(&peer);
        n.apply_step(&sample(peer.clone(), 1.0, est_before * 0.1));
        let est_after = n.coordinate().distance(&peer);
        assert!(
            est_after < est_before,
            "estimated distance should shrink: {est_before} → {est_after}"
        );
        let _ = before;
    }

    #[test]
    fn underestimation_pushes_nodes_apart() {
        let mut n = node(0);
        let peer = Coordinate::new(vec![10.0, 0.0], 0.0);
        let est_before = n.coordinate().distance(&peer);
        n.apply_step(&sample(peer.clone(), 1.0, est_before * 5.0 + 10.0));
        let est_after = n.coordinate().distance(&peer);
        assert!(
            est_after > est_before,
            "estimated distance should grow: {est_before} → {est_after}"
        );
    }

    #[test]
    fn pairwise_convergence() {
        // Two nodes springing against each other converge to the measured
        // distance.
        let cfg = VivaldiConfig::paper_default();
        let mut a = VivaldiNode::new(0, cfg, 1);
        let mut b = VivaldiNode::new(1, cfg, 1);
        let rtt = 80.0;
        for _ in 0..300 {
            let sb = sample(b.coordinate().clone(), b.local_error(), rtt);
            a.apply_step(&sb);
            let sa = sample(a.coordinate().clone(), a.local_error(), rtt);
            b.apply_step(&sa);
        }
        let est = a.coordinate().distance(b.coordinate());
        assert!(
            (est - rtt).abs() / rtt < 0.05,
            "estimated {est} vs rtt {rtt}"
        );
        assert!(a.local_error() < 0.1, "local error {}", a.local_error());
    }

    #[test]
    fn local_error_tracks_step_quality() {
        let mut n = node(0);
        let peer = Coordinate::new(vec![50.0, 0.0], 0.1);
        // Consistent accurate steps shrink the local error.
        for _ in 0..100 {
            let rtt = n.coordinate().distance(&peer).max(1.0);
            n.apply_step(&sample(peer.clone(), 0.1, rtt));
        }
        assert!(n.local_error() < 0.05, "error = {}", n.local_error());
    }

    #[test]
    fn zero_peer_error_does_not_divide_by_zero() {
        let mut n = node(0);
        let peer = Coordinate::new(vec![30.0, 40.0], 0.0);
        let out = n.apply_step(&sample(peer, 0.0, 50.0));
        assert!(out.relative_error.is_finite());
        assert!(n.coordinate().is_finite());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut n = node(3);
        let peer = Coordinate::new(vec![10.0, 10.0], 1.0);
        n.apply_step(&sample(peer, 0.5, 25.0));
        assert!(n.steps() > 0);
        n.reset();
        assert_eq!(n.steps(), 0);
        assert_eq!(n.local_error(), 1.0);
        assert_eq!(n.coordinate().position(), &[0.0, 0.0]);
        assert_eq!(
            n.coordinate().height(),
            VivaldiConfig::paper_default().initial_height_ms
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut n = VivaldiNode::new(5, VivaldiConfig::paper_default(), 77);
            let peer = Coordinate::new(vec![25.0, 0.0], 2.0);
            for i in 0..50 {
                n.apply_step(&sample(peer.clone(), 0.3, 40.0 + (i % 7) as f64));
            }
            n.coordinate().clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn height_never_negative_across_many_steps() {
        let mut n = node(9);
        let peers = [
            Coordinate::new(vec![10.0, 0.0], 5.0),
            Coordinate::new(vec![0.0, 80.0], 1.0),
            Coordinate::new(vec![-30.0, -30.0], 20.0),
        ];
        for i in 0..600 {
            let p = &peers[i % 3];
            let rtt = (10.0 + (i % 50) as f64).max(1.0);
            n.apply_step(&sample(p.clone(), 0.4, rtt));
            assert!(n.coordinate().height() >= n.config().min_height_ms);
            assert!(n.coordinate().is_finite());
        }
    }
}
