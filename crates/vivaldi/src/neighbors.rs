//! Neighbor-set selection.
//!
//! The paper's Vivaldi experiments give each node 64 neighbors, 32 of
//! which are chosen to be closer than 50 ms (Dabek et al. showed that
//! mixing close and far neighbors avoids the "folded" configurations
//! pure-random or pure-close sets produce).

use crate::config::VivaldiConfig;
use ices_stats::sample::sample_indices;
use rand::Rng;

/// Choose a node's neighbor set from candidate RTTs.
///
/// `rtts` holds `(peer id, base RTT ms)` for every candidate peer (self
/// excluded by the caller). Up to `config.close_neighbors` are drawn at
/// random from the peers under `config.close_threshold_ms`; the rest of
/// the budget is drawn at random from the remaining peers. If there are
/// not enough close peers the budget shifts to far ones (and vice versa),
/// matching how a deployment behaves in sparse regions.
///
/// Returns peer ids, deduplicated; fewer than `config.neighbors` when the
/// candidate set itself is smaller.
pub fn select_neighbors<R: Rng + ?Sized>(
    rtts: &[(usize, f64)],
    config: &VivaldiConfig,
    rng: &mut R,
) -> Vec<usize> {
    let close: Vec<usize> = rtts
        .iter()
        .filter(|&&(_, rtt)| rtt < config.close_threshold_ms)
        .map(|&(id, _)| id)
        .collect();
    let far: Vec<usize> = rtts
        .iter()
        .filter(|&&(_, rtt)| rtt >= config.close_threshold_ms)
        .map(|&(id, _)| id)
        .collect();

    let total_budget = config.neighbors.min(rtts.len());
    let close_take = config.close_neighbors.min(close.len());
    // Whatever the close pool could not supply shifts to the far pool.
    let far_take = (total_budget - close_take).min(far.len());
    // And if the far pool is short too, backfill from the close pool.
    let close_take = (total_budget - far_take).min(close.len());

    let mut chosen = Vec::with_capacity(close_take + far_take);
    for i in sample_indices(rng, close.len(), close_take) {
        chosen.push(close[i]);
    }
    for i in sample_indices(rng, far.len(), far_take) {
        chosen.push(far[i]);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use ices_stats::rng::stream_rng;

    fn cfg(neighbors: usize, close: usize) -> VivaldiConfig {
        VivaldiConfig {
            neighbors,
            close_neighbors: close,
            ..VivaldiConfig::paper_default()
        }
    }

    fn mixed_candidates(n_close: usize, n_far: usize) -> Vec<(usize, f64)> {
        let mut v = Vec::new();
        for i in 0..n_close {
            v.push((i, 10.0)); // close
        }
        for i in 0..n_far {
            v.push((n_close + i, 200.0)); // far
        }
        v
    }

    #[test]
    fn respects_close_far_split() {
        let mut rng = stream_rng(1, 0);
        let cands = mixed_candidates(100, 100);
        let chosen = select_neighbors(&cands, &cfg(64, 32), &mut rng);
        assert_eq!(chosen.len(), 64);
        let close_chosen = chosen.iter().filter(|&&id| id < 100).count();
        assert_eq!(close_chosen, 32);
    }

    #[test]
    fn shifts_budget_when_close_pool_small() {
        let mut rng = stream_rng(2, 0);
        let cands = mixed_candidates(5, 100);
        let chosen = select_neighbors(&cands, &cfg(64, 32), &mut rng);
        assert_eq!(chosen.len(), 64);
        let close_chosen = chosen.iter().filter(|&&id| id < 5).count();
        assert_eq!(close_chosen, 5, "all available close peers taken");
    }

    #[test]
    fn shifts_budget_when_far_pool_small() {
        let mut rng = stream_rng(3, 0);
        let cands = mixed_candidates(100, 5);
        let chosen = select_neighbors(&cands, &cfg(64, 32), &mut rng);
        assert_eq!(chosen.len(), 64);
        let far_chosen = chosen.iter().filter(|&&id| id >= 100).count();
        assert_eq!(far_chosen, 5);
    }

    #[test]
    fn small_candidate_set_returns_everything() {
        let mut rng = stream_rng(4, 0);
        let cands = mixed_candidates(3, 4);
        let mut chosen = select_neighbors(&cands, &cfg(64, 32), &mut rng);
        chosen.sort_unstable();
        assert_eq!(chosen, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn no_duplicates() {
        let mut rng = stream_rng(5, 0);
        let cands = mixed_candidates(50, 50);
        let chosen = select_neighbors(&cands, &cfg(64, 32), &mut rng);
        let mut sorted = chosen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), chosen.len());
    }

    #[test]
    fn deterministic_for_seed() {
        let cands = mixed_candidates(80, 80);
        let a = select_neighbors(&cands, &cfg(64, 32), &mut stream_rng(6, 1));
        let b = select_neighbors(&cands, &cfg(64, 32), &mut stream_rng(6, 1));
        assert_eq!(a, b);
    }
}
