//! Vivaldi tuning parameters.

use ices_coord::Space;
use serde::{Deserialize, Serialize};

/// Parameters of the Vivaldi algorithm and its neighbor sets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VivaldiConfig {
    /// Adaptive-timestep constant `C_c` (the paper sets 0.25).
    pub cc: f64,
    /// Local-error EWMA constant `C_e`.
    pub ce: f64,
    /// The geometric space (the paper: 2-d + height).
    pub space: Space,
    /// Neighbors per node (the paper: 64).
    pub neighbors: usize,
    /// How many of those must be close (the paper: 32).
    pub close_neighbors: usize,
    /// RTT threshold under which a neighbor counts as close, ms
    /// (the paper: 50 ms).
    pub close_threshold_ms: f64,
    /// Initial local error `e_l` for a fresh node (1 = no confidence).
    pub initial_error: f64,
    /// Starting height for a fresh node, ms. Must be positive in
    /// height-augmented spaces: a zero height is nearly absorbing under
    /// the clamped spring updates (the force's height component is
    /// proportional to the endpoint heights).
    pub initial_height_ms: f64,
    /// Height floor maintained after every update, ms.
    pub min_height_ms: f64,
}

impl Default for VivaldiConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl VivaldiConfig {
    /// The configuration used throughout the paper's evaluation.
    pub fn paper_default() -> Self {
        Self {
            cc: 0.25,
            ce: 0.25,
            space: Space::vivaldi_default(),
            neighbors: 64,
            close_neighbors: 32,
            close_threshold_ms: 50.0,
            initial_error: 1.0,
            initial_height_ms: 5.0,
            min_height_ms: 0.1,
        }
    }

    /// Validate invariants.
    ///
    /// # Panics
    /// Panics if constants leave `(0, 1]`, the neighbor split is
    /// inconsistent, or the initial error is not positive.
    pub fn validate(&self) {
        assert!(self.cc > 0.0 && self.cc <= 1.0, "cc must be in (0,1]");
        assert!(self.ce > 0.0 && self.ce <= 1.0, "ce must be in (0,1]");
        assert!(self.neighbors >= 1, "need at least one neighbor");
        assert!(
            self.close_neighbors <= self.neighbors,
            "close neighbors cannot exceed total neighbors"
        );
        assert!(
            self.close_threshold_ms > 0.0,
            "close threshold must be positive"
        );
        assert!(self.initial_error > 0.0, "initial error must be positive");
        if self.space.uses_height() {
            assert!(
                self.initial_height_ms > 0.0,
                "initial height must be positive in height-augmented spaces"
            );
            assert!(
                self.min_height_ms >= 0.0 && self.min_height_ms <= self.initial_height_ms,
                "height floor must be in [0, initial height]"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_evaluation_setup() {
        let c = VivaldiConfig::paper_default();
        assert_eq!(c.cc, 0.25);
        assert_eq!(c.neighbors, 64);
        assert_eq!(c.close_neighbors, 32);
        assert_eq!(c.close_threshold_ms, 50.0);
        assert_eq!(c.space, Space::with_height(2));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "close neighbors cannot exceed")]
    fn validate_rejects_bad_split() {
        let mut c = VivaldiConfig::paper_default();
        c.close_neighbors = 65;
        c.validate();
    }

    #[test]
    fn serde_roundtrip() {
        let c = VivaldiConfig::paper_default();
        let json = serde_json::to_string(&c).expect("serialize");
        let back: VivaldiConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(c, back);
    }
}
