//! Vivaldi: a decentralized network coordinate system.
//!
//! From-scratch implementation of Vivaldi (Dabek, Cox, Kaashoek, Morris —
//! SIGCOMM 2004) in the configuration the paper's evaluation uses:
//! adaptive timestep with `C_c = 0.25`, a 2-dimensional Euclidean space
//! augmented with a height vector, and 64 neighbors per node of which 32
//! are chosen closer than 50 ms.
//!
//! Vivaldi models the system as a physical spring network: for each
//! neighbor interaction the node moves along the spring force
//!
//! ```text
//! w   = e_i / (e_i + e_j)                 (sample-confidence balance)
//! e_s = |‖x_i − x_j‖ − rtt| / rtt         (measured relative error)
//! e_i ← e_s·C_e·w + e_i·(1 − C_e·w)       (local error EWMA)
//! δ   = C_c · w                           (adaptive timestep)
//! x_i ← x_i + δ·(rtt − ‖x_i − x_j‖)·u(x_i − x_j)
//! ```
//!
//! Each such interaction is one *embedding step* in the sense of the
//! paper's §2 model, which is exactly the granularity the Kalman-filter
//! detector of `ices-core` operates at: [`VivaldiNode`] implements
//! [`ices_coord::Embedding`], so the secure protocol can veto individual
//! steps without Vivaldi knowing anything about detection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod neighbors;
pub mod node;

pub use config::VivaldiConfig;
pub use neighbors::select_neighbors;
pub use node::VivaldiNode;
