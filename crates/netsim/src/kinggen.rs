//! Synthetic King-like topology generation.
//!
//! The King dataset the paper simulates on is a 1740×1740 RTT matrix
//! between Internet DNS servers. We reproduce its *structure* rather than
//! its numbers, because the detection model depends on the dynamics that
//! structure induces in the embedding:
//!
//! 1. **Regional clustering** — hosts group into continents; intra-region
//!    RTTs are tens of ms, inter-region RTTs are set by the region
//!    centers' separation in a latent plane (≈ real inter-continent RTTs).
//! 2. **Access-link heights** — every host pays a last-mile delay on each
//!    probe regardless of destination; drawn lognormal so a minority of
//!    hosts have large heights. This is the component Vivaldi's height
//!    vector exists to capture.
//! 3. **Route distortion** — real Internet routing is not shortest-path,
//!    producing triangle-inequality violations. A multiplicative
//!    lognormal factor per pair reproduces TIVs at King-like rates
//!    (roughly 5–10% of triples).

use crate::topology::RttMatrix;
use ices_stats::rng::{stream_rng, stream_rng2};
use ices_stats::sample;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use ices_stats::streams;

/// Placement of regions in the latent delay plane.
///
/// Coordinates are in milliseconds: the planar distance between two
/// region centers is the nominal inter-region path delay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionLayout {
    /// `(x_ms, y_ms, weight)` per region; weights set the share of nodes.
    pub regions: Vec<(f64, f64, f64)>,
}

impl RegionLayout {
    /// Five regions with separations approximating observed
    /// inter-continental RTTs (NA-East, NA-West, Europe, East Asia,
    /// South America).
    pub fn continental() -> Self {
        Self {
            regions: vec![
                (0.0, 0.0, 0.30),    // North America East
                (35.0, 25.0, 0.20),  // North America West
                (45.0, -75.0, 0.28), // Europe
                (150.0, 60.0, 0.15), // East Asia
                (65.0, 95.0, 0.07),  // South America
            ],
        }
    }

    /// Total of the region weights.
    pub fn total_weight(&self) -> f64 {
        self.regions.iter().map(|r| r.2).sum()
    }
}

/// Configuration of the synthetic King-like generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KingConfig {
    /// Number of nodes (the real King dataset has 1740).
    pub nodes: usize,
    /// Region placement.
    pub layout: RegionLayout,
    /// σ (ms) of the gaussian scatter of hosts around their region center.
    pub scatter_ms: f64,
    /// μ of the lognormal access-link height (ln-ms).
    pub height_mu: f64,
    /// σ of the lognormal access-link height.
    pub height_sigma: f64,
    /// σ of the multiplicative lognormal route distortion; 0 disables it
    /// (yielding a near-perfectly embeddable metric).
    pub distortion_sigma: f64,
    /// Characteristic magnitude of per-pair route distortion, in
    /// log-space. Each pair's distortion is `exp(±(bias + N(0, σ)))`
    /// with a random sign: real Internet paths always deviate from the
    /// metric optimum by *some* detour (routing-policy inflation), so
    /// residual unembeddability has a typical magnitude rather than
    /// piling up at zero. This is what gives the embedding's converged
    /// per-neighbor relative errors the bell shape (away from zero)
    /// observed in deployments.
    pub distortion_bias: f64,
    /// Minimum base RTT between distinct nodes, in ms.
    pub min_rtt_ms: f64,
}

impl Default for KingConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

impl KingConfig {
    /// The paper's simulation scale: 1740 nodes.
    pub fn paper_scale() -> Self {
        Self {
            nodes: 1740,
            layout: RegionLayout::continental(),
            scatter_ms: 18.0,
            height_mu: 1.0,    // median height e^1 ≈ 2.7 ms
            height_sigma: 0.8, // a tail of hosts with 15–40 ms access links
            distortion_sigma: 0.03,
            distortion_bias: 0.08,
            min_rtt_ms: 5.0,
        }
    }

    /// A smaller topology with identical structure, for tests and quick
    /// experiments.
    pub fn small(nodes: usize) -> Self {
        Self {
            nodes,
            ..Self::paper_scale()
        }
    }

    /// Draw the ground-truth node placement — latent positions, heights,
    /// regions — without materializing any pairwise state. O(n) memory.
    ///
    /// Deterministic in `seed`; bit-identical to the placement half of
    /// [`KingConfig::generate`] (it *is* that half, factored out so a
    /// streamed [`crate::SynthRtt`] source reproduces the same world).
    ///
    /// # Panics
    /// Panics if fewer than 2 nodes are requested or the layout is empty.
    pub fn place(&self, seed: u64) -> Placement {
        assert!(self.nodes >= 2, "need at least 2 nodes");
        assert!(
            !self.layout.regions.is_empty(),
            "layout needs at least one region"
        );
        let total_w = self.layout.total_weight();
        assert!(total_w > 0.0, "region weights must be positive");

        let mut place_rng = stream_rng(seed, streams::PLAC); // "PLAC"
        let mut regions = Vec::with_capacity(self.nodes);
        let mut positions = Vec::with_capacity(self.nodes);
        let mut heights = Vec::with_capacity(self.nodes);
        for _ in 0..self.nodes {
            // Weighted region choice.
            let mut target = sample::uniform(&mut place_rng, 0.0, total_w);
            let mut chosen = self.layout.regions.len() - 1;
            for (r, &(_, _, w)) in self.layout.regions.iter().enumerate() {
                if target < w {
                    chosen = r;
                    break;
                }
                target -= w;
            }
            let (cx, cy, _) = self.layout.regions[chosen];
            let x = sample::normal(&mut place_rng, cx, self.scatter_ms);
            let y = sample::normal(&mut place_rng, cy, self.scatter_ms);
            let h = sample::lognormal(&mut place_rng, self.height_mu, self.height_sigma);
            regions.push(chosen);
            positions.push((x, y));
            heights.push(h);
        }
        Placement {
            positions,
            heights,
            regions,
        }
    }

    /// The base RTT between distinct nodes `a` and `b` under `placement`.
    ///
    /// A pure function of `(seed, min(a,b), max(a,b))` and the endpoint
    /// ground truth: the route-distortion draw comes from the
    /// order-normalized pair stream `stream_rng2(seed, lo, hi)`, so any
    /// evaluation order — dense matrix fill, on-demand streaming, either
    /// argument order — produces bit-identical values.
    ///
    /// # Panics
    /// Panics if `a == b` or either index is out of the placement.
    pub fn pair_rtt(&self, seed: u64, placement: &Placement, a: usize, b: usize) -> f64 {
        assert_ne!(a, b, "pair_rtt needs two distinct nodes");
        let (lo, hi) = (a.min(b), a.max(b));
        assert!(hi < placement.positions.len(), "node {hi} out of placement");
        let (xi, yi) = placement.positions[lo];
        let (xj, yj) = placement.positions[hi];
        let planar = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
        let distortion = if self.distortion_sigma > 0.0 || self.distortion_bias > 0.0 {
            // Per-pair deterministic stream so the value does not depend
            // on evaluation order.
            let mut pair_rng = stream_rng2(seed, lo as u64, hi as u64);
            let sign = if pair_rng.random::<f64>() < 0.5 {
                -1.0
            } else {
                1.0
            };
            let magnitude =
                self.distortion_bias + sample::normal(&mut pair_rng, 0.0, self.distortion_sigma);
            (sign * magnitude).exp()
        } else {
            1.0
        };
        // Distortion models transit-path inflation, so it applies to
        // the planar (routed) component only; the access links are
        // physical constants of each endpoint.
        (planar * distortion + placement.heights[lo] + placement.heights[hi])
            .max(self.min_rtt_ms)
    }

    /// Generate the node placements and the dense base-RTT matrix.
    ///
    /// Deterministic in `seed`. Returns the full [`Topology`] including
    /// ground-truth latent positions (useful for evaluating embeddings
    /// against truth, and for the k-means Surveyor placement which the
    /// paper runs on coordinates). O(n²) memory — for large n, stream
    /// pairs through [`crate::SynthRtt`] instead; both derive every pair
    /// from the same `(seed, lo, hi)` streams and agree bit-for-bit.
    ///
    /// # Panics
    /// Panics if fewer than 2 nodes are requested or the layout is empty.
    pub fn generate(&self, seed: u64) -> Topology {
        let placement = self.place(seed);
        let matrix =
            RttMatrix::from_fn(self.nodes, |i, j| self.pair_rtt(seed, &placement, i, j));
        Topology {
            matrix,
            positions: placement.positions,
            heights: placement.heights,
            regions: placement.regions,
        }
    }
}

/// Ground-truth node placement without any pairwise state: the O(n) half
/// of a generated topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Latent planar positions (ms), per node.
    pub positions: Vec<(f64, f64)>,
    /// Access-link heights (ms), per node.
    pub heights: Vec<f64>,
    /// Region index, per node.
    pub regions: Vec<usize>,
}

impl Placement {
    /// Node count.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the placement is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

/// A generated topology: the base-RTT matrix plus ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Pairwise base RTTs.
    pub matrix: RttMatrix,
    /// Latent planar positions (ms), per node.
    pub positions: Vec<(f64, f64)>,
    /// Access-link heights (ms), per node.
    pub heights: Vec<f64>,
    /// Region index, per node.
    pub regions: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ices_stats::OnlineStats;

    fn small_topology() -> Topology {
        KingConfig::small(120).generate(42)
    }

    #[test]
    fn generates_requested_size() {
        let t = small_topology();
        assert_eq!(t.matrix.len(), 120);
        assert_eq!(t.positions.len(), 120);
        assert_eq!(t.heights.len(), 120);
        assert_eq!(t.regions.len(), 120);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = KingConfig::small(60).generate(7);
        let b = KingConfig::small(60).generate(7);
        assert_eq!(a, b);
        let c = KingConfig::small(60).generate(8);
        assert_ne!(a.matrix, c.matrix);
    }

    #[test]
    fn intra_region_shorter_than_inter_region() {
        let t = small_topology();
        let mut intra = OnlineStats::new();
        let mut inter = OnlineStats::new();
        for i in 0..t.matrix.len() {
            for j in (i + 1)..t.matrix.len() {
                if t.regions[i] == t.regions[j] {
                    intra.push(t.matrix.get(i, j));
                } else {
                    inter.push(t.matrix.get(i, j));
                }
            }
        }
        assert!(intra.count() > 0 && inter.count() > 0);
        assert!(
            intra.mean() * 2.0 < inter.mean(),
            "intra {} vs inter {}",
            intra.mean(),
            inter.mean()
        );
    }

    #[test]
    fn rtts_in_realistic_range() {
        let t = small_topology();
        let mut s = OnlineStats::new();
        for i in 0..t.matrix.len() {
            for j in (i + 1)..t.matrix.len() {
                s.push(t.matrix.get(i, j));
            }
        }
        assert!(s.min() >= 1.0, "min RTT {}", s.min());
        assert!(s.max() < 1000.0, "max RTT {}", s.max());
        // Median should be tens-to-hundreds of ms like real King data.
        assert!(s.mean() > 20.0 && s.mean() < 400.0, "mean {}", s.mean());
    }

    #[test]
    fn distortion_produces_king_like_tivs() {
        let t = small_topology();
        let f = t.matrix.tiv_fraction(0.0, 30_000);
        assert!(
            f > 0.01 && f < 0.25,
            "TIV fraction {f} out of the King-like band"
        );
    }

    #[test]
    fn no_distortion_means_almost_no_tivs() {
        let mut cfg = KingConfig::small(100);
        cfg.distortion_sigma = 0.0;
        cfg.distortion_bias = 0.0;
        let t = cfg.generate(11);
        let f = t.matrix.tiv_fraction(0.0, 30_000);
        // Heights only ever help the triangle inequality; the metric is
        // embeddable by construction.
        assert_eq!(f, 0.0, "TIV fraction {f}");
    }

    #[test]
    fn heights_are_positive_with_a_tail() {
        let t = small_topology();
        let mut s = OnlineStats::new();
        for &h in &t.heights {
            assert!(h > 0.0);
            s.push(h);
        }
        assert!(
            s.mean() > 1.0 && s.mean() < 15.0,
            "mean height {}",
            s.mean()
        );
        assert!(s.max() > 3.0 * s.mean(), "height tail missing");
    }

    #[test]
    fn paper_scale_config_is_1740_nodes() {
        assert_eq!(KingConfig::paper_scale().nodes, 1740);
    }
}
