//! Pluggable base-RTT sources: dense matrices and streamed generators.
//!
//! The paper's substrates fit in memory (1740 nodes ≈ 1.5M packed f64),
//! but a dense pairwise matrix is O(n²) — ~8 TB at a million nodes — so
//! scaling past the seed topologies requires *synthesizing* each pair on
//! demand instead of storing it. [`RttSource`] abstracts the lookup;
//! [`RttStore`] is the closed enum [`crate::Network`] actually holds (an
//! enum rather than a trait object so `Network` keeps its `Clone`/
//! `PartialEq`/serde derives).
//!
//! Determinism contract: a source's `base_rtt(a, b)` must be a pure
//! function of the source's construction inputs and `(min(a,b),
//! max(a,b))` — no interior mutability that affects values, no
//! wall-clock, no global state. `ices-audit` enforces the no-wall-clock
//! half statically (DET02 covers this crate), and [`SynthRtt`] derives
//! every pair from the order-normalized hash stream
//! `stream_rng2(seed, lo, hi)`.

use crate::kinggen::{KingConfig, Placement};
use crate::topology::RttMatrix;
use ices_stats::rng::stream_rng;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use ices_stats::streams;

/// A source of pairwise base RTTs.
///
/// Implementations must be pure: the value for `(a, b)` depends only on
/// construction inputs and the unordered pair, never on call order,
/// wall-clock time, or prior queries.
pub trait RttSource {
    /// Number of nodes.
    fn node_count(&self) -> usize;

    /// Nominal (fluctuation-free) RTT between two distinct nodes, ms.
    /// Symmetric; returns 0 for `a == b`.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    fn base_rtt(&self, a: usize, b: usize) -> f64;
}

impl RttSource for RttMatrix {
    fn node_count(&self) -> usize {
        self.len()
    }

    fn base_rtt(&self, a: usize, b: usize) -> f64 {
        self.get(a, b)
    }
}

/// Streamed King-model RTTs: O(n) memory, each pair recomputed on demand.
///
/// Holds only the ground-truth [`Placement`] (positions, heights,
/// regions — three `Vec`s) plus the generator config and seed. Every
/// pair value comes from [`KingConfig::pair_rtt`], which draws the
/// route-distortion factor from the order-normalized per-pair stream
/// `stream_rng2(seed, min(a,b), max(a,b))` — so a `SynthRtt` is
/// **bit-identical** to the dense matrix `KingConfig::generate` would
/// materialize for the same `(config, seed)`, at any scale the dense
/// form could never reach.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthRtt {
    config: KingConfig,
    seed: u64,
    placement: Placement,
}

impl SynthRtt {
    /// Place nodes for `config` under `seed`; no pairwise state is built.
    ///
    /// # Panics
    /// Panics if the config is invalid (see [`KingConfig::place`]).
    pub fn new(config: KingConfig, seed: u64) -> Self {
        let placement = config.place(seed);
        Self {
            config,
            seed,
            placement,
        }
    }

    /// The generator configuration.
    pub fn config(&self) -> &KingConfig {
        &self.config
    }

    /// The topology seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Ground-truth placement (latent positions, heights, regions).
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Deterministic estimate of the median pairwise base RTT from
    /// `samples` streamed pair draws (pure function of the seed; mirrors
    /// [`RttMatrix::median`]'s `total_cmp`-sort-and-middle convention).
    ///
    /// Degenerate shapes short-circuit instead of sampling: with fewer
    /// than two nodes there are no pairs and the median is 0 (matching
    /// [`RttMatrix::median`] on an empty triangle, and avoiding the
    /// modulo-by-zero / draw-forever loop rejection sampling would hit);
    /// with no more pairs than requested samples the full upper triangle
    /// is enumerated and the median is **exact** — rejection-sampling a
    /// population the size of the sample budget would just be a noisy,
    /// slower spelling of the same set.
    ///
    /// # Panics
    /// Panics if `samples` is 0.
    pub fn sampled_median(&self, samples: usize) -> f64 {
        assert!(samples > 0, "need at least one sample");
        let n = self.placement.len();
        if n < 2 {
            return 0.0;
        }
        let pairs = n * (n - 1) / 2;
        if pairs <= samples {
            let mut all = Vec::with_capacity(pairs);
            for a in 0..n {
                for b in (a + 1)..n {
                    all.push(self.base_rtt(a, b));
                }
            }
            all.sort_by(f64::total_cmp);
            return all[all.len() / 2];
        }
        let n = n as u64;
        let mut rng = stream_rng(self.seed, streams::MEDI); // "MEDI"
        let mut drawn = Vec::with_capacity(samples);
        while drawn.len() < samples {
            let a = (rng.random::<u64>() % n) as usize;
            let b = (rng.random::<u64>() % n) as usize;
            if a == b {
                continue;
            }
            drawn.push(self.base_rtt(a, b));
        }
        drawn.sort_by(f64::total_cmp);
        drawn[drawn.len() / 2]
    }
}

impl RttSource for SynthRtt {
    fn node_count(&self) -> usize {
        self.placement.len()
    }

    fn base_rtt(&self, a: usize, b: usize) -> f64 {
        let n = self.placement.len();
        assert!(a < n && b < n, "node index out of range ({a}, {b}) for {n}");
        if a == b {
            return 0.0;
        }
        self.config.pair_rtt(self.seed, &self.placement, a, b)
    }
}

/// Pair-draw count for [`RttStore::median_base_rtt`] on streamed
/// sources: odd so the middle element is a true sample, large enough
/// that the estimate is stable to well under the factor-of-2 slack the
/// experiment thresholds carry.
const MEDIAN_SAMPLES: usize = 4095;

/// The base-RTT storage of a [`crate::Network`]: one closed enum over
/// the supported [`RttSource`] implementations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RttStore {
    /// A materialized pairwise matrix (O(n²) memory, exact queries).
    Dense(RttMatrix),
    /// A streamed King-model generator (O(n) memory, recompute-on-read).
    Synth(SynthRtt),
}

impl RttStore {
    /// The dense matrix, when this store has one. Streamed stores return
    /// `None` — callers needing whole-population statistics should use
    /// [`RttStore::median_base_rtt`] or iterate pairs via `base_rtt`.
    pub fn matrix(&self) -> Option<&RttMatrix> {
        match self {
            RttStore::Dense(m) => Some(m),
            RttStore::Synth(_) => None,
        }
    }

    /// Median pairwise base RTT: exact (the packed-triangle median) for
    /// dense stores, a deterministic streamed-sample estimate for
    /// synthesized ones. Both follow the same `total_cmp` ordering
    /// convention, and both are pure functions of the store.
    pub fn median_base_rtt(&self) -> f64 {
        match self {
            RttStore::Dense(m) => m.median(),
            RttStore::Synth(s) => s.sampled_median(MEDIAN_SAMPLES),
        }
    }
}

impl RttSource for RttStore {
    fn node_count(&self) -> usize {
        match self {
            RttStore::Dense(m) => m.node_count(),
            RttStore::Synth(s) => s.node_count(),
        }
    }

    fn base_rtt(&self, a: usize, b: usize) -> f64 {
        match self {
            RttStore::Dense(m) => m.base_rtt(a, b),
            RttStore::Synth(s) => s.base_rtt(a, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_is_bit_identical_to_dense_generation() {
        let config = KingConfig::small(80);
        let seed = 1234;
        let topo = config.clone().generate(seed);
        let synth = SynthRtt::new(config, seed);
        assert_eq!(synth.placement().positions, topo.positions);
        assert_eq!(synth.placement().heights, topo.heights);
        assert_eq!(synth.placement().regions, topo.regions);
        for i in 0..80 {
            for j in (i + 1)..80 {
                assert_eq!(
                    synth.base_rtt(i, j).to_bits(),
                    topo.matrix.get(i, j).to_bits(),
                    "pair ({i}, {j}) diverged from the dense matrix"
                );
            }
        }
    }

    #[test]
    fn synth_pairs_are_symmetric_positive_finite_and_seed_stable() {
        let synth = SynthRtt::new(KingConfig::small(64), 7);
        let again = SynthRtt::new(KingConfig::small(64), 7);
        let other = SynthRtt::new(KingConfig::small(64), 8);
        let mut differs = false;
        for a in 0..64 {
            assert_eq!(synth.base_rtt(a, a), 0.0);
            for b in 0..64 {
                if a == b {
                    continue;
                }
                let rtt = synth.base_rtt(a, b);
                assert!(rtt.is_finite() && rtt > 0.0, "({a},{b}) gave {rtt}");
                assert_eq!(rtt.to_bits(), synth.base_rtt(b, a).to_bits(), "asymmetric");
                assert_eq!(rtt.to_bits(), again.base_rtt(a, b).to_bits(), "seed-unstable");
                if rtt.to_bits() != other.base_rtt(a, b).to_bits() {
                    differs = true;
                }
            }
        }
        assert!(differs, "different seeds must give a different topology");
    }

    #[test]
    fn query_order_does_not_matter() {
        let synth = SynthRtt::new(KingConfig::small(32), 3);
        let forward: Vec<u64> = (0..32)
            .flat_map(|a| (0..32).map(move |b| (a, b)))
            .filter(|(a, b)| a != b)
            .map(|(a, b)| synth.base_rtt(a, b).to_bits())
            .collect();
        let fresh = SynthRtt::new(KingConfig::small(32), 3);
        let backward: Vec<u64> = (0..32)
            .flat_map(|a| (0..32).map(move |b| (a, b)))
            .filter(|(a, b)| a != b)
            .rev()
            .map(|(a, b)| fresh.base_rtt(a, b).to_bits())
            .collect();
        let mut backward = backward;
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn sampled_median_tracks_exact_median() {
        let config = KingConfig::small(120);
        let topo = config.clone().generate(21);
        let synth = SynthRtt::new(config, 21);
        let exact = topo.matrix.median();
        let estimate = synth.sampled_median(MEDIAN_SAMPLES);
        assert_eq!(estimate, synth.sampled_median(MEDIAN_SAMPLES), "not deterministic");
        assert!(
            (estimate - exact).abs() / exact < 0.25,
            "estimate {estimate} vs exact {exact}"
        );
    }

    /// Below the sample budget the estimate must *be* the exact dense
    /// median — the degenerate-network guard enumerates the triangle
    /// instead of rejection-sampling it.
    #[test]
    fn tiny_networks_get_the_exact_median() {
        for nodes in [2usize, 3, 8, 40] {
            let config = KingConfig::small(nodes);
            let topo = config.clone().generate(13);
            let synth = SynthRtt::new(config, 13);
            let pairs = nodes * (nodes - 1) / 2;
            assert!(pairs <= MEDIAN_SAMPLES, "test premise broken for n={nodes}");
            assert_eq!(
                synth.sampled_median(MEDIAN_SAMPLES).to_bits(),
                topo.matrix.median().to_bits(),
                "n={nodes} did not take the exact path"
            );
        }
    }

    /// The two-node network is the smallest constructible topology: one
    /// pair, whose RTT is its own median — and the old rejection loop's
    /// worst case (a 50% per-draw rejection rate; n=1 would never
    /// terminate at all).
    #[test]
    fn two_node_median_is_the_single_pair() {
        let synth = SynthRtt::new(KingConfig::small(2), 9);
        assert_eq!(
            synth.sampled_median(MEDIAN_SAMPLES).to_bits(),
            synth.base_rtt(0, 1).to_bits()
        );
        // Any sample budget gives the same exact answer down at this size.
        assert_eq!(
            synth.sampled_median(1).to_bits(),
            synth.base_rtt(0, 1).to_bits()
        );
    }

    /// Networks with more pairs than the budget keep using the MEDI
    /// sampling stream, byte-for-byte as before the guard.
    #[test]
    fn large_networks_still_sample() {
        let config = KingConfig::small(120); // 7140 pairs > 4095 samples
        let topo = config.clone().generate(21);
        let synth = SynthRtt::new(config, 21);
        let estimate = synth.sampled_median(MEDIAN_SAMPLES);
        assert_ne!(
            estimate.to_bits(),
            topo.matrix.median().to_bits(),
            "sampling path expected to differ from the exact median at n=120"
        );
    }

    #[test]
    fn store_dispatch_matches_underlying_sources() {
        let config = KingConfig::small(40);
        let topo = config.clone().generate(5);
        let dense = RttStore::Dense(topo.matrix.clone());
        let synth = RttStore::Synth(SynthRtt::new(config, 5));
        assert_eq!(dense.node_count(), 40);
        assert_eq!(synth.node_count(), 40);
        assert!(dense.matrix().is_some());
        assert!(synth.matrix().is_none());
        for a in 0..40 {
            for b in 0..40 {
                assert_eq!(
                    dense.base_rtt(a, b).to_bits(),
                    synth.base_rtt(a, b).to_bits()
                );
            }
        }
        assert_eq!(dense.median_base_rtt(), topo.matrix.median());
    }

    #[test]
    fn synth_store_survives_serde() {
        let store = RttStore::Synth(SynthRtt::new(KingConfig::small(16), 2));
        let json = serde_json::to_string(&store).expect("serialize");
        let back: RttStore = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(store, back);
    }
}
