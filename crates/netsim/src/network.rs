//! The measurable network: topology + stationary noise, seeded.
//!
//! A [`Network`] answers the single question every embedding protocol
//! asks: *what RTT do I measure to that node right now?* Measurements are
//! pure functions of `(seed, a, b, nonce)`: repeating a probe with the
//! same nonce reproduces the same value, and experiment results never
//! depend on the order in which nodes happen to probe.

use crate::faults::{FaultPlan, ProbeOutcome};
use crate::fluctuation::{FluctuationModel, NoiseProfile};
use crate::kinggen::{KingConfig, Topology};
use crate::planetlab::PlanetLab;
use crate::rtt::{RttSource, RttStore, SynthRtt};
use crate::topology::RttMatrix;
use ices_stats::rng::{derive, stream_rng2};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;
use ices_stats::streams;

/// A simulated network that serves noisy RTT measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    rtt: RttStore,
    profiles: Vec<NoiseProfile>,
    noise: FluctuationModel,
    seed: u64,
    faults: FaultPlan,
    cache: ProfileCache,
}

/// Pairwise combined-profile table, deduplicated by profile bit pattern.
///
/// Topologies assign nodes a handful of *distinct* profiles (clean vs
/// pathological), so instead of materializing `n²` pairs the table maps
/// each node to its profile equivalence class and precombines the
/// `k × k` class pairs. `pair(a, b)` is then two index lookups on the
/// hot probe path instead of a three-field `combine` per measurement.
#[derive(Debug, Default)]
struct ProfileTable {
    /// Node → index of its distinct profile.
    class: Vec<u32>,
    /// `combine` of every ordered class pair, row-major `k × k`.
    combined: Vec<NoiseProfile>,
    /// Number of distinct profiles (`k`).
    classes: usize,
}

/// Exact-bits profile identity: equivalence classes must never merge
/// profiles whose `combine` output could differ in any bit.
fn same_bits(a: &NoiseProfile, b: &NoiseProfile) -> bool {
    a.congestion_mult.to_bits() == b.congestion_mult.to_bits()
        && a.jitter_mult.to_bits() == b.jitter_mult.to_bits()
        && a.spike_mult.to_bits() == b.spike_mult.to_bits()
}

impl ProfileTable {
    fn build(profiles: &[NoiseProfile]) -> Self {
        let mut unique: Vec<NoiseProfile> = Vec::new();
        let mut class = Vec::with_capacity(profiles.len());
        for p in profiles {
            // Linear scan keeps determinism-critical code HashMap-free;
            // the distinct-profile count is tiny (2 in every generator).
            let idx = match unique.iter().position(|u| same_bits(u, p)) {
                Some(i) => i,
                None => {
                    unique.push(*p);
                    unique.len() - 1
                }
            };
            class.push(idx as u32);
        }
        let classes = unique.len();
        let mut combined = Vec::with_capacity(classes * classes);
        for a in &unique {
            for b in &unique {
                combined.push(a.combine(b));
            }
        }
        Self {
            class,
            combined,
            classes,
        }
    }

    /// The precombined profile for the ordered node pair `(a, b)` —
    /// bit-identical to `profiles[a].combine(&profiles[b])` because the
    /// class representatives carry the nodes' exact bit patterns.
    fn pair(&self, a: usize, b: usize) -> &NoiseProfile {
        &self.combined[self.class[a] as usize * self.classes + self.class[b] as usize]
    }
}

/// Lazily built [`ProfileTable`], wrapped so `Network` keeps its derived
/// semantics: the cache is a pure function of `profiles`, so it compares
/// equal to everything, clones cold, serializes as `null`, and
/// deserializes cold.
#[derive(Debug, Default)]
struct ProfileCache(OnceLock<ProfileTable>);

impl Clone for ProfileCache {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl PartialEq for ProfileCache {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Serialize for ProfileCache {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl Deserialize for ProfileCache {
    fn from_value(_: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Self::default())
    }
}

impl Network {
    /// Build a network from explicit parts over a dense matrix.
    ///
    /// # Panics
    /// Panics if the profile count does not match the matrix size or the
    /// noise model is invalid.
    pub fn new(
        matrix: RttMatrix,
        profiles: Vec<NoiseProfile>,
        noise: FluctuationModel,
        seed: u64,
    ) -> Self {
        Self::with_source(RttStore::Dense(matrix), profiles, noise, seed)
    }

    /// Build a network from explicit parts over any base-RTT store.
    ///
    /// # Panics
    /// Panics if the profile count does not match the node count or the
    /// noise model is invalid.
    pub fn with_source(
        rtt: RttStore,
        profiles: Vec<NoiseProfile>,
        noise: FluctuationModel,
        seed: u64,
    ) -> Self {
        assert_eq!(
            profiles.len(),
            rtt.node_count(),
            "one noise profile per node required"
        );
        noise.validate();
        Self {
            rtt,
            profiles,
            noise,
            seed,
            faults: FaultPlan::default(),
            cache: ProfileCache::default(),
        }
    }

    /// Attach a fault plan. The default plan is empty (no faults); an
    /// empty plan keeps every probe API byte-identical to the seed
    /// behavior.
    ///
    /// # Panics
    /// Panics if the plan is invalid (see [`FaultPlan::validate`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        plan.validate();
        self.faults = plan;
    }

    /// The attached fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Whether `node` is up at driver time `tick` under the attached
    /// churn schedule. Always true with an empty plan.
    pub fn node_up(&self, node: usize, tick: u64) -> bool {
        self.faults.node_up(self.seed, node, tick)
    }

    /// A network over a materialized King-like topology with uniform
    /// clean profiles and King-grade measurement noise.
    ///
    /// The resulting network is **dense**: it takes the topology by
    /// value and moves (never copies) the packed RTT triangle — ~n²/2
    /// floats, 1.5M+ f64 at paper scale — so [`Network::matrix`] returns
    /// `Some`. For populations where O(n²) storage is impractical, use
    /// [`Network::from_king_streamed`], which serves bit-identical base
    /// RTTs from O(n) state.
    pub fn from_king(topology: Topology, seed: u64) -> Self {
        let n = topology.matrix.len();
        Self::new(
            topology.matrix,
            vec![NoiseProfile::clean(); n],
            FluctuationModel::king_default(),
            seed,
        )
    }

    /// A network over a **streamed** King-like topology: no matrix is
    /// materialized (so [`Network::matrix`] returns `None`); every pair's
    /// base RTT is recomputed on demand from the `(topology seed,
    /// min(a,b), max(a,b))` hash stream and is bit-identical to what
    /// [`Network::from_king`] would serve for the same config and seed.
    /// Memory is O(n), making million-node populations constructible.
    ///
    /// # Panics
    /// Panics if the config is invalid (see [`KingConfig::place`]).
    pub fn from_king_streamed(config: KingConfig, seed: u64) -> Self {
        Self::from_synth(SynthRtt::new(config, seed), seed)
    }

    /// A network over an already-placed streamed source (uniform clean
    /// profiles, King-grade noise). Use when the caller also needs the
    /// ground-truth placement — build the [`SynthRtt`] once, read its
    /// placement, then hand it over.
    pub fn from_synth(synth: SynthRtt, seed: u64) -> Self {
        let n = synth.node_count();
        Self::with_source(
            RttStore::Synth(synth),
            vec![NoiseProfile::clean(); n],
            FluctuationModel::king_default(),
            seed,
        )
    }

    /// A network over a generated PlanetLab deployment (per-node
    /// profiles, PlanetLab-grade noise). Always dense — the deployment
    /// generator's pathological-host draws are sequential, so there is no
    /// streamed equivalent — and takes the deployment by value so the
    /// O(n²) matrix is moved, not copied.
    pub fn from_planetlab(pl: PlanetLab, seed: u64) -> Self {
        Self::new(pl.topology.matrix, pl.profiles, pl.noise, seed)
    }

    /// A noiseless network over an arbitrary matrix (tests, baselines).
    pub fn noiseless(matrix: RttMatrix, seed: u64) -> Self {
        let n = matrix.len();
        Self::new(
            matrix,
            vec![NoiseProfile::clean(); n],
            FluctuationModel::noiseless(),
            seed,
        )
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.rtt.node_count()
    }

    /// Always false (sources hold ≥ 2 nodes).
    pub fn is_empty(&self) -> bool {
        self.rtt.node_count() == 0
    }

    /// Nominal (fluctuation-free) RTT between two nodes, ms.
    pub fn base_rtt(&self, a: usize, b: usize) -> f64 {
        self.rtt.base_rtt(a, b)
    }

    /// The dense base matrix, when this network has one. Streamed
    /// networks (built via [`Network::from_king_streamed`]) return
    /// `None`: there is no O(n²) matrix to hand out. Code that only
    /// needs a population-scale statistic should use
    /// [`Network::median_base_rtt`], which works for every source.
    pub fn matrix(&self) -> Option<&RttMatrix> {
        self.rtt.matrix()
    }

    /// The base-RTT store.
    pub fn rtt_store(&self) -> &RttStore {
        &self.rtt
    }

    /// Median pairwise base RTT: exact for dense networks, a
    /// deterministic streamed-sample estimate for generator-backed ones.
    /// This is the source-agnostic replacement for
    /// `network.matrix().median()`.
    pub fn median_base_rtt(&self) -> f64 {
        self.rtt.median_base_rtt()
    }

    /// Measure the RTT from `a` to `b` with probe nonce `nonce`.
    ///
    /// The nonce makes repeated probes between the same pair independent:
    /// callers advance it per probe (the simulation driver uses its global
    /// step counter). The same `(a, b, nonce)` — in either direction —
    /// always reproduces the same measurement.
    ///
    /// # Panics
    /// Panics if `a == b` or either index is out of range.
    pub fn measure_rtt(&self, a: usize, b: usize, nonce: u64) -> f64 {
        assert!(a != b, "a node cannot probe itself");
        let base = self.rtt.base_rtt(a, b);
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let pair_key = derive((lo as u64) << 32 | hi as u64, streams::PROB); // "PROB"
        let mut rng = stream_rng2(self.seed, pair_key, nonce);
        self.noise.measure(base, self.combined_profile(a, b), &mut rng)
    }

    /// The combined noise profile of a probe between `a` and `b`, from
    /// the lazily built pairwise table. Bit-identical to computing
    /// `profiles[a].combine(&profiles[b])` on every probe.
    fn combined_profile(&self, a: usize, b: usize) -> &NoiseProfile {
        self.cache
            .0
            .get_or_init(|| ProfileTable::build(&self.profiles))
            .pair(a, b)
    }

    /// The node's noise profile.
    pub fn profile(&self, node: usize) -> &NoiseProfile {
        &self.profiles[node]
    }

    /// Measure the RTT as deployed coordinate systems do: the **median of
    /// three back-to-back probes**. Probe smoothing is universal in
    /// practice (the King method takes the best of repeated queries;
    /// Vivaldi implementations filter per-neighbor RTTs), and it is what
    /// keeps a single OS-scheduling spike from polluting an embedding
    /// step. Deterministic in `(a, b, nonce)` like
    /// [`Network::measure_rtt`]; consumes nonces `3·nonce .. 3·nonce+3`
    /// of the pair's probe stream.
    pub fn measure_rtt_smoothed(&self, a: usize, b: usize, nonce: u64) -> f64 {
        let mut probes = [
            self.measure_rtt(a, b, nonce.wrapping_mul(3)),
            self.measure_rtt(a, b, nonce.wrapping_mul(3).wrapping_add(1)),
            self.measure_rtt(a, b, nonce.wrapping_mul(3).wrapping_add(2)),
        ];
        probes.sort_by(f64::total_cmp);
        probes[1] // audit:allow(PANIC02): median of a fixed-size [f64; 3] array
    }

    /// Fallible variant of [`Network::measure_rtt`]: the probe is gated
    /// through the attached [`FaultPlan`] before it is measured.
    ///
    /// A probe to or from a crashed node times out; otherwise the plan's
    /// per-link loss/timeout draw (a pure function of `(seed, a, b,
    /// nonce)` on a stream disjoint from measurement noise) decides its
    /// fate. A completed probe returns exactly the value
    /// [`Network::measure_rtt`] would: enabling faults never perturbs
    /// the measurements that do get through, and an empty plan makes
    /// this a zero-cost wrapper.
    ///
    /// # Panics
    /// Panics if `a == b` or either index is out of range.
    pub fn try_measure_rtt(&self, a: usize, b: usize, nonce: u64, tick: u64) -> ProbeOutcome {
        if self.faults.is_empty() {
            return ProbeOutcome::Ok(self.measure_rtt(a, b, nonce));
        }
        if !self.node_up(a, tick) || !self.node_up(b, tick) {
            return ProbeOutcome::TimedOut;
        }
        match self.faults.probe_fate(self.seed, a, b, nonce) {
            Some(failure) => failure,
            None => ProbeOutcome::Ok(self.measure_rtt(a, b, nonce)),
        }
    }

    /// Fallible variant of [`Network::measure_rtt_smoothed`]. The
    /// median-of-3 exchange is gated as one logical probe: a single
    /// fault draw at `nonce` decides whether the whole exchange
    /// completes, so a successful faulty-mode probe is bit-identical to
    /// the clean smoothed measurement at the same nonce.
    ///
    /// # Panics
    /// Panics if `a == b` or either index is out of range.
    pub fn try_measure_rtt_smoothed(
        &self,
        a: usize,
        b: usize,
        nonce: u64,
        tick: u64,
    ) -> ProbeOutcome {
        if self.faults.is_empty() {
            return ProbeOutcome::Ok(self.measure_rtt_smoothed(a, b, nonce));
        }
        if !self.node_up(a, tick) || !self.node_up(b, tick) {
            return ProbeOutcome::TimedOut;
        }
        match self.faults.probe_fate(self.seed, a, b, nonce) {
            Some(failure) => failure,
            None => ProbeOutcome::Ok(self.measure_rtt_smoothed(a, b, nonce)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinggen::KingConfig;
    use crate::planetlab::PlanetLabConfig;
    use ices_stats::OnlineStats;

    fn network() -> Network {
        let topo = KingConfig::small(40).generate(9);
        Network::from_king(topo, 9)
    }

    #[test]
    fn measurement_is_deterministic_per_nonce() {
        let net = network();
        assert_eq!(net.measure_rtt(3, 17, 5), net.measure_rtt(3, 17, 5));
        assert_ne!(net.measure_rtt(3, 17, 5), net.measure_rtt(3, 17, 6));
    }

    #[test]
    fn measurement_symmetric_in_direction() {
        let net = network();
        assert_eq!(net.measure_rtt(3, 17, 5), net.measure_rtt(17, 3, 5));
    }

    #[test]
    fn measurements_track_base_rtt() {
        let net = network();
        let base = net.base_rtt(1, 2);
        let mut s = OnlineStats::new();
        for nonce in 0..5000 {
            s.push(net.measure_rtt(1, 2, nonce));
        }
        assert!(
            (s.mean() - base).abs() / base < 0.05,
            "mean {} vs base {base}",
            s.mean()
        );
    }

    #[test]
    fn noiseless_network_returns_base() {
        let topo = KingConfig::small(10).generate(4);
        let net = Network::noiseless(topo.matrix.clone(), 4);
        for nonce in 0..10 {
            assert_eq!(net.measure_rtt(0, 5, nonce), net.base_rtt(0, 5));
        }
    }

    #[test]
    fn planetlab_network_uses_profiles() {
        let pl = PlanetLabConfig::small(50).generate(2);
        let net = Network::from_planetlab(pl.clone(), 2);
        let p = pl.pathological[0];
        let normal = (0..50)
            .find(|&i| !pl.pathological.contains(&i))
            .expect("normal node");
        let partner = (0..50)
            .find(|&i| i != p && i != normal && !pl.pathological.contains(&i))
            .expect("partner");

        let mut s_path = OnlineStats::new();
        let mut s_norm = OnlineStats::new();
        for nonce in 0..4000 {
            let b = net.base_rtt(p, partner);
            s_path.push((net.measure_rtt(p, partner, nonce) - b) / b);
            let b = net.base_rtt(normal, partner);
            s_norm.push((net.measure_rtt(normal, partner, nonce) - b) / b);
        }
        assert!(
            s_path.variance() > 2.0 * s_norm.variance(),
            "pathological rel-var {} vs normal {}",
            s_path.variance(),
            s_norm.variance()
        );
    }

    #[test]
    fn smoothed_probe_is_median_and_deterministic() {
        let net = network();
        let m = net.measure_rtt_smoothed(3, 17, 9);
        assert_eq!(m, net.measure_rtt_smoothed(3, 17, 9));
        let mut probes = [
            net.measure_rtt(3, 17, 27),
            net.measure_rtt(3, 17, 28),
            net.measure_rtt(3, 17, 29),
        ];
        probes.sort_by(f64::total_cmp);
        assert_eq!(m, probes[1]);
    }

    #[test]
    fn smoothed_probe_suppresses_spikes() {
        // With a spiky model, the median-of-3 variance must be well below
        // the single-probe variance.
        let pl = PlanetLabConfig::small(40).generate(8);
        let mut noisy = pl.noise;
        noisy.spike_probability = 0.05;
        let net = Network::new(
            pl.topology.matrix.clone(),
            vec![crate::fluctuation::NoiseProfile::clean(); 40],
            noisy,
            8,
        );
        let mut raw = OnlineStats::new();
        let mut smoothed = OnlineStats::new();
        for nonce in 0..4000 {
            raw.push(net.measure_rtt(0, 1, nonce + 100_000));
            smoothed.push(net.measure_rtt_smoothed(0, 1, nonce));
        }
        assert!(
            smoothed.variance() < raw.variance() / 2.0,
            "smoothed var {} vs raw var {}",
            smoothed.variance(),
            raw.variance()
        );
    }

    #[test]
    fn try_measure_with_empty_plan_matches_infallible_path() {
        let net = network();
        for nonce in 0..32 {
            assert_eq!(
                net.try_measure_rtt(3, 17, nonce, 0),
                crate::faults::ProbeOutcome::Ok(net.measure_rtt(3, 17, nonce))
            );
            assert_eq!(
                net.try_measure_rtt_smoothed(3, 17, nonce, 0),
                crate::faults::ProbeOutcome::Ok(net.measure_rtt_smoothed(3, 17, nonce))
            );
        }
    }

    #[test]
    fn completed_faulty_probes_match_clean_measurements() {
        let mut net = network();
        net.set_fault_plan(crate::faults::FaultPlan::lossy(0.3, 0.1));
        let clean = network();
        let mut completed = 0;
        for nonce in 0..200 {
            if let crate::faults::ProbeOutcome::Ok(rtt) = net.try_measure_rtt(2, 9, nonce, 0) {
                assert_eq!(rtt, clean.measure_rtt(2, 9, nonce));
                completed += 1;
            }
            if let crate::faults::ProbeOutcome::Ok(rtt) =
                net.try_measure_rtt_smoothed(2, 9, nonce, 0)
            {
                assert_eq!(rtt, clean.measure_rtt_smoothed(2, 9, nonce));
            }
        }
        assert!(completed > 80, "~60% of probes should complete: {completed}");
    }

    #[test]
    fn probes_to_crashed_nodes_time_out() {
        use crate::faults::{ChurnModel, FaultPlan, ProbeOutcome};
        let mut net = network();
        net.set_fault_plan(
            FaultPlan::none().with_node_churn(5, ChurnModel::new(u64::MAX, 0.999_999)),
        );
        assert!(!net.node_up(5, 0), "node 5 should be crashed");
        assert!(net.node_up(6, 0), "other nodes stay up");
        assert_eq!(net.try_measure_rtt(5, 6, 0, 0), ProbeOutcome::TimedOut);
        assert_eq!(net.try_measure_rtt(6, 5, 0, 0), ProbeOutcome::TimedOut);
        assert!(net.try_measure_rtt(6, 7, 0, 0).is_ok());
    }

    #[test]
    fn combined_profile_table_matches_direct_combine() {
        let pl = PlanetLabConfig::small(50).generate(2);
        let net = Network::from_planetlab(pl, 2);
        for a in 0..net.len() {
            for b in 0..net.len() {
                if a == b {
                    continue;
                }
                let direct = net.profiles[a].combine(&net.profiles[b]);
                let cached = net.combined_profile(a, b);
                assert!(
                    same_bits(&direct, cached),
                    "pair ({a}, {b}): {direct:?} vs {cached:?}"
                );
            }
        }
    }

    #[test]
    fn profile_cache_is_invisible_to_clone_and_eq() {
        let net = network();
        // Warm the cache on one side only; equality and measurements
        // must not notice.
        let warm = net.clone();
        warm.measure_rtt(3, 17, 5);
        assert_eq!(net, warm);
        assert_eq!(net.measure_rtt(3, 17, 5), warm.measure_rtt(3, 17, 5));
    }

    #[test]
    fn fault_plan_survives_serde() {
        let mut net = network();
        net.set_fault_plan(crate::faults::FaultPlan::lossy(0.1, 0.0));
        let json = serde_json::to_string(&net).expect("serialize");
        let back: Network = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(net, back);
    }

    #[test]
    fn streamed_network_matches_dense_king_bitwise() {
        let config = KingConfig::small(40);
        let dense = Network::from_king(config.clone().generate(9), 9);
        let streamed = Network::from_king_streamed(config, 9);
        assert!(dense.matrix().is_some());
        assert!(streamed.matrix().is_none(), "no O(n²) state in a streamed net");
        assert_eq!(streamed.len(), 40);
        for nonce in 0..16 {
            assert_eq!(
                dense.measure_rtt(3, 17, nonce).to_bits(),
                streamed.measure_rtt(3, 17, nonce).to_bits(),
                "noisy measurements must agree bit-for-bit"
            );
            assert_eq!(
                dense.measure_rtt_smoothed(17, 3, nonce).to_bits(),
                streamed.measure_rtt_smoothed(17, 3, nonce).to_bits()
            );
        }
        for a in 0..40 {
            for b in 0..40 {
                if a != b {
                    assert_eq!(
                        dense.base_rtt(a, b).to_bits(),
                        streamed.base_rtt(a, b).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn streamed_network_faults_and_serde_work_without_a_matrix() {
        let mut net = Network::from_king_streamed(KingConfig::small(30), 4);
        net.set_fault_plan(crate::faults::FaultPlan::lossy(0.2, 0.05));
        let mut completed = 0;
        for nonce in 0..100 {
            if net.try_measure_rtt(1, 2, nonce, 0).is_ok() {
                completed += 1;
            }
        }
        assert!(completed > 40 && completed < 100, "faults gate probes: {completed}");
        let json = serde_json::to_string(&net).expect("serialize");
        let back: Network = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(net, back);
        assert_eq!(net.measure_rtt(1, 2, 7), back.measure_rtt(1, 2, 7));
    }

    #[test]
    fn median_base_rtt_is_exact_on_dense_networks() {
        let topo = KingConfig::small(40).generate(9);
        let expected = topo.matrix.median();
        let net = Network::from_king(topo, 9);
        assert_eq!(net.median_base_rtt(), expected);
    }

    #[test]
    fn streamed_median_estimate_tracks_dense_median() {
        let config = KingConfig::small(120);
        let dense = Network::from_king(config.clone().generate(6), 6);
        let streamed = Network::from_king_streamed(config, 6);
        let exact = dense.median_base_rtt();
        let estimate = streamed.median_base_rtt();
        assert!(
            (estimate - exact).abs() / exact < 0.25,
            "estimate {estimate} vs exact {exact}"
        );
    }

    #[test]
    #[should_panic(expected = "cannot probe itself")]
    fn rejects_self_probe() {
        network().measure_rtt(4, 4, 0);
    }

    #[test]
    #[should_panic(expected = "one noise profile per node")]
    fn rejects_profile_count_mismatch() {
        let topo = KingConfig::small(10).generate(1);
        Network::new(
            topo.matrix,
            vec![NoiseProfile::clean(); 9],
            FluctuationModel::king_default(),
            1,
        );
    }
}
