//! RTT fluctuation models.
//!
//! §2 of the paper isolates two noise sources on top of the nominal RTT:
//! transient network congestion and operating-system scheduling in the
//! measuring hosts. Following the constancy results of Zhang et al. the
//! process is *stationary* at the timescales embedding operates on. A
//! measurement is modeled as
//!
//! ```text
//! measured = base · C + J + S
//! ```
//!
//! where `C` is a lognormal congestion factor with median 1 (queueing
//! along the path scales with path length), `J` is zero-mean gaussian
//! jitter from timestamping, and `S` is a rare heavy-tailed Pareto spike
//! (an OS scheduling stall — overwhelmingly common on busy PlanetLab
//! hosts, rare in the King measurements). Negative outcomes are clamped
//! to a physical floor.

use ices_stats::sample;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Parameters of the stationary measurement-noise process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FluctuationModel {
    /// σ of the lognormal congestion factor (median factor is 1).
    pub congestion_sigma: f64,
    /// Standard deviation of additive gaussian jitter, in ms.
    pub jitter_ms: f64,
    /// Probability that a probe hits a scheduling spike.
    pub spike_probability: f64,
    /// Pareto scale (minimum spike size), in ms.
    pub spike_scale_ms: f64,
    /// Pareto shape; smaller is heavier-tailed. Must exceed 1 for the
    /// spikes to have finite mean.
    pub spike_shape: f64,
    /// Smallest RTT a measurement can report, in ms.
    pub floor_ms: f64,
}

impl FluctuationModel {
    /// Noise typical of the King measurements: mild congestion spread,
    /// sub-millisecond timestamp jitter, spikes effectively absent.
    pub fn king_default() -> Self {
        Self {
            congestion_sigma: 0.05,
            jitter_ms: 0.3,
            spike_probability: 0.0005,
            spike_scale_ms: 10.0,
            spike_shape: 2.5,
            floor_ms: 0.1,
        }
    }

    /// Noise typical of PlanetLab hosts: visibly noisier timestamps and
    /// frequent scheduling stalls on oversubscribed machines.
    pub fn planetlab_default() -> Self {
        Self {
            congestion_sigma: 0.08,
            jitter_ms: 1.0,
            spike_probability: 0.002,
            spike_scale_ms: 20.0,
            spike_shape: 2.0,
            floor_ms: 0.1,
        }
    }

    /// A noise-free model (measurements return the base RTT exactly);
    /// useful for tests that need determinism of the *embedding* alone.
    pub fn noiseless() -> Self {
        Self {
            congestion_sigma: 0.0,
            jitter_ms: 0.0,
            spike_probability: 0.0,
            spike_scale_ms: 1.0,
            spike_shape: 2.0,
            floor_ms: 0.01,
        }
    }

    /// Validate parameter sanity.
    ///
    /// # Panics
    /// Panics on negative variances/probabilities or a non-positive floor.
    pub fn validate(&self) {
        assert!(self.congestion_sigma >= 0.0, "congestion_sigma < 0");
        assert!(self.jitter_ms >= 0.0, "jitter_ms < 0");
        assert!(
            (0.0..=1.0).contains(&self.spike_probability),
            "spike_probability outside [0,1]"
        );
        assert!(self.spike_scale_ms > 0.0, "spike_scale_ms <= 0");
        assert!(self.spike_shape > 1.0, "spike_shape must exceed 1");
        assert!(self.floor_ms > 0.0, "floor_ms <= 0");
    }

    /// Draw one measured RTT for a path with the given nominal RTT,
    /// with per-endpoint noise amplification `profile`.
    pub fn measure<R: Rng + ?Sized>(
        &self,
        base_rtt_ms: f64,
        profile: &NoiseProfile,
        rng: &mut R,
    ) -> f64 {
        assert!(
            base_rtt_ms > 0.0 && base_rtt_ms.is_finite(),
            "base RTT must be positive, got {base_rtt_ms}"
        );
        let sigma = self.congestion_sigma * profile.congestion_mult;
        let congestion = if sigma > 0.0 {
            sample::lognormal(rng, 0.0, sigma)
        } else {
            1.0
        };
        let jitter_sd = self.jitter_ms * profile.jitter_mult;
        let jitter = if jitter_sd > 0.0 {
            sample::normal(rng, 0.0, jitter_sd)
        } else {
            0.0
        };
        let spike_p = (self.spike_probability * profile.spike_mult).min(1.0);
        let spike = if spike_p > 0.0 && rng.random::<f64>() < spike_p {
            sample::pareto(rng, self.spike_scale_ms, self.spike_shape)
        } else {
            0.0
        };
        (base_rtt_ms * congestion + jitter + spike).max(self.floor_ms)
    }
}

/// Per-node noise amplification.
///
/// The fluctuation a probe experiences depends on *both* endpoints (each
/// contributes its own OS scheduling and access congestion); profiles
/// combine multiplicatively-on-average via [`NoiseProfile::combine`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseProfile {
    /// Multiplier on the congestion σ.
    pub congestion_mult: f64,
    /// Multiplier on the jitter standard deviation.
    pub jitter_mult: f64,
    /// Multiplier on the spike probability.
    pub spike_mult: f64,
}

impl Default for NoiseProfile {
    fn default() -> Self {
        Self::clean()
    }
}

impl NoiseProfile {
    /// A well-behaved host: the model's base noise, unamplified.
    pub fn clean() -> Self {
        Self {
            congestion_mult: 1.0,
            jitter_mult: 1.0,
            spike_mult: 1.0,
        }
    }

    /// A pathologically noisy host (the paper's "nodes in India" with
    /// adverse network conditions and >0.75 average relative errors).
    pub fn pathological() -> Self {
        Self {
            congestion_mult: 6.0,
            jitter_mult: 10.0,
            spike_mult: 25.0,
        }
    }

    /// Combine the two endpoints' profiles into a per-path profile. The
    /// average of the endpoint multipliers: each endpoint contributes its
    /// own measurement machinery to the probe.
    pub fn combine(&self, other: &NoiseProfile) -> NoiseProfile {
        NoiseProfile {
            congestion_mult: 0.5 * (self.congestion_mult + other.congestion_mult),
            jitter_mult: 0.5 * (self.jitter_mult + other.jitter_mult),
            spike_mult: 0.5 * (self.spike_mult + other.spike_mult),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ices_stats::rng::stream_rng;
    use ices_stats::OnlineStats;

    fn stats_for(model: &FluctuationModel, profile: &NoiseProfile, base: f64) -> OnlineStats {
        let mut rng = stream_rng(7, 0);
        let mut s = OnlineStats::new();
        for _ in 0..50_000 {
            s.push(model.measure(base, profile, &mut rng));
        }
        s
    }

    #[test]
    fn noiseless_returns_base_exactly() {
        let m = FluctuationModel::noiseless();
        let mut rng = stream_rng(1, 0);
        for base in [1.0, 50.0, 300.0] {
            assert_eq!(m.measure(base, &NoiseProfile::clean(), &mut rng), base);
        }
    }

    #[test]
    fn king_noise_is_centered_on_base() {
        let m = FluctuationModel::king_default();
        let s = stats_for(&m, &NoiseProfile::clean(), 100.0);
        // Lognormal(0, 0.04) has mean ≈ 1.0008; spikes add ~0.017 on average.
        assert!((s.mean() - 100.0).abs() < 1.0, "mean = {}", s.mean());
        assert!(s.min() >= m.floor_ms);
    }

    #[test]
    fn planetlab_noisier_than_king() {
        let king = stats_for(
            &FluctuationModel::king_default(),
            &NoiseProfile::clean(),
            100.0,
        );
        let pl = stats_for(
            &FluctuationModel::planetlab_default(),
            &NoiseProfile::clean(),
            100.0,
        );
        assert!(
            pl.variance() > 1.3 * king.variance(),
            "planetlab var {} should dominate king var {}",
            pl.variance(),
            king.variance()
        );
    }

    #[test]
    fn pathological_profile_amplifies() {
        let m = FluctuationModel::planetlab_default();
        let clean = stats_for(&m, &NoiseProfile::clean(), 100.0);
        let path = stats_for(&m, &NoiseProfile::pathological(), 100.0);
        assert!(
            path.variance() > 4.0 * clean.variance(),
            "pathological var {} vs clean var {}",
            path.variance(),
            clean.variance()
        );
    }

    #[test]
    fn measurements_never_below_floor() {
        let mut m = FluctuationModel::planetlab_default();
        m.jitter_ms = 50.0; // jitter often exceeds a 1 ms base
        let s = stats_for(&m, &NoiseProfile::clean(), 1.0);
        assert!(s.min() >= m.floor_ms);
    }

    #[test]
    fn combine_averages_multipliers() {
        let c = NoiseProfile::clean().combine(&NoiseProfile::pathological());
        assert!((c.jitter_mult - 5.5).abs() < 1e-12);
        assert!((c.congestion_mult - 3.5).abs() < 1e-12);
        assert!((c.spike_mult - 13.0).abs() < 1e-12);
    }

    #[test]
    fn validate_accepts_defaults() {
        FluctuationModel::king_default().validate();
        FluctuationModel::planetlab_default().validate();
        FluctuationModel::noiseless().validate();
    }

    #[test]
    #[should_panic(expected = "spike_shape must exceed 1")]
    fn validate_rejects_infinite_mean_spikes() {
        let mut m = FluctuationModel::king_default();
        m.spike_shape = 0.9;
        m.validate();
    }

    #[test]
    #[should_panic(expected = "base RTT must be positive")]
    fn measure_rejects_zero_base() {
        let m = FluctuationModel::king_default();
        let mut rng = stream_rng(2, 0);
        m.measure(0.0, &NoiseProfile::clean(), &mut rng);
    }
}
