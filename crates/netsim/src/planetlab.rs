//! Synthetic PlanetLab-like deployment.
//!
//! The paper's live experiments ran on 280 world-wide PlanetLab nodes in
//! December 2006. Relative to the King simulations, the distinguishing
//! features are (a) far noisier measurements — PlanetLab machines are
//! heavily time-shared, so probes hit scheduler stalls — and (b) a small
//! set of badly connected hosts (the paper traces its prediction-error
//! tail to three nodes in India with >0.75 average relative errors). This
//! module layers both on top of the [`crate::kinggen`] generator.

use crate::fluctuation::{FluctuationModel, NoiseProfile};
use crate::kinggen::{KingConfig, Topology};
use ices_stats::rng::stream_rng;
use ices_stats::sample;
use serde::{Deserialize, Serialize};
use ices_stats::streams;

/// Configuration for the synthetic PlanetLab deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanetLabConfig {
    /// Number of hosts (the paper used 280).
    pub nodes: usize,
    /// Number of pathological hosts with adverse network conditions.
    pub pathological_nodes: usize,
    /// Underlying topology generator (region structure is the same
    /// planet; only the node count differs from the King config).
    pub topology: KingConfig,
    /// Measurement-noise model for ordinary hosts.
    pub noise: FluctuationModel,
}

impl Default for PlanetLabConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

impl PlanetLabConfig {
    /// The paper's deployment scale: 280 nodes, 3 of them pathological.
    pub fn paper_scale() -> Self {
        Self {
            nodes: 280,
            pathological_nodes: 3,
            topology: KingConfig::small(280),
            noise: FluctuationModel::planetlab_default(),
        }
    }

    /// A smaller deployment with identical structure for tests.
    pub fn small(nodes: usize) -> Self {
        Self {
            nodes,
            pathological_nodes: if nodes >= 40 { 2 } else { 0 },
            topology: KingConfig::small(nodes),
            noise: FluctuationModel::planetlab_default(),
        }
    }

    /// Generate the deployment: topology plus per-node noise profiles.
    ///
    /// Pathological hosts are chosen deterministically from `seed` and
    /// additionally have their base RTTs to everyone inflated (bad
    /// transit), not just their measurement noise.
    ///
    /// # Panics
    /// Panics if `pathological_nodes >= nodes` or the node counts of the
    /// config and its topology disagree.
    pub fn generate(&self, seed: u64) -> PlanetLab {
        assert_eq!(
            self.nodes, self.topology.nodes,
            "config node count must match topology node count"
        );
        assert!(
            self.pathological_nodes < self.nodes,
            "cannot make every node pathological"
        );
        let mut topo = self.topology.generate(seed);
        let mut profiles = vec![NoiseProfile::clean(); self.nodes];

        let mut rng = stream_rng(seed, streams::PATH); // "PATH"
        let chosen = sample::sample_indices(&mut rng, self.nodes, self.pathological_nodes);
        for &p in &chosen {
            profiles[p] = NoiseProfile::pathological();
            // Bad local connectivity: inflate every base RTT touching the
            // node by a random 1.5–3× factor.
            for other in 0..self.nodes {
                if other != p {
                    let factor = sample::uniform(&mut rng, 1.5, 3.0);
                    let rtt = topo.matrix.get(p, other);
                    topo.matrix.set(p, other, rtt * factor);
                }
            }
        }

        PlanetLab {
            topology: topo,
            profiles,
            pathological: chosen,
            noise: self.noise,
        }
    }
}

/// A generated PlanetLab-like deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanetLab {
    /// Base topology (with pathological nodes' RTTs already inflated).
    pub topology: Topology,
    /// Per-node measurement-noise profiles.
    pub profiles: Vec<NoiseProfile>,
    /// Indices of the pathological nodes.
    pub pathological: Vec<usize>,
    /// The measurement-noise model.
    pub noise: FluctuationModel,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_is_280_nodes_3_pathological() {
        let cfg = PlanetLabConfig::paper_scale();
        assert_eq!(cfg.nodes, 280);
        assert_eq!(cfg.pathological_nodes, 3);
    }

    #[test]
    fn generate_marks_pathological_nodes() {
        let pl = PlanetLabConfig::small(60).generate(5);
        assert_eq!(pl.pathological.len(), 2);
        for &p in &pl.pathological {
            assert_eq!(pl.profiles[p], NoiseProfile::pathological());
        }
        let clean_count = pl
            .profiles
            .iter()
            .filter(|&&pr| pr == NoiseProfile::clean())
            .count();
        assert_eq!(clean_count, 58);
    }

    #[test]
    fn pathological_nodes_have_inflated_rtts() {
        let cfg = PlanetLabConfig::small(60);
        let base = cfg.topology.generate(5);
        let pl = cfg.generate(5);
        let p = pl.pathological[0];
        let mut inflated = 0;
        for other in 0..60 {
            if other != p && pl.topology.matrix.get(p, other) > base.matrix.get(p, other) * 1.4 {
                inflated += 1;
            }
        }
        assert!(inflated > 50, "only {inflated} RTTs inflated");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = PlanetLabConfig::small(50).generate(3);
        let b = PlanetLabConfig::small(50).generate(3);
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_deployments_have_no_pathological_nodes() {
        let pl = PlanetLabConfig::small(20).generate(1);
        assert!(pl.pathological.is_empty());
    }
}
