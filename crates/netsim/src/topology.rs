//! Base-RTT matrices.
//!
//! An [`RttMatrix`] holds the *nominal* (fluctuation-free) RTT between
//! every pair of nodes — the synthetic stand-in for the King dataset. It
//! is symmetric with a zero diagonal, stored as a packed upper triangle.

use serde::{Deserialize, Serialize};

/// Symmetric matrix of base RTTs in milliseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RttMatrix {
    n: usize,
    /// Packed strict upper triangle, row-major: entry `(i, j)` for `i < j`
    /// lives at `i*(2n−i−1)/2 + (j−i−1)`.
    upper: Vec<f64>,
}

impl RttMatrix {
    /// Build a matrix by evaluating `f(i, j)` for every pair `i < j`.
    ///
    /// # Panics
    /// Panics if `n < 2` or `f` produces a non-positive or non-finite RTT.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        assert!(n >= 2, "a topology needs at least 2 nodes, got {n}");
        let mut upper = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                let rtt = f(i, j);
                assert!(
                    rtt.is_finite() && rtt > 0.0,
                    "RTT({i},{j}) must be positive and finite, got {rtt}"
                );
                upper.push(rtt);
            }
        }
        Self { n, upper }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false: construction requires `n ≥ 2`.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j);
        i * (2 * self.n - i - 1) / 2 + (j - i - 1)
    }

    /// Base RTT between `a` and `b` in milliseconds; 0 for `a == b`.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    pub fn get(&self, a: usize, b: usize) -> f64 {
        assert!(a < self.n && b < self.n, "node index out of range");
        if a == b {
            return 0.0;
        }
        let (i, j) = if a < b { (a, b) } else { (b, a) };
        self.upper[self.index(i, j)]
    }

    /// Overwrite the RTT for a pair (used by tests and synthetic tweaks).
    ///
    /// # Panics
    /// Panics on out-of-range indices, `a == b`, or invalid RTT values.
    pub fn set(&mut self, a: usize, b: usize, rtt: f64) {
        assert!(a < self.n && b < self.n, "node index out of range");
        assert!(a != b, "cannot set the diagonal");
        assert!(
            rtt.is_finite() && rtt > 0.0,
            "RTT must be positive and finite, got {rtt}"
        );
        let (i, j) = if a < b { (a, b) } else { (b, a) };
        let idx = self.index(i, j);
        self.upper[idx] = rtt;
    }

    /// All RTTs from node `a` to every other node (self excluded),
    /// as `(peer, rtt)` pairs.
    pub fn row(&self, a: usize) -> Vec<(usize, f64)> {
        (0..self.n)
            .filter(|&b| b != a)
            .map(|b| (b, self.get(a, b)))
            .collect()
    }

    /// Median RTT over all pairs.
    pub fn median(&self) -> f64 {
        let mut v = self.upper.clone();
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    }

    /// Fraction of node triples `(i, j, k)` for which the direct path
    /// `RTT(i,k)` exceeds the detour `RTT(i,j) + RTT(j,k)` by more than
    /// `slack` (relative) — a triangle-inequality-violation census.
    ///
    /// Sampled over at most `max_triples` deterministically chosen triples
    /// to stay cheap on 1740-node matrices.
    pub fn tiv_fraction(&self, slack: f64, max_triples: usize) -> f64 {
        assert!(max_triples > 0, "need at least one triple");
        let n = self.n;
        let mut violations = 0usize;
        let mut total = 0usize;
        // Deterministic low-discrepancy stride over triples.
        let mut state = 0x9E37_79B9u64;
        while total < max_triples {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            let i = (state >> 33) as usize % n;
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            let j = (state >> 33) as usize % n;
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            let k = (state >> 33) as usize % n;
            if i == j || j == k || i == k {
                continue;
            }
            total += 1;
            let direct = self.get(i, k);
            let detour = self.get(i, j) + self.get(j, k);
            if direct > detour * (1.0 + slack) {
                violations += 1;
            }
        }
        violations as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grid3() -> RttMatrix {
        // 3 nodes on a line: 0 --10-- 1 --10-- 2, direct 0-2 = 20.
        RttMatrix::from_fn(3, |i, j| ((j - i) as f64) * 10.0)
    }

    #[test]
    fn get_is_symmetric_with_zero_diagonal() {
        let m = grid3();
        assert_eq!(m.get(0, 1), 10.0);
        assert_eq!(m.get(1, 0), 10.0);
        assert_eq!(m.get(0, 2), 20.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn set_updates_both_directions() {
        let mut m = grid3();
        m.set(2, 0, 55.0);
        assert_eq!(m.get(0, 2), 55.0);
        assert_eq!(m.get(2, 0), 55.0);
        assert_eq!(m.get(0, 1), 10.0, "other entries untouched");
    }

    #[test]
    fn row_excludes_self() {
        let m = grid3();
        let row = m.row(1);
        assert_eq!(row, vec![(0, 10.0), (2, 10.0)]);
    }

    #[test]
    fn median_of_known_matrix() {
        let m = grid3(); // entries 10, 20, 10
        assert_eq!(m.median(), 10.0);
    }

    #[test]
    fn metric_matrix_has_no_tivs() {
        // RTTs from a genuine metric (points on a line) violate nothing.
        let m = RttMatrix::from_fn(10, |i, j| ((j - i) as f64) * 5.0);
        assert_eq!(m.tiv_fraction(0.0, 2000), 0.0);
    }

    #[test]
    fn constructed_tiv_is_detected() {
        let mut m = RttMatrix::from_fn(3, |_, _| 10.0);
        m.set(0, 2, 100.0); // direct much longer than 10+10 detour
        let f = m.tiv_fraction(0.0, 3000);
        // Of the valid ordered triples, those with (i,k) = (0,2) or (2,0)
        // and j = 1 violate: 2 of 6 orderings.
        assert!(f > 0.2 && f < 0.45, "tiv fraction = {f}");
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_zero_rtt() {
        RttMatrix::from_fn(2, |_, _| 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_rejects_bad_index() {
        grid3().get(0, 3);
    }

    #[test]
    fn serde_roundtrip() {
        let m = grid3();
        let json = serde_json::to_string(&m).expect("serialize");
        let back: RttMatrix = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(m, back);
    }

    proptest! {
        #[test]
        fn packing_roundtrips(n in 2usize..12) {
            // Fill with a pair-unique value and verify retrieval.
            let m = RttMatrix::from_fn(n, |i, j| (i * 100 + j + 1) as f64);
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        prop_assert_eq!(m.get(i, j), 0.0);
                    } else {
                        let (a, b) = if i < j { (i, j) } else { (j, i) };
                        prop_assert_eq!(m.get(i, j), (a * 100 + b + 1) as f64);
                    }
                }
            }
        }
    }
}
