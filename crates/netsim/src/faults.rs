//! Deterministic fault injection: lossy probes, timeouts, and node churn.
//!
//! Real deployments of coordinate systems (King-style measurement hosts,
//! PlanetLab) do not enjoy the clean world of [`crate::network`]: probes
//! are dropped by the network, time out against overloaded hosts, and
//! whole nodes — including trusted Surveyors — crash and rejoin. A
//! [`FaultPlan`] describes that unreliability as three orthogonal pieces:
//!
//! * **per-link probe faults** — every logical probe is lost with
//!   probability `loss_probability` or times out with probability
//!   `timeout_probability` ([`LinkFaults`]);
//! * **population churn** — simulated time is divided into epochs of
//!   `epoch_ticks`; in each epoch a node is crashed (down) with
//!   probability `down_probability` and rejoins at the next epoch
//!   boundary ([`ChurnModel`]);
//! * **per-node churn overrides** — e.g. a separate (usually smaller)
//!   outage probability for Surveyor nodes, set by the driver that knows
//!   which ids are Surveyors.
//!
//! Every decision is a pure function of `(seed, endpoints, nonce)` or
//! `(seed, node, epoch)` through the same SplitMix64 stream discipline as
//! [`crate::Network::measure_rtt`], so fault injection is bit-for-bit
//! reproducible at any worker count and independent of probe order. The
//! default plan is empty: [`FaultPlan::is_empty`] short-circuits the
//! whole machinery, so fault-free simulations behave (and cost) exactly
//! as before.

use ices_stats::rng::{derive, derive2};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use ices_stats::streams;

/// The outcome of a fallible probe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProbeOutcome {
    /// The probe completed and measured this RTT (ms).
    Ok(f64),
    /// The probe (or its reply) was dropped in the network.
    Lost,
    /// The probe timed out — the path stalled or an endpoint is down.
    TimedOut,
}

impl ProbeOutcome {
    /// The measured RTT, if the probe completed.
    pub fn ok(self) -> Option<f64> {
        match self {
            ProbeOutcome::Ok(rtt) => Some(rtt),
            _ => None,
        }
    }

    /// Whether the probe completed.
    pub fn is_ok(&self) -> bool {
        matches!(self, ProbeOutcome::Ok(_))
    }

    /// Whether the probe failed (lost or timed out).
    pub fn failed(&self) -> bool {
        !self.is_ok()
    }
}

/// Per-probe link fault probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFaults {
    /// Probability that a probe is silently dropped.
    pub loss_probability: f64,
    /// Probability that a probe times out.
    pub timeout_probability: f64,
}

impl Default for LinkFaults {
    fn default() -> Self {
        Self {
            loss_probability: 0.0,
            timeout_probability: 0.0,
        }
    }
}

impl LinkFaults {
    /// Whether both probabilities are zero.
    pub fn is_empty(&self) -> bool {
        self.loss_probability == 0.0 && self.timeout_probability == 0.0
    }

    /// Validate.
    ///
    /// # Panics
    /// Panics if either probability is outside `[0, 1)` or their sum
    /// reaches 1 (some probes must be able to complete).
    pub fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.loss_probability),
            "loss_probability must be in [0,1), got {}",
            self.loss_probability
        );
        assert!(
            (0.0..1.0).contains(&self.timeout_probability),
            "timeout_probability must be in [0,1), got {}",
            self.timeout_probability
        );
        assert!(
            self.loss_probability + self.timeout_probability < 1.0,
            "loss + timeout probability must stay below 1"
        );
    }
}

/// Epoch-based crash/rejoin churn.
///
/// Time (the driver's tick or round counter) is divided into epochs of
/// `epoch_ticks`. In each epoch a node is down with `down_probability`,
/// decided deterministically per `(node, epoch)`; a crashed node rejoins
/// at the next epoch boundary with its state intact (a warm restart).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnModel {
    /// Epoch length in driver ticks (Vivaldi: neighbor-slot ticks; NPS:
    /// positioning rounds). Must be at least 1.
    pub epoch_ticks: u64,
    /// Probability a node spends a given epoch crashed.
    pub down_probability: f64,
}

impl ChurnModel {
    /// A churn model with the given epoch length and down probability.
    pub fn new(epoch_ticks: u64, down_probability: f64) -> Self {
        let m = Self {
            epoch_ticks,
            down_probability,
        };
        m.validate();
        m
    }

    /// The degenerate model of a node that is down for the entire run:
    /// probability exactly 1.0 in a single epoch spanning all of
    /// simulated time. Used as a per-node override to schedule total
    /// outages (e.g. a Surveyor blackout).
    pub fn permanent_outage() -> Self {
        Self::new(u64::MAX, 1.0)
    }

    /// Validate.
    ///
    /// # Panics
    /// Panics on a zero epoch length or a probability outside `[0, 1]`.
    /// Exactly 1.0 is allowed and means the node is always down.
    pub fn validate(&self) {
        assert!(self.epoch_ticks >= 1, "epoch_ticks must be at least 1");
        assert!(
            (0.0..=1.0).contains(&self.down_probability),
            "down_probability must be in [0,1], got {}",
            self.down_probability
        );
    }
}

/// A complete fault description attached to a [`crate::Network`].
///
/// The default plan injects nothing: every probe completes and every node
/// is permanently up, reproducing the fault-free behavior (and cost) of
/// the plain measurement API.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Per-probe loss/timeout probabilities, applied to every link.
    pub link: LinkFaults,
    /// Population-wide churn (None: nodes never crash).
    pub churn: Option<ChurnModel>,
    /// Per-node churn overrides (e.g. Surveyor outage schedules); a node
    /// listed here ignores the population-wide model entirely.
    pub node_churn: BTreeMap<usize, ChurnModel>,
}

impl FaultPlan {
    /// The empty plan: no faults (same as `Default`).
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with per-link faults only.
    pub fn lossy(loss_probability: f64, timeout_probability: f64) -> Self {
        let plan = Self {
            link: LinkFaults {
                loss_probability,
                timeout_probability,
            },
            ..Self::default()
        };
        plan.validate();
        plan
    }

    /// Add population-wide churn.
    pub fn with_churn(mut self, churn: ChurnModel) -> Self {
        churn.validate();
        self.churn = Some(churn);
        self
    }

    /// Override churn for one node (e.g. a Surveyor outage schedule).
    pub fn with_node_churn(mut self, node: usize, churn: ChurnModel) -> Self {
        churn.validate();
        self.node_churn.insert(node, churn);
        self
    }

    /// Whether the plan injects nothing at all. The fast path every
    /// fault-free simulation takes.
    pub fn is_empty(&self) -> bool {
        self.link.is_empty() && self.churn.is_none() && self.node_churn.is_empty()
    }

    /// Validate all components.
    ///
    /// # Panics
    /// Panics if any probability or epoch length is out of range.
    pub fn validate(&self) {
        self.link.validate();
        if let Some(c) = &self.churn {
            c.validate();
        }
        for c in self.node_churn.values() {
            c.validate();
        }
    }

    /// Whether `node` is up at driver time `tick` — a pure function of
    /// `(seed, node, epoch)`, shared by every caller that needs the same
    /// answer (probe gating, tick skipping, Surveyor availability).
    pub fn node_up(&self, seed: u64, node: usize, tick: u64) -> bool {
        let model = match self.node_churn.get(&node) {
            Some(m) => m,
            None => match &self.churn {
                Some(m) => m,
                None => return true,
            },
        };
        if model.down_probability == 0.0 {
            return true;
        }
        let epoch = tick / model.epoch_ticks;
        let h = derive2(derive(seed, streams::CHRN), node as u64, epoch);
        unit(h) >= model.down_probability
    }

    /// The fate of the logical probe `(a, b, nonce)`: `None` when it
    /// completes, otherwise the failure. Symmetric in direction like
    /// [`crate::Network::measure_rtt`], and drawn from a dedicated
    /// stream, so fault injection never perturbs measurement noise.
    pub fn probe_fate(&self, seed: u64, a: usize, b: usize, nonce: u64) -> Option<ProbeOutcome> {
        if self.link.is_empty() {
            return None;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let pair_key = derive((lo as u64) << 32 | hi as u64, streams::FALT);
        let u = unit(derive2(derive(seed, streams::FALT), pair_key, nonce));
        if u < self.link.loss_probability {
            Some(ProbeOutcome::Lost)
        } else if u < self.link.loss_probability + self.link.timeout_probability {
            Some(ProbeOutcome::TimedOut)
        } else {
            None
        }
    }
}

/// Map a hashed `u64` to a uniform value in `[0, 1)`.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_faultless() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        plan.validate();
        for nonce in 0..100 {
            assert_eq!(plan.probe_fate(1, 0, 1, nonce), None);
        }
        for tick in 0..100 {
            assert!(plan.node_up(1, 3, tick));
        }
    }

    #[test]
    fn probe_fate_is_deterministic_and_direction_symmetric() {
        let plan = FaultPlan::lossy(0.3, 0.1);
        for nonce in 0..200 {
            assert_eq!(plan.probe_fate(9, 4, 17, nonce), plan.probe_fate(9, 4, 17, nonce));
            assert_eq!(plan.probe_fate(9, 4, 17, nonce), plan.probe_fate(9, 17, 4, nonce));
        }
    }

    #[test]
    fn fault_rates_match_probabilities() {
        let plan = FaultPlan::lossy(0.2, 0.1);
        let n = 20_000;
        let (mut lost, mut timed_out) = (0usize, 0usize);
        for nonce in 0..n {
            match plan.probe_fate(7, 0, 1, nonce) {
                Some(ProbeOutcome::Lost) => lost += 1,
                Some(ProbeOutcome::TimedOut) => timed_out += 1,
                _ => {}
            }
        }
        let loss_rate = lost as f64 / n as f64;
        let timeout_rate = timed_out as f64 / n as f64;
        assert!((loss_rate - 0.2).abs() < 0.01, "loss rate {loss_rate}");
        assert!(
            (timeout_rate - 0.1).abs() < 0.01,
            "timeout rate {timeout_rate}"
        );
    }

    #[test]
    fn fault_stream_is_independent_per_pair() {
        let plan = FaultPlan::lossy(0.5, 0.0);
        let fate_a: Vec<_> = (0..64).map(|n| plan.probe_fate(3, 0, 1, n)).collect();
        let fate_b: Vec<_> = (0..64).map(|n| plan.probe_fate(3, 0, 2, n)).collect();
        assert_ne!(fate_a, fate_b, "pairs must draw from distinct streams");
    }

    #[test]
    fn churn_downtime_matches_probability_and_is_epoch_stable() {
        let plan = FaultPlan::none().with_churn(ChurnModel::new(8, 0.25));
        // Within one epoch the answer never changes.
        for tick in 0..8 {
            assert_eq!(plan.node_up(5, 2, tick), plan.node_up(5, 2, 0));
        }
        // Across many epochs the downtime fraction approaches 25%.
        let epochs = 8000u64;
        let down = (0..epochs)
            .filter(|&e| !plan.node_up(5, 2, e * 8))
            .count();
        let rate = down as f64 / epochs as f64;
        assert!((rate - 0.25).abs() < 0.02, "downtime rate {rate}");
    }

    #[test]
    fn node_override_takes_precedence() {
        let plan = FaultPlan::none()
            .with_churn(ChurnModel::new(4, 0.9))
            .with_node_churn(7, ChurnModel::new(4, 0.0));
        // Node 7 never crashes despite heavy population churn.
        for tick in 0..200 {
            assert!(plan.node_up(1, 7, tick));
        }
        // Others do.
        let down = (0..200).filter(|&t| !plan.node_up(1, 3, t)).count();
        assert!(down > 100, "population churn should hit node 3: {down}");
    }

    #[test]
    fn churn_is_independent_per_node() {
        let plan = FaultPlan::none().with_churn(ChurnModel::new(1, 0.5));
        let a: Vec<bool> = (0..64).map(|t| plan.node_up(2, 0, t)).collect();
        let b: Vec<bool> = (0..64).map(|t| plan.node_up(2, 1, t)).collect();
        assert_ne!(a, b, "nodes must churn independently");
    }

    #[test]
    fn probe_outcome_accessors() {
        assert_eq!(ProbeOutcome::Ok(3.5).ok(), Some(3.5));
        assert_eq!(ProbeOutcome::Lost.ok(), None);
        assert!(ProbeOutcome::Ok(1.0).is_ok());
        assert!(ProbeOutcome::TimedOut.failed());
        assert!(!ProbeOutcome::Ok(1.0).failed());
    }

    #[test]
    #[should_panic(expected = "loss + timeout")]
    fn rejects_certain_failure() {
        FaultPlan::lossy(0.6, 0.5);
    }

    #[test]
    #[should_panic(expected = "epoch_ticks")]
    fn rejects_zero_epoch() {
        ChurnModel::new(0, 0.1);
    }

    #[test]
    #[should_panic(expected = "down_probability")]
    fn rejects_probability_above_one() {
        ChurnModel::new(1, 1.5);
    }

    #[test]
    fn permanent_outage_is_always_down() {
        let plan = FaultPlan::none().with_node_churn(4, ChurnModel::permanent_outage());
        for tick in [0, 1, 17, 1 << 40, u64::MAX - 1] {
            assert!(!plan.node_up(9, 4, tick), "outage must hold at tick {tick}");
        }
        // Nodes without the override are untouched.
        assert!(plan.node_up(9, 5, 0));
    }

    #[test]
    fn serde_roundtrip() {
        let plan = FaultPlan::lossy(0.1, 0.05)
            .with_churn(ChurnModel::new(16, 0.02))
            .with_node_churn(3, ChurnModel::new(16, 0.01));
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(plan, back);
    }
}
