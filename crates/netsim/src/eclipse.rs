//! Eclipse-biased referral steering (registrar poisoning).
//!
//! An eclipse attack does not start with lies about coordinates — it
//! starts with *who the victim is introduced to*. Real deployments hand
//! a joining node its neighbors and Surveyor referrals through a
//! registrar/rendezvous service; an adversary that poisons those
//! referrals can mediate a victim's entire view of the system before a
//! single measurement is tampered with.
//!
//! [`EclipsePlan`] models exactly that steering, and nothing else: it
//! rewrites a fraction (`strength`) of a victim's neighbor slots toward
//! attacker nodes, steers the victim's *replacement* draws (the fresh
//! peers picked after a rejection or eviction) the same way, and starves
//! the victim's Surveyor candidate referrals. What the attackers then
//! *say* is a separate concern — `ices-attack`'s `EclipseAttack`
//! implements the coordinated coordinate translation; the two compose
//! through the simulation driver.
//!
//! Every draw derives from `(seed, victim, nonce)` streams, so steering
//! is a pure function of the plan — independent of iteration order and
//! worker count. The empty plan ([`EclipsePlan::none`]) touches nothing:
//! every API is a no-op and the simulation is byte-identical to an
//! un-eclipsed run.

use ices_stats::rng::{derive2, SimRng};
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use ices_stats::streams;

/// A deterministic registrar-poisoning plan.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EclipsePlan {
    /// Nodes whose referrals the adversary mediates.
    victims: BTreeSet<usize>,
    /// Attacker nodes referrals are steered toward, sorted for indexed
    /// draws.
    attackers: Vec<usize>,
    /// Fraction of a victim's referrals steered to attackers, in
    /// `[0, 1]`. `1.0` is a total eclipse.
    strength: f64,
    /// Seed every steering draw derives from.
    seed: u64,
}

impl EclipsePlan {
    /// The empty plan: no steering, bit-identical to no plan at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// Steer `strength` of each victim's referrals toward `attackers`.
    ///
    /// # Panics
    /// Panics when `strength` is outside `[0, 1]`, or when a non-trivial
    /// plan has no attackers, or when a victim is also an attacker.
    pub fn new(
        victims: impl IntoIterator<Item = usize>,
        attackers: impl IntoIterator<Item = usize>,
        strength: f64,
        seed: u64,
    ) -> Self {
        let victims: BTreeSet<usize> = victims.into_iter().collect();
        let attacker_set: BTreeSet<usize> = attackers.into_iter().collect();
        assert!(
            (0.0..=1.0).contains(&strength),
            "eclipse strength must be in [0, 1], got {strength}"
        );
        if strength > 0.0 && !victims.is_empty() {
            assert!(
                !attacker_set.is_empty(),
                "a steering plan needs attacker nodes to steer toward"
            );
        }
        assert!(
            victims.is_disjoint(&attacker_set),
            "a node cannot be both victim and attacker"
        );
        Self {
            victims,
            attackers: attacker_set.into_iter().collect(),
            strength,
            seed,
        }
    }

    /// Whether this plan steers anything at all.
    pub fn is_empty(&self) -> bool {
        self.victims.is_empty() || self.attackers.is_empty() || self.strength == 0.0
    }

    /// Whether `node`'s referrals are mediated by the adversary.
    pub fn is_victim(&self, node: usize) -> bool {
        !self.is_empty() && self.victims.contains(&node)
    }

    /// The steered fraction.
    pub fn strength(&self) -> f64 {
        self.strength
    }

    /// Attacker nodes referrals are steered toward.
    pub fn attacker_nodes(&self) -> &[usize] {
        &self.attackers
    }

    /// Poison `victim`'s initial neighbor list in place: the first
    /// `round(strength × len)` slots are rewritten to seeded attacker
    /// draws (distinct from the surviving honest slots where the swarm
    /// is large enough). Draws derive from `(seed, victim)` only — call
    /// order never matters. No-op for non-victims and empty plans.
    pub fn poison_neighbors(&self, victim: usize, neighbors: &mut [usize]) {
        if !self.is_victim(victim) || neighbors.is_empty() {
            return;
        }
        let steered = ((neighbors.len() as f64) * self.strength).round() as usize;
        let steered = steered.min(neighbors.len());
        let mut rng = SimRng::from_stream(self.seed, streams::ECLN, victim as u64);
        let mut taken = BTreeSet::new();
        for slot in neighbors.iter_mut().take(steered) {
            // Prefer attackers not already placed in this victim's set;
            // small swarms fall back to repeats rather than stalling.
            let mut pick = self.attackers[rng.random_range(0..self.attackers.len())];
            for _ in 0..8 {
                if !taken.contains(&pick) && pick != victim {
                    break;
                }
                pick = self.attackers[rng.random_range(0..self.attackers.len())];
            }
            if pick == victim {
                continue;
            }
            taken.insert(pick);
            *slot = pick;
        }
    }

    /// Steer one *replacement* draw: when `victim` swaps out a rejected
    /// or dead neighbor, the poisoned registrar answers with an attacker
    /// with probability `strength`. Returns `None` (honest draw) for
    /// non-victims, empty plans, and the unsteered remainder. `nonce`
    /// disambiguates draws within one victim — pass something unique per
    /// replacement (e.g. a replacement counter).
    pub fn steer_replacement(&self, victim: usize, nonce: u64) -> Option<usize> {
        if !self.is_victim(victim) {
            return None;
        }
        let mut rng = SimRng::from_stream(
            self.seed,
            derive2(streams::ECLR, victim as u64, nonce),
            0,
        );
        if rng.random::<f64>() >= self.strength {
            return None;
        }
        Some(self.attackers[rng.random_range(0..self.attackers.len())])
    }

    /// How many of `full` Surveyor referrals the poisoned registrar
    /// actually reveals to `victim`: the honest share, but never zero —
    /// total Surveyor starvation would stall the join protocol rather
    /// than subvert it, which is not the attack being modelled.
    pub fn surveyor_referrals(&self, victim: usize, full: usize) -> usize {
        if !self.is_victim(victim) || full == 0 {
            return full;
        }
        (((full as f64) * (1.0 - self.strength)).round() as usize).clamp(1, full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> EclipsePlan {
        EclipsePlan::new([10, 11], [1, 2, 3, 4, 5], 0.5, 77)
    }

    #[test]
    fn empty_plan_is_a_total_noop() {
        let p = EclipsePlan::none();
        assert!(p.is_empty());
        assert!(!p.is_victim(10));
        let mut neighbors = vec![7, 8, 9];
        p.poison_neighbors(10, &mut neighbors);
        assert_eq!(neighbors, vec![7, 8, 9]);
        assert_eq!(p.steer_replacement(10, 0), None);
        assert_eq!(p.surveyor_referrals(10, 8), 8);
    }

    #[test]
    #[should_panic(expected = "victim and attacker")]
    fn overlapping_roles_panic() {
        EclipsePlan::new([1], [1, 2], 0.5, 0);
    }

    #[test]
    fn poisoning_steers_exactly_the_strength_share() {
        let p = plan();
        let mut neighbors: Vec<usize> = (20..28).collect();
        p.poison_neighbors(10, &mut neighbors);
        let steered = neighbors.iter().filter(|n| (1..=5).contains(*n)).count();
        assert_eq!(steered, 4, "0.5 × 8 slots: {neighbors:?}");
        assert_eq!(&neighbors[4..], &[24, 25, 26, 27], "honest tail kept");
    }

    #[test]
    fn poisoning_is_deterministic_and_per_victim() {
        let p = plan();
        let mut a: Vec<usize> = (20..28).collect();
        let mut b: Vec<usize> = (20..28).collect();
        p.poison_neighbors(10, &mut a);
        p.poison_neighbors(10, &mut b);
        assert_eq!(a, b);
        let mut c: Vec<usize> = (20..28).collect();
        p.poison_neighbors(11, &mut c);
        // Same strength, independent draws (may coincide on tiny swarms,
        // but the stream must at least be keyed per victim).
        assert_eq!(c.iter().filter(|n| (1..=5).contains(*n)).count(), 4);
    }

    #[test]
    fn non_victims_are_untouched() {
        let p = plan();
        let mut neighbors: Vec<usize> = (20..28).collect();
        p.poison_neighbors(12, &mut neighbors);
        assert_eq!(neighbors, (20..28).collect::<Vec<_>>());
        assert_eq!(p.steer_replacement(12, 3), None);
        assert_eq!(p.surveyor_referrals(12, 8), 8);
    }

    #[test]
    fn replacement_steering_matches_strength_in_the_long_run() {
        let p = plan();
        let steered = (0..1000)
            .filter(|&nonce| p.steer_replacement(10, nonce).is_some())
            .count();
        assert!(
            (400..=600).contains(&steered),
            "~50% of draws should steer, got {steered}/1000"
        );
        // And every steered pick is an attacker.
        for nonce in 0..100 {
            if let Some(a) = p.steer_replacement(10, nonce) {
                assert!((1..=5).contains(&a));
            }
        }
        assert_eq!(p.steer_replacement(10, 42), p.steer_replacement(10, 42));
    }

    #[test]
    fn surveyor_referrals_shrink_but_never_vanish() {
        let p = plan();
        assert_eq!(p.surveyor_referrals(10, 8), 4);
        let total = EclipsePlan::new([10], [1], 1.0, 0);
        assert_eq!(
            total.surveyor_referrals(10, 8),
            1,
            "total eclipse still reveals one Surveyor"
        );
        assert_eq!(p.surveyor_referrals(10, 0), 0);
    }
}
