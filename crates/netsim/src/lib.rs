//! Deterministic network-simulation substrate.
//!
//! The paper's experiments run on two substrates we cannot download: the
//! **King dataset** (a 1740×1740 matrix of pairwise RTTs between Internet
//! DNS servers) and a **280-node PlanetLab deployment**. This crate
//! replaces both with synthetic equivalents that preserve the properties
//! the embedding — and therefore the detection model — actually depends
//! on:
//!
//! * clustered RTT structure (continental regions, fast intra-region
//!   paths, slow inter-region paths) — [`kinggen`];
//! * per-node access-link delays ("heights") that no Euclidean embedding
//!   can represent, motivating Vivaldi's height vectors;
//! * triangle-inequality violations at King-like rates, via multiplicative
//!   lognormal route distortion;
//! * stationary measurement noise (§2 assumes RTT statistics stable at
//!   the scale of minutes, per Zhang et al.) with gaussian jitter, a
//!   lognormal congestion factor, and rare heavy-tailed spikes —
//!   [`fluctuation`];
//! * a handful of pathologically noisy hosts (the paper's "3 nodes in
//!   India" that dominate the prediction-error tail) — [`planetlab`];
//! * optional deterministic fault injection — per-link probe loss and
//!   timeouts, epoch-based node crash/rejoin churn — [`faults`]. The
//!   default is no faults; an empty [`FaultPlan`] leaves every probe API
//!   byte-identical to the clean network;
//! * optional eclipse-biased referral steering (registrar poisoning) for
//!   the adversary suite — [`eclipse`]. The empty [`EclipsePlan`] is
//!   likewise a byte-identical no-op.
//!
//! Everything is driven by a single `u64` seed: a measurement between
//! nodes `(a, b)` at probe-nonce `n` is a pure function of
//! `(seed, a, b, n)`, so experiments are exactly reproducible and
//! independent of iteration order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eclipse;
pub mod faults;
pub mod fluctuation;
pub mod kinggen;
pub mod network;
pub mod planetlab;
pub mod rtt;
pub mod topology;

pub use eclipse::EclipsePlan;
pub use faults::{ChurnModel, FaultPlan, LinkFaults, ProbeOutcome};
pub use fluctuation::{FluctuationModel, NoiseProfile};
pub use kinggen::{KingConfig, Placement, RegionLayout};
pub use network::Network;
pub use planetlab::PlanetLabConfig;
pub use rtt::{RttSource, RttStore, SynthRtt};
pub use topology::RttMatrix;
