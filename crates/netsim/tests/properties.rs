//! Property-based tests of the network substrate: matrix invariants,
//! generator structure, and measurement determinism over randomized
//! configurations.

use ices_netsim::{KingConfig, Network, PlanetLabConfig, RttMatrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_matrices_are_symmetric_and_positive(
        nodes in 10usize..60,
        seed in 0u64..500,
    ) {
        let topo = KingConfig::small(nodes).generate(seed);
        for i in 0..nodes {
            prop_assert_eq!(topo.matrix.get(i, i), 0.0);
            for j in (i + 1)..nodes {
                let rtt = topo.matrix.get(i, j);
                prop_assert!(rtt > 0.0 && rtt.is_finite());
                prop_assert_eq!(rtt, topo.matrix.get(j, i));
            }
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_config_and_seed(
        nodes in 10usize..40,
        seed in 0u64..500,
    ) {
        let a = KingConfig::small(nodes).generate(seed);
        let b = KingConfig::small(nodes).generate(seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn heights_lower_bound_every_rtt(
        nodes in 10usize..40,
        seed in 0u64..500,
    ) {
        // rtt = planar·distortion + h_i + h_j ≥ h_i + h_j (planar ≥ 0),
        // modulo the configured floor.
        let cfg = KingConfig::small(nodes);
        let topo = cfg.generate(seed);
        for i in 0..nodes {
            for j in (i + 1)..nodes {
                let floor = (topo.heights[i] + topo.heights[j]).max(cfg.min_rtt_ms);
                prop_assert!(
                    topo.matrix.get(i, j) >= floor - 1e-9,
                    "rtt {} below height floor {floor}",
                    topo.matrix.get(i, j)
                );
            }
        }
    }

    #[test]
    fn measurements_are_deterministic_and_positive(
        nodes in 10usize..40,
        seed in 0u64..300,
        nonce in 0u64..10_000,
    ) {
        let pl = PlanetLabConfig::small(nodes).generate(seed);
        let net = Network::from_planetlab(pl, seed);
        let m1 = net.measure_rtt(0, 1, nonce);
        let m2 = net.measure_rtt(1, 0, nonce);
        prop_assert_eq!(m1, m2, "probe symmetric in direction");
        prop_assert!(m1 > 0.0 && m1.is_finite());
        let s = net.measure_rtt_smoothed(0, 1, nonce);
        prop_assert_eq!(s, net.measure_rtt_smoothed(0, 1, nonce));
        prop_assert!(s > 0.0 && s.is_finite());
    }

    #[test]
    fn matrix_set_get_roundtrip(
        n in 2usize..20,
        a in 0usize..20,
        b in 0usize..20,
        rtt in 0.1f64..1e5,
    ) {
        prop_assume!(a < n && b < n && a != b);
        let mut m = RttMatrix::from_fn(n, |_, _| 1.0);
        m.set(a, b, rtt);
        prop_assert_eq!(m.get(a, b), rtt);
        prop_assert_eq!(m.get(b, a), rtt);
        // All other entries untouched.
        for i in 0..n {
            for j in (i + 1)..n {
                if (i, j) != (a.min(b), a.max(b)) {
                    prop_assert_eq!(m.get(i, j), 1.0);
                }
            }
        }
    }

    #[test]
    fn pathological_nodes_never_exceed_population(
        nodes in 10usize..80,
        seed in 0u64..200,
    ) {
        let pl = PlanetLabConfig::small(nodes).generate(seed);
        prop_assert!(pl.pathological.len() < nodes);
        for &p in &pl.pathological {
            prop_assert!(p < nodes);
        }
        prop_assert_eq!(pl.profiles.len(), nodes);
    }
}
