//! The eclipse attack: surround a victim and translate its world.
//!
//! Eclipse attacks (ROADMAP item 3) poison the referral machinery —
//! here, the registrar a joining node asks for neighbors and Surveyors —
//! so that a targeted victim's view of the system is mediated almost
//! entirely by attacker nodes. The steering itself lives in
//! [`ices_netsim`]'s `EclipsePlan` (which rewrites the victim's
//! neighbor draws and starves its Surveyor referrals); this module
//! implements what the surrounding attackers *report*.
//!
//! The lie is a **consistent translation**: every attacker reports its
//! own *true* coordinate shifted by one per-victim offset vector (same
//! vector for every attacker, derived from `(seed, victim)`), and the
//! genuine RTT. Because all of a victim's (eclipsed) peers agree on the
//! same rigid translation of the coordinate space, the victim's spring
//! system stays *internally consistent*: inter-peer distances are
//! unchanged, innovations look normal, and the victim converges to its
//! true position plus the offset — displaced, useless for RTT
//! prediction against the outside world, and invisible to the Kalman
//! innovation test. This is the attack the paper's detector is
//! structurally blind to, and the one VerLoc-style cross-verification
//! (probing the claim through non-eclipsed witnesses) recovers.

use crate::adversary::{Adversary, TamperedSample};
use ices_coord::Coordinate;
use ices_stats::rng::SimRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use ices_stats::streams;

/// The coordinated eclipse attack.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EclipseAttack {
    /// Nodes under adversary control (the surrounding ring).
    attackers: BTreeSet<usize>,
    /// Targeted victims. Non-victims get honest behavior — the attack
    /// is precise, which is what keeps it quiet.
    victims: BTreeSet<usize>,
    /// Magnitude of the per-victim translation, in ms.
    offset_ms: f64,
    /// Seed the per-victim offset vectors derive from.
    seed: u64,
}

impl EclipseAttack {
    /// Set up the eclipse: `attackers` translate the world of each node
    /// in `victims` by a consistent seed-derived vector of length
    /// `offset_ms`.
    ///
    /// # Panics
    /// Panics unless `offset_ms > 0`.
    pub fn new(
        attackers: impl IntoIterator<Item = usize>,
        victims: impl IntoIterator<Item = usize>,
        offset_ms: f64,
        seed: u64,
    ) -> Self {
        assert!(offset_ms > 0.0, "translation offset must be positive");
        Self {
            attackers: attackers.into_iter().collect(),
            victims: victims.into_iter().collect(),
            offset_ms,
            seed,
        }
    }

    /// Nodes under adversary control.
    pub fn attacker_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.attackers.iter().copied()
    }

    /// Targeted victims.
    pub fn victim_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.victims.iter().copied()
    }

    /// The translation magnitude in ms.
    pub fn offset_ms(&self) -> f64 {
        self.offset_ms
    }

    /// The rigid translation applied to everything `victim` is told:
    /// one unit direction per victim, re-derived from the seed on every
    /// call so `intercept` stays `&self`.
    fn offset_for(&self, victim: usize) -> (f64, f64) {
        let mut rng = SimRng::from_stream(self.seed, streams::ECLP, victim as u64);
        let angle = rng.random::<f64>() * std::f64::consts::TAU;
        (self.offset_ms * angle.cos(), self.offset_ms * angle.sin())
    }
}

impl Adversary for EclipseAttack {
    fn is_malicious(&self, node: usize) -> bool {
        self.attackers.contains(&node)
    }

    fn intercept(
        &self,
        peer: usize,
        victim: usize,
        _tick: u64,
        true_coord: &Coordinate,
        true_error: f64,
        measured_rtt: f64,
        _victim_coord: &Coordinate,
    ) -> Option<TamperedSample> {
        if !self.attackers.contains(&peer)
            || self.attackers.contains(&victim)
            || !self.victims.contains(&victim)
        {
            return None;
        }
        let (dx, dy) = self.offset_for(victim);
        let mut position = true_coord.position().to_vec();
        if let Some(x) = position.get_mut(0) {
            *x += dx;
        }
        if let Some(y) = position.get_mut(1) {
            *y += dy;
        }
        Some(TamperedSample {
            // The attacker keeps its true height and *claims its true
            // error*: the translated world must look exactly as healthy
            // as the real one.
            coord: Coordinate::new(position, true_coord.height()),
            error: true_error,
            rtt_ms: measured_rtt,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attack() -> EclipseAttack {
        EclipseAttack::new([1, 2, 3], [10, 11], 300.0, 13)
    }

    fn coord(x: f64, y: f64) -> Coordinate {
        Coordinate::new(vec![x, y], 2.0)
    }

    #[test]
    fn membership_is_attackers_not_victims() {
        let a = attack();
        assert!(a.is_malicious(1));
        assert!(!a.is_malicious(10), "victims are honest nodes");
    }

    #[test]
    fn only_targeted_victims_are_lied_to() {
        let a = attack();
        let c = coord(5.0, -3.0);
        assert!(a.intercept(1, 10, 0, &c, 0.4, 30.0, &c).is_some());
        assert!(
            a.intercept(1, 20, 0, &c, 0.4, 30.0, &c).is_none(),
            "non-victims see honest behavior"
        );
        assert!(a.intercept(9, 10, 0, &c, 0.4, 30.0, &c).is_none());
        assert!(a.intercept(1, 2, 0, &c, 0.4, 30.0, &c).is_none());
    }

    #[test]
    fn translation_is_rigid_and_shared_by_all_attackers() {
        let a = attack();
        let victim_coord = coord(0.0, 0.0);
        let c1 = coord(10.0, 20.0);
        let c2 = coord(-40.0, 7.0);
        let t1 = a
            .intercept(1, 10, 0, &c1, 0.4, 30.0, &victim_coord)
            .expect("tampered");
        let t2 = a
            .intercept(2, 10, 0, &c2, 0.3, 55.0, &victim_coord)
            .expect("tampered");
        // Same offset vector regardless of attacker: claimed minus true
        // is identical, so inter-peer distances are preserved.
        let d1: Vec<f64> = t1
            .coord
            .position()
            .iter()
            .zip(c1.position())
            .map(|(a, b)| a - b)
            .collect();
        let d2: Vec<f64> = t2
            .coord
            .position()
            .iter()
            .zip(c2.position())
            .map(|(a, b)| a - b)
            .collect();
        for (x, y) in d1.iter().zip(&d2) {
            assert!((x - y).abs() < 1e-12, "offsets differ: {d1:?} vs {d2:?}");
        }
        let norm = (d1[0] * d1[0] + d1[1] * d1[1]).sqrt();
        assert!((norm - 300.0).abs() < 1e-9, "offset magnitude {norm}");
        assert_eq!(t1.coord.distance(&t2.coord), c1.distance(&c2));
    }

    #[test]
    fn different_victims_get_different_translations() {
        let a = attack();
        let c = coord(10.0, 20.0);
        let to_10 = a.intercept(1, 10, 0, &c, 0.4, 30.0, &c).expect("tampered");
        let to_11 = a.intercept(1, 11, 0, &c, 0.4, 30.0, &c).expect("tampered");
        assert_ne!(to_10.coord, to_11.coord);
    }

    #[test]
    fn claims_look_healthy() {
        let a = attack();
        let c = coord(10.0, 20.0);
        let t = a.intercept(3, 11, 0, &c, 0.37, 42.0, &c).expect("tampered");
        assert_eq!(t.error, 0.37, "claimed error mirrors the true one");
        assert_eq!(t.rtt_ms, 42.0, "RTT is genuine");
        assert_eq!(t.coord.height(), c.height(), "height untouched");
    }

    #[test]
    fn deterministic_across_instances() {
        let a = attack();
        let b = attack();
        let c = coord(1.0, 2.0);
        assert_eq!(
            a.intercept(2, 11, 9, &c, 0.5, 40.0, &c),
            b.intercept(2, 11, 9, &c, 0.5, 40.0, &c)
        );
    }
}
