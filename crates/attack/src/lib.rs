//! Attack models against coordinate embedding systems.
//!
//! Implements the two strongest attacks of Kaafar et al.'s earlier study
//! (*Virtual networks under attack*, CoNEXT 2006 — reference \[11\] of the
//! paper), which the SIGCOMM'07 evaluation uses to stress the detector:
//!
//! * [`vivaldi_isolation`] — the **colluding isolation attack** on
//!   Vivaldi (§5.2): attackers agree on an exclusion zone around a
//!   target and consistently lie about their own coordinates (always the
//!   same lie to a given victim) to attract honest nodes out of the
//!   zone.
//! * [`nps_collusion`] — the **colluding reference-point attack** on NPS
//!   (§5.3): conspirators behave honestly until at least five of them
//!   are reference points in a layer, then pretend to be clustered in a
//!   remote part of the space and push half the normal nodes they serve
//!   toward the opposite side — tampering probe RTTs so their lies stay
//!   mutually consistent and evade NPS's built-in fit-error test
//!   (the anti-detection technique of \[11\]).
//!
//! On top of the paper's pair, the crate carries the post-2007 adversary
//! taxonomy of ROADMAP item 3 — three scenarios the Kalman innovation
//! test was never evaluated against:
//!
//! * [`sybil_swarm`] — one adversary, many cheap identities claiming a
//!   single tight remote cluster from one seed (blatant; the question is
//!   how detection degrades as the swarm outnumbers honest candidates).
//! * [`eclipse`] — surrounding attackers report a rigid per-victim
//!   translation of their true coordinates, keeping the victim's world
//!   internally consistent and the detector structurally blind.
//! * [`slow_drift`] — per-tick displacement calibrated to stay under the
//!   innovation threshold while accumulating without bound
//!   ("frog-boiling").
//!
//! [`defense`] adds the opt-in VerLoc-style cross-verification knob:
//! claims are cross-probed through seeded witnesses and rejected on
//! geometric inconsistency — the countermeasure that recovers detection
//! against the internally-consistent attacks above.
//!
//! All adversaries implement the [`Adversary`] interface the simulation
//! driver consults on every embedding interaction; an honest interaction
//! passes through untouched, a malicious one is replaced by the
//! attacker's tampered view (coordinate lie, confidence lie, and/or
//! probe delay). Every `intercept` answers purely from
//! `(seed, tick, victim, peer)`-derived streams (`&self + Sync`), so
//! results are bit-for-bit identical at any `ICES_THREADS`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod defense;
pub mod eclipse;
pub mod nps_collusion;
pub mod slow_drift;
pub mod sybil_swarm;
pub mod vivaldi_isolation;

pub use adversary::{Adversary, HonestWorld, TamperedSample};
pub use defense::DefenseConfig;
pub use eclipse::EclipseAttack;
pub use nps_collusion::NpsCollusionAttack;
pub use slow_drift::SlowDriftAttack;
pub use sybil_swarm::SybilSwarmAttack;
pub use vivaldi_isolation::VivaldiIsolationAttack;
