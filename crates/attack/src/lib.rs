//! Attack models against coordinate embedding systems.
//!
//! Implements the two strongest attacks of Kaafar et al.'s earlier study
//! (*Virtual networks under attack*, CoNEXT 2006 — reference \[11\] of the
//! paper), which the SIGCOMM'07 evaluation uses to stress the detector:
//!
//! * [`vivaldi_isolation`] — the **colluding isolation attack** on
//!   Vivaldi (§5.2): attackers agree on an exclusion zone around a
//!   target and consistently lie about their own coordinates (always the
//!   same lie to a given victim) to attract honest nodes out of the
//!   zone.
//! * [`nps_collusion`] — the **colluding reference-point attack** on NPS
//!   (§5.3): conspirators behave honestly until at least five of them
//!   are reference points in a layer, then pretend to be clustered in a
//!   remote part of the space and push half the normal nodes they serve
//!   toward the opposite side — tampering probe RTTs so their lies stay
//!   mutually consistent and evade NPS's built-in fit-error test
//!   (the anti-detection technique of \[11\]).
//!
//! Both implement the [`Adversary`] interface the simulation driver
//! consults on every embedding interaction; an honest interaction passes
//! through untouched, a malicious one is replaced by the attacker's
//! tampered view (coordinate lie, confidence lie, and/or probe delay).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod nps_collusion;
pub mod vivaldi_isolation;

pub use adversary::{Adversary, HonestWorld, TamperedSample};
pub use nps_collusion::NpsCollusionAttack;
pub use vivaldi_isolation::VivaldiIsolationAttack;
