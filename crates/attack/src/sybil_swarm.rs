//! The Sybil swarm attack: one adversary, many identities.
//!
//! A single attacker spins up a swarm of cheap identities (ROADMAP item
//! 3; Douceur's classic Sybil setting applied to coordinate systems).
//! Because the identities cost nothing, the attacker can outnumber the
//! honest nodes in a victim's *candidate set* — the eclipse-style
//! neighbor steering that realizes the outnumbering lives in
//! [`ices_netsim`]'s `EclipsePlan`; this module implements what the
//! sybils *say* once they are in the set.
//!
//! All lies are coordinated from **one seed**: every sybil claims to sit
//! in one tight cluster around a remote anchor point derived from the
//! swarm seed, with per-sybil jitter so the fakes do not coincide, and
//! claims near-zero local error so victims weight the swarm heavily.
//! The genuine RTT is reported (a coordinate lie only), so the claimed
//! far-away position against a small measured RTT compresses the
//! Vivaldi spring and drags victims toward the anchor. Against an armed
//! Kalman detector this is a *blatant* attack — the innovation jumps —
//! so the interesting quantity is how detection degrades as the swarm's
//! share of the candidate set grows.

use crate::adversary::{Adversary, TamperedSample};
use ices_coord::Coordinate;
use ices_stats::rng::SimRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use ices_stats::streams;

/// The coordinated Sybil swarm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SybilSwarmAttack {
    /// Identities under the (single) adversary's control.
    sybils: BTreeSet<usize>,
    /// Distance of the shared anchor from the space origin, in ms. The
    /// swarm pretends to live in this remote part of the space.
    anchor_distance_ms: f64,
    /// Radius of the claimed cluster around the anchor, in ms. Small:
    /// the swarm's whole point is one consistent story.
    cluster_spread_ms: f64,
    /// Confidence every sybil claims (lower = more influence).
    claimed_error: f64,
    /// Coordinate dimensionality of the claimed positions.
    dims: usize,
    /// Seed all lies derive from; identical across every sybil, which is
    /// what makes the swarm one adversary rather than many.
    seed: u64,
    /// Every sybil's claimed coordinate, derived once at construction —
    /// the claims are victim- and tick-independent, so `intercept` is an
    /// indexed lookup on the hot path instead of a per-call stream
    /// derivation. `None` for non-sybil indices.
    claims: Vec<Option<Coordinate>>,
    /// Dense membership mask (`mask[node]` ⇔ node is a sybil): the
    /// swarm is consulted on *every* step of a run, so membership is an
    /// indexed probe rather than a tree walk.
    mask: Vec<bool>,
}

impl SybilSwarmAttack {
    /// Set up the swarm: `sybils` identities claiming to cluster at a
    /// seed-derived anchor `anchor_distance_ms` from the origin, spread
    /// over `cluster_spread_ms`, in a `dims`-dimensional space.
    ///
    /// # Panics
    /// Panics unless `anchor_distance_ms > 0`, `cluster_spread_ms >= 0`
    /// and `dims >= 1`.
    pub fn new(
        sybils: impl IntoIterator<Item = usize>,
        anchor_distance_ms: f64,
        cluster_spread_ms: f64,
        dims: usize,
        seed: u64,
    ) -> Self {
        assert!(anchor_distance_ms > 0.0, "anchor distance must be positive");
        assert!(cluster_spread_ms >= 0.0, "cluster spread must not be negative");
        assert!(dims >= 1, "claimed positions need at least one dimension");
        let mut swarm = Self {
            sybils: sybils.into_iter().collect(),
            anchor_distance_ms,
            cluster_spread_ms,
            claimed_error: 0.01,
            dims,
            seed,
            claims: Vec::new(),
            mask: Vec::new(),
        };
        let slots = swarm.sybils.iter().max().map_or(0, |&m| m + 1);
        let mut claims = vec![None; slots];
        let mut mask = vec![false; slots];
        for &s in &swarm.sybils {
            claims[s] = Some(swarm.claimed_position(s));
            mask[s] = true;
        }
        swarm.claims = claims;
        swarm.mask = mask;
        swarm
    }

    /// O(1) membership probe.
    fn is_sybil(&self, node: usize) -> bool {
        self.mask.get(node).copied().unwrap_or(false)
    }

    /// Identities under swarm control.
    pub fn sybil_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.sybils.iter().copied()
    }

    /// The swarm's shared anchor: one point per seed.
    fn anchor(&self) -> Vec<f64> {
        let mut rng = SimRng::from_stream(self.seed, streams::SYBA, 0);
        let angle = rng.random::<f64>() * std::f64::consts::TAU;
        let mut position = vec![0.0; self.dims];
        if let Some(x) = position.get_mut(0) {
            *x = self.anchor_distance_ms * angle.cos();
        }
        if let Some(y) = position.get_mut(1) {
            *y = self.anchor_distance_ms * angle.sin();
        }
        position
    }

    /// The position sybil `s` claims: the shared anchor plus a fixed
    /// per-sybil jitter inside the cluster spread. Independent of the
    /// victim — the swarm tells *everyone* the same story, which is what
    /// one seed buys the adversary.
    fn claimed_position(&self, sybil: usize) -> Coordinate {
        let mut position = self.anchor();
        let mut rng = SimRng::from_stream(self.seed, streams::SYBJ, sybil as u64);
        let angle = rng.random::<f64>() * std::f64::consts::TAU;
        let r = self.cluster_spread_ms * rng.random::<f64>();
        if let Some(x) = position.get_mut(0) {
            *x += r * angle.cos();
        }
        if let Some(y) = position.get_mut(1) {
            *y += r * angle.sin();
        }
        Coordinate::new(position, 0.0)
    }
}

impl Adversary for SybilSwarmAttack {
    fn is_malicious(&self, node: usize) -> bool {
        self.is_sybil(node)
    }

    fn intercept(
        &self,
        peer: usize,
        victim: usize,
        _tick: u64,
        _true_coord: &Coordinate,
        _true_error: f64,
        measured_rtt: f64,
        _victim_coord: &Coordinate,
    ) -> Option<TamperedSample> {
        if !self.is_sybil(peer) || self.is_sybil(victim) {
            // Sybils embed honestly among themselves: the real node
            // behind them needs a valid coordinate to keep its standing.
            return None;
        }
        Some(TamperedSample {
            // `is_sybil(peer)` held above, so the claim exists; `?`
            // keeps the lookup panic-free regardless.
            coord: self.claims.get(peer)?.clone()?,
            error: self.claimed_error,
            rtt_ms: measured_rtt, // coordinate lie only; RTT untouched
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ices_coord::Space;

    fn swarm() -> SybilSwarmAttack {
        SybilSwarmAttack::new([1, 2, 3, 4], 800.0, 10.0, 2, 11)
    }

    #[test]
    fn membership() {
        let a = swarm();
        assert!(a.is_malicious(2));
        assert!(!a.is_malicious(9));
    }

    #[test]
    fn swarm_claims_one_tight_remote_cluster() {
        let a = swarm();
        let c = Coordinate::origin(Space::with_height(2));
        let claims: Vec<Coordinate> = [1, 2, 3, 4]
            .iter()
            .map(|&s| {
                a.intercept(s, 10, 0, &c, 0.5, 30.0, &c)
                    .expect("sybil must tamper")
                    .coord
            })
            .collect();
        // Remote: every claim is near the anchor distance from origin.
        for claim in &claims {
            let d = ices_coord::vector::norm(claim.position());
            assert!(
                (d - 800.0).abs() <= 10.0 + 1e-9,
                "claim at distance {d} is not near the anchor"
            );
        }
        // Tight: pairwise distances bounded by twice the spread.
        for i in 0..claims.len() {
            for j in (i + 1)..claims.len() {
                let d = claims[i].distance(&claims[j]);
                assert!(d <= 20.0 + 1e-9, "cluster spread violated: {d}");
            }
        }
    }

    #[test]
    fn one_story_for_every_victim() {
        let a = swarm();
        let c = Coordinate::origin(Space::with_height(2));
        let to_10 = a.intercept(1, 10, 0, &c, 0.5, 30.0, &c).expect("tampered");
        let to_11 = a.intercept(1, 11, 5, &c, 0.5, 45.0, &c).expect("tampered");
        assert_eq!(
            to_10.coord, to_11.coord,
            "a sybil's claimed position is victim- and tick-independent"
        );
    }

    #[test]
    fn honest_peers_pass_through_and_sybils_spare_each_other() {
        let a = swarm();
        let c = Coordinate::origin(Space::with_height(2));
        assert!(a.intercept(9, 10, 0, &c, 0.5, 30.0, &c).is_none());
        assert!(a.intercept(1, 2, 0, &c, 0.5, 30.0, &c).is_none());
    }

    #[test]
    fn rtt_is_never_deflated() {
        let a = swarm();
        let c = Coordinate::origin(Space::with_height(2));
        let t = a.intercept(1, 10, 0, &c, 0.5, 37.5, &c).expect("tampered");
        assert!(t.rtt_ms >= 37.5);
    }

    #[test]
    fn deterministic_across_instances() {
        let a = swarm();
        let b = swarm();
        let c = Coordinate::origin(Space::with_height(2));
        assert_eq!(
            a.intercept(3, 42, 7, &c, 0.5, 40.0, &c),
            b.intercept(3, 42, 7, &c, 0.5, 40.0, &c)
        );
    }
}
