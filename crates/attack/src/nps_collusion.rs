//! The colluding reference-point attack on NPS (§5.3 of the paper).
//!
//! The conspirators cooperate and **behave honestly** until enough of
//! them (the paper: 5) have been promoted to reference points in a
//! layer. Once a layer is activated they pick a common set of victims —
//! 50% of the normal nodes they know from the layer directly below —
//! and work together to push each victim toward a remote location,
//! isolating it from the rest of the coordinate space.
//!
//! ## The drag mechanism
//!
//! A naive version of the attack — pretend to be clustered far away and
//! report delay-padded RTTs consistent with the remote location — turns
//! out to be *provably weak* against NPS's positioning: the downhill
//! simplex minimizes squared **relative** errors, and a remote lie has a
//! huge RTT in its denominator, so a colluding minority exerts an order
//! of magnitude less pull than the honest majority's resistance (we
//! verified this gradient argument experimentally; see DESIGN.md).
//!
//! The strong variant implemented here is the incremental drag of
//! reference \[11\]: each conspirator serving victim `v` claims a fake
//! coordinate placed `(1 + drag) × rtt` away from the victim's current
//! position along a per-victim direction the colluders agree on, while
//! reporting the *genuine* measured RTT. Every such sample demands that
//! the victim sit `drag × rtt` further along the push direction, and —
//! because the claimed RTT is small — its pull on the relative-error
//! objective is strong enough for a colluding minority to dominate.
//! Step by step, round by round, the victim is walked out of its true
//! region.
//!
//! Against NPS's built-in filter the colluders are protected by
//! uniformity: their samples all have (approximately) the same fit
//! error, and the primitive filter eliminates only the single worst
//! sample per round — the conspiracy loses at most one voice per round
//! and keeps dragging. Against the paper's Kalman innovation test,
//! however, every drag sample shows a relative error of `≈ drag` where
//! the victim's history predicts `≈ 0.1`, which is exactly the
//! deviation the test exists to flag.

use crate::adversary::{Adversary, TamperedSample};
use ices_coord::Coordinate;
use ices_stats::rng::SimRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use ices_stats::streams;

/// Number of malicious reference points a layer needs before the attack
/// activates there (the paper's experiments use 5).
pub const DEFAULT_ACTIVATION_THRESHOLD: usize = 5;

/// The colluding NPS reference-point attack.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NpsCollusionAttack {
    /// Nodes under adversary control.
    malicious: BTreeSet<usize>,
    /// Layers in which the attack is active (≥ threshold malicious RPs).
    active_layers: BTreeSet<usize>,
    /// Layer of each malicious reference point (as promoted by NPS).
    rp_layer: BTreeMap<usize, usize>,
    /// The common victim set, chosen at activation.
    victims: BTreeSet<usize>,
    /// Minimum malicious RPs in a layer before activating.
    activation_threshold: usize,
    /// Fraction of known lower-layer normal nodes targeted.
    victim_fraction: f64,
    /// Dimensionality of the coordinate space under attack.
    dims: usize,
    /// Drag strength: each malicious sample demands the victim move
    /// `drag × rtt` along the push direction.
    drag: f64,
    /// Confidence the attackers claim.
    claimed_error: f64,
    /// Seed the per-victim push directions are derived from. Directions
    /// are re-derived on every call (no cache), so `intercept` can stay
    /// `&self` and be consulted from concurrent simulation workers.
    seed: u64,
}

impl NpsCollusionAttack {
    /// Set up the conspiracy in an NPS space of dimensionality `dims`
    /// with the given drag strength (the evaluation uses 3.0: each
    /// accepted malicious sample demands a displacement of three RTTs).
    ///
    /// # Panics
    /// Panics on a non-positive drag or a victim fraction outside
    /// `(0, 1]`.
    pub fn new(
        malicious: impl IntoIterator<Item = usize>,
        dims: usize,
        drag: f64,
        victim_fraction: f64,
        seed: u64,
    ) -> Self {
        assert!(dims > 0, "need at least one dimension");
        assert!(drag > 0.0, "drag must be positive");
        assert!(
            victim_fraction > 0.0 && victim_fraction <= 1.0,
            "victim fraction must be in (0, 1]"
        );
        Self {
            malicious: malicious.into_iter().collect(),
            active_layers: BTreeSet::new(),
            rp_layer: BTreeMap::new(),
            victims: BTreeSet::new(),
            activation_threshold: DEFAULT_ACTIVATION_THRESHOLD,
            victim_fraction,
            dims,
            drag,
            claimed_error: 0.01,
            seed,
        }
    }

    /// Ids under adversary control.
    pub fn malicious_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.malicious.iter().copied()
    }

    /// Inform the conspiracy of the current hierarchy: which nodes serve
    /// which layer, and which normal nodes populate each layer.
    ///
    /// `serving` maps a serving node (landmark or reference point) to the
    /// layer it serves *from* (its own layer); `layer_members` maps each
    /// layer to its (normal) member nodes. The conspiracy activates in
    /// every layer where it controls at least the threshold of serving
    /// nodes, and commits to a victim set — `victim_fraction` of the
    /// normal nodes in the layer directly below each activated layer.
    pub fn observe_hierarchy(
        &mut self,
        serving: &BTreeMap<usize, usize>,
        layer_members: &BTreeMap<usize, Vec<usize>>,
    ) {
        // Count malicious serving nodes per layer.
        let mut per_layer: BTreeMap<usize, usize> = BTreeMap::new();
        self.rp_layer.clear();
        for (&node, &layer) in serving {
            if self.malicious.contains(&node) {
                *per_layer.entry(layer).or_insert(0) += 1;
                self.rp_layer.insert(node, layer);
            }
        }
        for (&layer, &count) in &per_layer {
            if count >= self.activation_threshold && self.active_layers.insert(layer) {
                // Newly activated: commit to victims from the layer below.
                if let Some(below) = layer_members.get(&(layer + 1)) {
                    let candidates: Vec<usize> = below
                        .iter()
                        .copied()
                        .filter(|v| !self.malicious.contains(v))
                        .collect();
                    let take =
                        ((candidates.len() as f64) * self.victim_fraction).round() as usize;
                    let mut rng =
                        SimRng::from_stream(self.seed, layer as u64, streams::NPSV); // "VICT"
                    let chosen = ices_stats::sample::sample_indices(
                        &mut rng,
                        candidates.len(),
                        take.min(candidates.len()),
                    );
                    for idx in chosen {
                        self.victims.insert(candidates[idx]);
                    }
                }
            }
        }
    }

    /// Layers in which the conspiracy is live.
    pub fn active_layers(&self) -> impl Iterator<Item = usize> + '_ {
        self.active_layers.iter().copied()
    }

    /// The committed victim set.
    pub fn victims(&self) -> impl Iterator<Item = usize> + '_ {
        self.victims.iter().copied()
    }

    /// Whether the attack is live anywhere.
    pub fn is_active(&self) -> bool {
        !self.active_layers.is_empty()
    }

    /// The agreed unit push direction for a victim — derived
    /// deterministically from the seed and shared by every conspirator.
    fn push_direction(&self, victim: usize) -> Vec<f64> {
        let mut rng = SimRng::from_stream(self.seed, victim as u64, streams::PSHD); // "PSHD"
        loop {
            let v: Vec<f64> = (0..self.dims)
                .map(|_| rng.random::<f64>() * 2.0 - 1.0)
                .collect();
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-6 {
                break v.into_iter().map(|x| x / norm).collect::<Vec<f64>>();
            }
        }
    }
}

impl Adversary for NpsCollusionAttack {
    fn is_malicious(&self, node: usize) -> bool {
        self.malicious.contains(&node)
    }

    fn intercept(
        &self,
        peer: usize,
        victim: usize,
        _tick: u64,
        _true_coord: &Coordinate,
        _true_error: f64,
        measured_rtt: f64,
        victim_coord: &Coordinate,
    ) -> Option<TamperedSample> {
        if !self.malicious.contains(&peer) {
            return None;
        }
        // Honest until activated, and only against the committed victims
        // served from an activated layer.
        let layer = *self.rp_layer.get(&peer)?;
        if !self.active_layers.contains(&layer) || !self.victims.contains(&victim) {
            return None;
        }
        // The drag lie: claim to sit `(1 + drag)·rtt` from the victim's
        // current position along the agreed direction, and report the
        // genuine RTT. Satisfying this sample requires the victim to move
        // `drag·rtt` along the push direction.
        let u = self.push_direction(victim);
        let standoff = (1.0 + self.drag) * measured_rtt;
        let position: Vec<f64> = victim_coord
            .position()
            .iter()
            .zip(&u)
            .map(|(&x, &ui)| x + standoff * ui)
            .collect();
        Some(TamperedSample {
            coord: Coordinate::euclidean(position),
            error: self.claimed_error,
            rtt_ms: measured_rtt,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ices_coord::Space;

    fn conspiracy(members: &[usize]) -> NpsCollusionAttack {
        NpsCollusionAttack::new(members.iter().copied(), 8, 3.0, 0.5, 3)
    }

    fn serving_map(pairs: &[(usize, usize)]) -> BTreeMap<usize, usize> {
        pairs.iter().copied().collect()
    }

    fn members_map(layer: usize, members: &[usize]) -> BTreeMap<usize, Vec<usize>> {
        let mut m = BTreeMap::new();
        m.insert(layer, members.to_vec());
        m
    }

    fn activated() -> NpsCollusionAttack {
        let mut a = conspiracy(&[1, 2, 3, 4, 5]);
        a.observe_hierarchy(
            &serving_map(&[(1, 1), (2, 1), (3, 1), (4, 1), (5, 1)]),
            &members_map(2, &[10, 11, 12, 13, 14, 15, 16, 17]),
        );
        a
    }

    #[test]
    fn dormant_until_threshold_reached() {
        let mut a = conspiracy(&[1, 2, 3, 4, 5, 6]);
        // Only 4 conspirators are RPs at layer 1 — below the threshold.
        a.observe_hierarchy(
            &serving_map(&[(1, 1), (2, 1), (3, 1), (4, 1), (100, 1)]),
            &members_map(2, &[10, 11, 12, 13]),
        );
        assert!(!a.is_active());
        let c = Coordinate::origin(Space::euclidean(8));
        assert!(
            a.intercept(1, 10, 0, &c, 0.5, 40.0, &c).is_none(),
            "conspirators behave honestly before activation"
        );
    }

    #[test]
    fn activates_at_threshold_and_commits_victims() {
        let a = activated();
        assert!(a.is_active());
        let victims: Vec<usize> = a.victims().collect();
        assert_eq!(victims.len(), 4, "50% of the 8 normal nodes below");
        assert!(victims.iter().all(|v| !a.is_malicious(*v)));
    }

    #[test]
    fn only_victims_are_attacked() {
        let a = activated();
        let victims: BTreeSet<usize> = a.victims().collect();
        let c = Coordinate::origin(Space::euclidean(8));
        for node in [10, 11, 12, 13, 14, 15, 16, 17] {
            let hit = a.intercept(1, node, 0, &c, 0.5, 40.0, &c).is_some();
            assert_eq!(hit, victims.contains(&node), "node {node}");
        }
    }

    #[test]
    fn drag_lie_demands_a_drag_rtt_displacement() {
        let a = activated();
        let victim = a.victims().next().expect("victims");
        let vc = Coordinate::origin(Space::euclidean(8));
        let rtt = 80.0;
        let t = a.intercept(1, victim, 0, &vc, 0.5, rtt, &vc).expect("tampered");
        // Claimed standoff: (1 + drag)·rtt from the victim.
        let d = vc.distance(&t.coord);
        assert!(
            (d - 4.0 * rtt).abs() < 1e-9,
            "standoff {d} should be (1+3)·rtt"
        );
        // The victim's measured relative error against this sample is
        // exactly the drag factor — the signature the Kalman test flags.
        let rel = (d - t.rtt_ms).abs() / t.rtt_ms;
        assert!((rel - 3.0).abs() < 1e-9, "relative error {rel}");
        // The RTT itself is untouched (no probe tampering needed).
        assert_eq!(t.rtt_ms, rtt);
    }

    #[test]
    fn colluders_share_the_push_direction() {
        let a = activated();
        let victim = a.victims().next().expect("victims");
        let vc = Coordinate::origin(Space::euclidean(8));
        let t1 = a.intercept(1, victim, 0, &vc, 0.5, 50.0, &vc).expect("tampered");
        let t2 = a.intercept(2, victim, 0, &vc, 0.5, 100.0, &vc).expect("tampered");
        // Same direction, different standoffs: t2's position must be
        // exactly 2× t1's (both start from the origin).
        for (x1, x2) in t1.coord.position().iter().zip(t2.coord.position()) {
            assert!((x2 - 2.0 * x1).abs() < 1e-9, "colluders disagree on direction");
        }
    }

    #[test]
    fn different_victims_get_different_directions() {
        let a = activated();
        let victims: Vec<usize> = a.victims().collect();
        let u1 = a.push_direction(victims[0]);
        let u2 = a.push_direction(victims[1]);
        assert_ne!(u1, u2);
        for u in [&u1, &u2] {
            let norm = u.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "push directions are unit vectors");
        }
    }

    #[test]
    fn drag_tracks_the_victims_current_position() {
        // As the victim moves, the lie moves with it — the staircase that
        // walks the victim out of its region.
        let a = activated();
        let victim = a.victims().next().expect("victims");
        let at_origin = Coordinate::origin(Space::euclidean(8));
        let moved = Coordinate::euclidean(vec![100.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let t1 = a.intercept(1, victim, 0, &at_origin, 0.5, 50.0, &at_origin).expect("t");
        let t2 = a.intercept(1, victim, 0, &at_origin, 0.5, 50.0, &moved).expect("t");
        assert_ne!(t1.coord, t2.coord, "the lie follows the victim");
        assert!((moved.distance(&t2.coord) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn honest_peers_and_nonvictims_pass_through() {
        let a = activated();
        let c = Coordinate::origin(Space::euclidean(8));
        assert!(a.intercept(99, 10, 0, &c, 0.5, 40.0, &c).is_none());
        // A conspirator that is not a serving RP stays honest.
        let mut b = conspiracy(&[1, 2, 3, 4, 5, 6]);
        b.observe_hierarchy(
            &serving_map(&[(1, 1), (2, 1), (3, 1), (4, 1), (5, 1)]),
            &members_map(2, &[10, 11]),
        );
        assert!(b.intercept(6, 10, 0, &c, 0.5, 40.0, &c).is_none());
    }

    #[test]
    fn deterministic_across_instances() {
        let a = activated();
        let b = activated();
        let victim = a.victims().next().expect("victims");
        let c = Coordinate::origin(Space::euclidean(8));
        let ta = a.intercept(3, victim, 0, &c, 0.5, 70.0, &c).expect("t");
        let tb = b.intercept(3, victim, 0, &c, 0.5, 70.0, &c).expect("t");
        assert_eq!(ta, tb);
    }
}
