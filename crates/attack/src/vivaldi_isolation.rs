//! The colluding isolation attack on Vivaldi (§5.2 of the paper).
//!
//! The malicious nodes agree on a large **exclusion zone** around a
//! target node and set their claimed coordinates outside it, trying to
//! attract honest nodes out of the zone and thereby isolate the target.
//! Two properties matter for the detection study:
//!
//! * the attackers collude — they share one zone and push consistently
//!   away from it;
//! * an attacker always uses the **same coordinate when lying to a given
//!   honest node** (per-victim-consistent lies, which defeats naive
//!   "did the peer's coordinate jump?" checks).
//!
//! (Reference \[11\]: Kaafar et al., CoNEXT 2006.)
//!
//! The lie works through Vivaldi's own spring dynamics: the claimed
//! coordinate is far from the victim while the measured RTT stays small,
//! so the spring is "compressed" and relaxation drags the victim toward
//! the fake position — outside the zone. Attackers also claim a very low
//! local error so the victim weights the malicious sample heavily.

use crate::adversary::{Adversary, TamperedSample};
use ices_coord::Coordinate;
use ices_stats::rng::SimRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use ices_stats::streams;

/// The colluding isolation attack.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VivaldiIsolationAttack {
    /// Nodes under adversary control.
    malicious: BTreeSet<usize>,
    /// Center of the agreed exclusion zone (the target's position as
    /// scouted by the colluders before the attack).
    zone_center: Coordinate,
    /// Radius of the exclusion zone, in ms.
    zone_radius: f64,
    /// Confidence the attackers claim (lower = more influence).
    claimed_error: f64,
    /// Lie standoff range in zone radii: fake coordinates are placed
    /// uniformly within `standoff.0 .. standoff.1` radii from the zone
    /// center. The attack of reference \[11\] is blatant — the colluders pretend to
    /// be far outside the zone to exert maximal pull.
    standoff: (f64, f64),
    /// Seed for drawing lie positions. Lies are re-derived from the seed
    /// on every call (no cache), so `intercept` can stay `&self` and be
    /// consulted from concurrent simulation workers.
    seed: u64,
}

impl VivaldiIsolationAttack {
    /// Set up the collusion: `malicious` nodes agree to repulse everyone
    /// from the zone of radius `zone_radius` around `zone_center`.
    ///
    /// # Panics
    /// Panics if the radius is not positive or the claimed error is not
    /// in `(0, 1]`.
    pub fn new(
        malicious: impl IntoIterator<Item = usize>,
        zone_center: Coordinate,
        zone_radius: f64,
        seed: u64,
    ) -> Self {
        assert!(zone_radius > 0.0, "zone radius must be positive");
        Self {
            malicious: malicious.into_iter().collect(),
            zone_center,
            zone_radius,
            claimed_error: 0.01,
            standoff: (8.0, 16.0),
            seed,
        }
    }

    /// Override the lie standoff range (in zone radii). Lower values
    /// give a stealthier but weaker attack; the default (8–16) matches
    /// the blatant attack the paper evaluates.
    ///
    /// # Panics
    /// Panics unless `2 <= lo <= hi`.
    pub fn with_standoff(mut self, lo: f64, hi: f64) -> Self {
        assert!(lo >= 2.0 && hi >= lo, "standoff must satisfy 2 <= lo <= hi");
        self.standoff = (lo, hi);
        self
    }

    /// The exclusion-zone center.
    pub fn zone_center(&self) -> &Coordinate {
        &self.zone_center
    }

    /// The exclusion-zone radius.
    pub fn zone_radius(&self) -> f64 {
        self.zone_radius
    }

    /// Ids under adversary control.
    pub fn malicious_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.malicious.iter().copied()
    }

    /// The consistent lie attacker `a` tells victim `v`: a point derived
    /// deterministically from the seed, uniform in direction, placed in
    /// the standoff band outside the zone. Re-deriving (instead of
    /// caching) keeps the same lie per (attacker, victim) pair while
    /// leaving the adversary immutable during interception.
    fn lie_for(&self, attacker: usize, victim: usize) -> Coordinate {
        // The colluders coordinate their stories: all lies told to one
        // victim pull in (roughly) the same direction out of the zone,
        // with per-attacker jitter so the fakes do not coincide.
        let mut victim_rng = SimRng::from_stream(self.seed, victim as u64, streams::VICT); // "VICT"
        let base_angle = victim_rng.random::<f64>() * std::f64::consts::TAU;
        let mut rng = SimRng::from_stream(
            self.seed,
            attacker as u64,
            victim as u64 ^ streams::LIES,
        );
        let angle = base_angle + (rng.random::<f64>() - 0.5) * 0.5;
        let (lo, hi) = self.standoff;
        let radius = self.zone_radius * (lo + (hi - lo) * rng.random::<f64>());
        let mut position = self.zone_center.position().to_vec();
        // Spread the displacement over the first two dimensions (the
        // paper's Vivaldi space is 2-d + height); higher-dimensional
        // spaces just leave the remaining axes at the center value.
        if let Some(x) = position.get_mut(0) {
            *x += radius * angle.cos();
        }
        if let Some(y) = position.get_mut(1) {
            *y += radius * angle.sin();
        }
        Coordinate::new(position, 0.0)
    }
}

impl Adversary for VivaldiIsolationAttack {
    fn is_malicious(&self, node: usize) -> bool {
        self.malicious.contains(&node)
    }

    fn intercept(
        &self,
        peer: usize,
        victim: usize,
        _tick: u64,
        _true_coord: &Coordinate,
        _true_error: f64,
        measured_rtt: f64,
        _victim_coord: &Coordinate,
    ) -> Option<TamperedSample> {
        if !self.malicious.contains(&peer) || self.malicious.contains(&victim) {
            // Attackers embed honestly among themselves — they need valid
            // coordinates to keep their standing in the system.
            return None;
        }
        let coord = self.lie_for(peer, victim);
        Some(TamperedSample {
            coord,
            error: self.claimed_error,
            rtt_ms: measured_rtt, // coordinate lie only; RTT untouched
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ices_coord::Space;

    fn attack() -> VivaldiIsolationAttack {
        VivaldiIsolationAttack::new([1, 2, 3], Coordinate::new(vec![10.0, -5.0], 0.0), 100.0, 7)
    }

    #[test]
    fn malicious_membership() {
        let a = attack();
        assert!(a.is_malicious(1));
        assert!(!a.is_malicious(4));
    }

    #[test]
    fn lies_are_outside_the_exclusion_zone() {
        let a = attack();
        let victim_coord = Coordinate::origin(Space::with_height(2));
        for attacker in [1, 2, 3] {
            for victim in [10, 20, 30] {
                let t = a
                    .intercept(attacker, victim, 0, &victim_coord, 0.5, 40.0, &victim_coord)
                    .expect("malicious peer must tamper");
                let d = t.coord.distance(a.zone_center());
                assert!(
                    d >= 2.0 * a.zone_radius(),
                    "lie at distance {d} is inside the agreed standoff"
                );
                assert!(t.error <= 0.01, "attackers claim high confidence");
            }
        }
    }

    #[test]
    fn lies_are_consistent_per_victim() {
        let a = attack();
        let c = Coordinate::origin(Space::with_height(2));
        let first = a.intercept(1, 10, 0, &c, 0.5, 40.0, &c).expect("tampered");
        for _ in 0..5 {
            let again = a.intercept(1, 10, 0, &c, 0.5, 40.0, &c).expect("tampered");
            assert_eq!(
                first.coord, again.coord,
                "same victim must hear the same lie"
            );
        }
    }

    #[test]
    fn different_victims_hear_different_lies() {
        let a = attack();
        let c = Coordinate::origin(Space::with_height(2));
        let to_10 = a.intercept(1, 10, 0, &c, 0.5, 40.0, &c).expect("tampered");
        let to_11 = a.intercept(1, 11, 0, &c, 0.5, 40.0, &c).expect("tampered");
        assert_ne!(to_10.coord, to_11.coord);
    }

    #[test]
    fn honest_peers_pass_through() {
        let a = attack();
        let c = Coordinate::origin(Space::with_height(2));
        assert!(a.intercept(9, 10, 0, &c, 0.5, 40.0, &c).is_none());
    }

    #[test]
    fn attackers_spare_each_other() {
        let a = attack();
        let c = Coordinate::origin(Space::with_height(2));
        assert!(
            a.intercept(1, 2, 0, &c, 0.5, 40.0, &c).is_none(),
            "colluders embed honestly among themselves"
        );
    }

    #[test]
    fn rtt_is_never_deflated() {
        let a = attack();
        let c = Coordinate::origin(Space::with_height(2));
        let t = a.intercept(1, 10, 0, &c, 0.5, 37.5, &c).expect("tampered");
        assert!(t.rtt_ms >= 37.5);
    }

    #[test]
    fn deterministic_across_instances() {
        let a = attack();
        let b = attack();
        let c = Coordinate::origin(Space::with_height(2));
        let ta = a.intercept(2, 42, 0, &c, 0.5, 40.0, &c).expect("tampered");
        let tb = b.intercept(2, 42, 0, &c, 0.5, 40.0, &c).expect("tampered");
        assert_eq!(ta, tb);
    }
}
