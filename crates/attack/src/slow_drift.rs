//! The slow-drift ("frog-boiling") attack: stay under the threshold,
//! accumulate forever.
//!
//! The paper's detector is an innovation test: a sample is rejected
//! when the measured relative error jumps further from the Kalman
//! prediction than `t_n = √v_η,n · Q⁻¹(α/2)` (Eq. 5). The known
//! post-2007 counter (ROADMAP item 3; "frog-boiling" in the literature)
//! is to never jump: each tick the attacker displaces its claimed
//! coordinate by a small per-tick increment, so every individual
//! innovation stays inside the threshold band, every sample is
//! *accepted*, and — because accepted samples update the filter — the
//! filter's notion of normal drifts along with the lie. Displacement
//! accumulates without bound while TPR collapses toward zero.
//!
//! The paper-honest knob is [`SlowDriftAttack::drift_rate_ms`]: the
//! claimed position moves `drift_rate_ms` per tick along a per-victim
//! direction derived from `(seed, victim)`. Small rates (a fraction of
//! the innovation threshold, which for calibrated filters sits at a few
//! tens of ms of distance error) evade detection outright; cranking the
//! rate past the threshold margin turns the attack back into a blatant
//! one the detector catches — the sweep in
//! `crates/sim/src/experiments/adversary.rs` maps exactly that
//! transition. The genuine RTT is always reported and the claimed error
//! mirrors the true one: nothing about a single sample looks wrong,
//! only the trajectory does.

use crate::adversary::{Adversary, TamperedSample};
use ices_coord::Coordinate;
use ices_stats::rng::SimRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use ices_stats::streams;

/// The calibrated slow-drift attack.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlowDriftAttack {
    /// Nodes under adversary control.
    attackers: BTreeSet<usize>,
    /// Per-tick claimed-coordinate displacement, in ms — the knob that
    /// trades stealth (small, under the innovation threshold) against
    /// speed (large, detectable).
    drift_rate_ms: f64,
    /// Tick the drift begins at; displacement before it is zero. The
    /// boiling has to start from the water the frog is sitting in: an
    /// attack armed mid-run anchors here so its first sample is honest
    /// rather than a blatant jump.
    start_tick: u64,
    /// Seed the per-victim drift directions derive from.
    seed: u64,
}

impl SlowDriftAttack {
    /// Set up the drift: `attackers` displace their claimed coordinates
    /// by `drift_rate_ms` per tick along per-victim directions.
    ///
    /// # Panics
    /// Panics unless `drift_rate_ms > 0`.
    pub fn new(
        attackers: impl IntoIterator<Item = usize>,
        drift_rate_ms: f64,
        seed: u64,
    ) -> Self {
        assert!(drift_rate_ms > 0.0, "drift rate must be positive");
        Self {
            attackers: attackers.into_iter().collect(),
            drift_rate_ms,
            start_tick: 0,
            seed,
        }
    }

    /// Anchor the drift at `tick`: displacement is zero up to it and
    /// accumulates from there. An attack armed mid-simulation starts
    /// from the truth instead of opening with a detectable jump.
    #[must_use]
    pub fn starting_at(mut self, tick: u64) -> Self {
        self.start_tick = tick;
        self
    }

    /// Nodes under adversary control.
    pub fn attacker_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.attackers.iter().copied()
    }

    /// The per-tick displacement in ms.
    pub fn drift_rate_ms(&self) -> f64 {
        self.drift_rate_ms
    }

    /// The unit direction attacker lies to `victim` drift along,
    /// re-derived from the seed on every call so `intercept` stays
    /// `&self`. Shared by all attackers: the drift is coordinated, so
    /// the victim's whole malicious sample stream pulls one way.
    fn direction_for(&self, victim: usize) -> (f64, f64) {
        let mut rng = SimRng::from_stream(self.seed, streams::DRFT, victim as u64);
        let angle = rng.random::<f64>() * std::f64::consts::TAU;
        (angle.cos(), angle.sin())
    }
}

impl Adversary for SlowDriftAttack {
    fn is_malicious(&self, node: usize) -> bool {
        self.attackers.contains(&node)
    }

    fn intercept(
        &self,
        peer: usize,
        victim: usize,
        tick: u64,
        true_coord: &Coordinate,
        true_error: f64,
        measured_rtt: f64,
        _victim_coord: &Coordinate,
    ) -> Option<TamperedSample> {
        if !self.attackers.contains(&peer) || self.attackers.contains(&victim) {
            return None;
        }
        let displacement = self.drift_accumulated_ms(tick);
        let (ux, uy) = self.direction_for(victim);
        let mut position = true_coord.position().to_vec();
        if let Some(x) = position.get_mut(0) {
            *x += displacement * ux;
        }
        if let Some(y) = position.get_mut(1) {
            *y += displacement * uy;
        }
        Some(TamperedSample {
            coord: Coordinate::new(position, true_coord.height()),
            // Mirror the true error: the sample must look exactly as
            // trustworthy as an honest one.
            error: true_error,
            rtt_ms: measured_rtt,
        })
    }

    fn drift_accumulated_ms(&self, tick: u64) -> f64 {
        self.drift_rate_ms * tick.saturating_sub(self.start_tick) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attack() -> SlowDriftAttack {
        SlowDriftAttack::new([1, 2, 3], 0.5, 17)
    }

    fn coord(x: f64, y: f64) -> Coordinate {
        Coordinate::new(vec![x, y], 1.0)
    }

    #[test]
    fn membership() {
        let a = attack();
        assert!(a.is_malicious(3));
        assert!(!a.is_malicious(4));
    }

    #[test]
    fn displacement_grows_linearly_with_ticks() {
        let a = attack();
        let c = coord(10.0, -5.0);
        let at = |tick| {
            let t = a.intercept(1, 10, tick, &c, 0.4, 30.0, &c).expect("tampered");
            // Positions only: `distance` would add both heights on top.
            let diff: Vec<f64> = t
                .coord
                .position()
                .iter()
                .zip(c.position())
                .map(|(a, b)| a - b)
                .collect();
            ices_coord::vector::norm(&diff)
        };
        let d0 = at(0);
        let d10 = at(10);
        let d100 = at(100);
        assert!(d0.abs() < 1e-9, "tick 0 starts at the truth: {d0}");
        assert!((d10 - 5.0).abs() < 1e-9, "0.5 ms/tick × 10 ticks: {d10}");
        assert!((d100 - 50.0).abs() < 1e-9, "unbounded accumulation: {d100}");
        assert_eq!(a.drift_accumulated_ms(100), 50.0);
    }

    #[test]
    fn start_tick_anchors_the_drift() {
        let a = attack().starting_at(100);
        assert_eq!(a.drift_accumulated_ms(50), 0.0, "no drift before start");
        assert_eq!(a.drift_accumulated_ms(100), 0.0, "starts from the truth");
        assert_eq!(a.drift_accumulated_ms(120), 10.0, "0.5 ms × 20 ticks");
        let c = coord(1.0, 1.0);
        let t = a.intercept(1, 10, 100, &c, 0.4, 30.0, &c).expect("tampered");
        assert_eq!(t.coord.position(), c.position(), "first sample is honest");
    }

    #[test]
    fn drift_direction_is_coordinated_per_victim() {
        let a = attack();
        let c = coord(0.0, 0.0);
        let t1 = a.intercept(1, 10, 20, &c, 0.4, 30.0, &c).expect("tampered");
        let t2 = a.intercept(2, 10, 20, &c, 0.4, 30.0, &c).expect("tampered");
        assert_eq!(
            t1.coord, t2.coord,
            "all attackers drift a victim the same way"
        );
        let t_other = a.intercept(1, 11, 20, &c, 0.4, 30.0, &c).expect("tampered");
        assert_ne!(t1.coord, t_other.coord, "directions are per-victim");
    }

    #[test]
    fn samples_look_individually_honest() {
        let a = attack();
        let c = coord(3.0, 4.0);
        let t = a.intercept(1, 10, 7, &c, 0.42, 33.0, &c).expect("tampered");
        assert_eq!(t.error, 0.42);
        assert_eq!(t.rtt_ms, 33.0);
        assert_eq!(t.coord.height(), c.height());
    }

    #[test]
    fn honest_peers_pass_through_and_attackers_spare_each_other() {
        let a = attack();
        let c = coord(0.0, 0.0);
        assert!(a.intercept(9, 10, 5, &c, 0.5, 30.0, &c).is_none());
        assert!(a.intercept(1, 2, 5, &c, 0.5, 30.0, &c).is_none());
    }

    #[test]
    fn deterministic_across_instances() {
        let a = attack();
        let b = attack();
        let c = coord(1.0, 2.0);
        assert_eq!(
            a.intercept(2, 42, 31, &c, 0.5, 40.0, &c),
            b.intercept(2, 42, 31, &c, 0.5, 40.0, &c)
        );
    }
}
