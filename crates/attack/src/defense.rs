//! VerLoc-style cross-verification defense (opt-in).
//!
//! The paper's detector vets a sample against the victim's *own* filter
//! — a purely local test that consistent colluders (eclipse
//! translations, calibrated slow drift) evade by construction. VerLoc
//! (arXiv:2105.11928) points at the missing ingredient: **independent
//! vantage points**. With the defense armed, a victim cross-checks each
//! peer's claimed coordinate through `k` seeded witness nodes: each
//! witness measures its own RTT to the peer, and votes *against* the
//! claim when the geometry doesn't add up — when the distance from the
//! claimed coordinate to the witness's coordinate disagrees with the
//! witness's measured RTT by more than a tolerance. A quorum of
//! votes-against rejects the sample outright, before it ever reaches
//! the Kalman filter.
//!
//! Witness draws derive from `(seed, tick, victim, peer)` — pure
//! streams, no shared state — so the defense preserves the drivers'
//! bit-for-bit thread-count invariance. Colluding witnesses corroborate
//! a colluding peer's lie (they vote consistent no matter what), which
//! is what makes witness *count* a real knob rather than a free win.

use ices_coord::Coordinate;
use ices_stats::rng::{derive2, SimRng};
use rand::RngExt;
use serde::{Deserialize, Serialize};
use ices_stats::streams;

/// Cross-verification configuration. The default is **off** — the
/// paper's system has no such check; arming it is the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DefenseConfig {
    /// Whether cross-verification runs at all.
    pub enabled: bool,
    /// Witnesses drawn per vetted sample.
    pub witnesses: usize,
    /// Votes-against needed to reject the sample.
    pub quorum: usize,
    /// Relative geometric disagreement a witness tolerates before
    /// voting against: `|dist(claimed, witness) − rtt| / rtt` beyond
    /// this is a vote against. Must absorb honest embedding error
    /// (median relative error ~0.2 on these topologies) plus routing
    /// triangle-inequality violations, or the defense convicts honest
    /// nodes wholesale.
    pub tolerance: f64,
    /// Seed the witness draws derive from.
    pub seed: u64,
}

impl DefenseConfig {
    /// The paper's system: no cross-verification.
    pub fn off() -> Self {
        Self {
            enabled: false,
            witnesses: 0,
            quorum: 0,
            tolerance: 0.0,
            seed: 0,
        }
    }

    /// The default armed configuration: 3 witnesses, 2 votes to
    /// reject, 50% geometric tolerance.
    pub fn cross_verification(seed: u64) -> Self {
        Self {
            enabled: true,
            witnesses: 3,
            quorum: 2,
            tolerance: 0.5,
            seed,
        }
    }

    /// Validate the knobs.
    ///
    /// # Panics
    /// Panics when enabled with zero witnesses, a quorum larger than
    /// the witness count or zero, or a non-positive tolerance.
    pub fn validate(&self) {
        if !self.enabled {
            return;
        }
        assert!(self.witnesses >= 1, "armed defense needs witnesses");
        assert!(
            self.quorum >= 1 && self.quorum <= self.witnesses,
            "quorum must be in 1..=witnesses"
        );
        assert!(self.tolerance > 0.0, "tolerance must be positive");
    }

    /// Draw the witness set for the interaction in which `victim` vets
    /// `peer` at `tick`: up to `witnesses` distinct nodes, never the
    /// victim or the peer, from a stream keyed purely on
    /// `(seed, tick, victim, peer)` — identical at any worker count.
    /// Returns fewer than `witnesses` ids only in tiny populations.
    pub fn draw_witnesses(&self, tick: u64, victim: usize, peer: usize, population: usize) -> Vec<usize> {
        let mut rng = SimRng::from_stream(
            self.seed,
            derive2(streams::WTNS, tick, victim as u64),
            peer as u64,
        );
        let mut out = Vec::with_capacity(self.witnesses);
        // Bounded draw: tiny populations may not hold k distinct
        // eligible witnesses, and an unbounded loop must not hang.
        let mut attempts = 0;
        while out.len() < self.witnesses && attempts < 16 * self.witnesses.max(1) {
            attempts += 1;
            if population <= 2 {
                break;
            }
            let w = rng.random_range(0..population);
            if w != victim && w != peer && !out.contains(&w) {
                out.push(w);
            }
        }
        out
    }
}

/// One witness's vote: does the claimed coordinate disagree with this
/// witness's own measurement beyond the tolerance?
///
/// `claimed` is the coordinate the peer presented to the victim,
/// `witness_coord` the witness's current coordinate, and
/// `witness_rtt_ms` the RTT the witness measured to the peer. Degenerate
/// measurements (non-positive RTT) abstain rather than convict.
pub fn witness_votes_against(
    claimed: &Coordinate,
    witness_coord: &Coordinate,
    witness_rtt_ms: f64,
    tolerance: f64,
) -> bool {
    if witness_rtt_ms <= 0.0 {
        return false;
    }
    let predicted = claimed.distance(witness_coord);
    (predicted - witness_rtt_ms).abs() / witness_rtt_ms > tolerance
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord(x: f64, y: f64) -> Coordinate {
        Coordinate::new(vec![x, y], 0.0)
    }

    #[test]
    fn off_config_validates_trivially() {
        DefenseConfig::off().validate();
        assert!(!DefenseConfig::off().enabled);
    }

    #[test]
    fn armed_default_validates() {
        let d = DefenseConfig::cross_verification(5);
        d.validate();
        assert!(d.enabled);
        assert!(d.quorum <= d.witnesses);
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn oversized_quorum_panics() {
        DefenseConfig {
            quorum: 5,
            ..DefenseConfig::cross_verification(5)
        }
        .validate();
    }

    #[test]
    fn witness_draws_are_deterministic_distinct_and_exclude_parties() {
        let d = DefenseConfig::cross_verification(9);
        let a = d.draw_witnesses(4, 10, 20, 100);
        let b = d.draw_witnesses(4, 10, 20, 100);
        assert_eq!(a, b, "same (tick, victim, peer) must redraw identically");
        assert_eq!(a.len(), d.witnesses);
        for (i, &w) in a.iter().enumerate() {
            assert!(w != 10 && w != 20, "witness {w} is a party to the claim");
            assert!(!a[..i].contains(&w), "duplicate witness {w}");
        }
        let c = d.draw_witnesses(5, 10, 20, 100);
        assert_ne!(a, c, "ticks use disjoint draws");
    }

    #[test]
    fn tiny_population_draw_terminates_short() {
        let d = DefenseConfig::cross_verification(9);
        assert!(d.draw_witnesses(0, 0, 1, 2).is_empty());
        let small = d.draw_witnesses(0, 0, 1, 4);
        assert!(small.len() <= 2, "only nodes 2 and 3 are eligible");
    }

    #[test]
    fn geometric_inconsistency_is_a_vote_against() {
        // Witness at (0,0); a peer *actually* 100 ms away claims to sit
        // 400 ms away: 3× disagreement, far past a 50% tolerance.
        let witness = coord(0.0, 0.0);
        let honest_claim = coord(100.0, 0.0);
        let lying_claim = coord(400.0, 0.0);
        assert!(!witness_votes_against(&honest_claim, &witness, 100.0, 0.5));
        assert!(witness_votes_against(&lying_claim, &witness, 100.0, 0.5));
    }

    #[test]
    fn degenerate_rtt_abstains() {
        let witness = coord(0.0, 0.0);
        let claim = coord(400.0, 0.0);
        assert!(!witness_votes_against(&claim, &witness, 0.0, 0.5));
    }
}
