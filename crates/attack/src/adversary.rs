//! The adversary interface the simulation driver consults.

use ices_coord::Coordinate;
use serde::{Deserialize, Serialize};

/// What an attacker presents to a victim instead of the truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TamperedSample {
    /// The coordinate the attacker claims.
    pub coord: Coordinate,
    /// The confidence (local error) the attacker claims — typically very
    /// low, to maximize its influence on the victim.
    pub error: f64,
    /// The RTT the victim ends up measuring. Attackers can only *add*
    /// delay to a probe, so implementations must keep this ≥ the true
    /// measured RTT.
    pub rtt_ms: f64,
}

/// An adversary controlling a subset of nodes.
///
/// The simulation driver calls [`Adversary::intercept`] for every
/// embedding interaction. Honest peers (or malicious peers choosing to
/// behave, e.g. NPS conspirators before activation) return `None` and
/// the true sample goes through. The driver uses the `Some`/`None`
/// outcome as the ground-truth positive/negative label for the
/// detection metrics of §5.1.
///
/// `intercept` takes `&self` and the trait requires `Sync`: the
/// two-phase tick loops consult the adversary concurrently from every
/// worker thread, so an implementation must answer purely from its
/// configuration (deriving any per-victim randomness from its seed
/// rather than caching it). Reconfiguration entry points such as
/// [`observe_hierarchy`](../nps_collusion/struct.NpsCollusionAttack.html#method.observe_hierarchy)
/// stay `&mut self` and happen between runs.
pub trait Adversary: Sync {
    /// Whether the adversary controls this node at all (used to keep
    /// malicious nodes out of the honest-population metrics).
    fn is_malicious(&self, node: usize) -> bool;

    /// Possibly tamper with the interaction in which `victim` embeds
    /// against `peer`.
    ///
    /// * `true_coord`, `true_error` — what an honest peer would report;
    /// * `measured_rtt` — the RTT the probe actually measured;
    /// * `victim_coord` — the victim's current coordinate (attackers can
    ///   observe it; they are part of the system).
    fn intercept(
        &self,
        peer: usize,
        victim: usize,
        true_coord: &Coordinate,
        true_error: f64,
        measured_rtt: f64,
        victim_coord: &Coordinate,
    ) -> Option<TamperedSample>;
}

/// The attack-free world: nobody ever lies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HonestWorld;

impl Adversary for HonestWorld {
    fn is_malicious(&self, _node: usize) -> bool {
        false
    }

    fn intercept(
        &self,
        _peer: usize,
        _victim: usize,
        _true_coord: &Coordinate,
        _true_error: f64,
        _measured_rtt: f64,
        _victim_coord: &Coordinate,
    ) -> Option<TamperedSample> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ices_coord::Space;

    #[test]
    fn honest_world_never_tampers() {
        let w = HonestWorld;
        let c = Coordinate::origin(Space::with_height(2));
        assert!(!w.is_malicious(3));
        assert!(w.intercept(1, 2, &c, 0.5, 30.0, &c).is_none());
    }
}
