//! The adversary interface the simulation driver consults.

use ices_coord::Coordinate;
use serde::{Deserialize, Serialize};

/// What an attacker presents to a victim instead of the truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TamperedSample {
    /// The coordinate the attacker claims.
    pub coord: Coordinate,
    /// The confidence (local error) the attacker claims — typically very
    /// low, to maximize its influence on the victim.
    pub error: f64,
    /// The RTT the victim ends up measuring. Attackers can only *add*
    /// delay to a probe, so implementations must keep this ≥ the true
    /// measured RTT. The drivers enforce the invariant at intake via
    /// [`TamperedSample::clamp_rtt`]; a deflating adversary is clamped
    /// (and counted), never obeyed.
    pub rtt_ms: f64,
}

impl TamperedSample {
    /// Enforce the attackers-can-only-add-delay invariant: raise
    /// `rtt_ms` to `measured_rtt` if the adversary tried to deflate it.
    /// Returns whether a clamp was needed — the drivers count these as
    /// `attack.clamped_rtts` so a physics-violating adversary is
    /// visible, not silently corrected.
    pub fn clamp_rtt(&mut self, measured_rtt: f64) -> bool {
        if self.rtt_ms < measured_rtt {
            self.rtt_ms = measured_rtt;
            true
        } else {
            false
        }
    }
}

/// An adversary controlling a subset of nodes.
///
/// The simulation driver calls [`Adversary::intercept`] for every
/// embedding interaction. Honest peers (or malicious peers choosing to
/// behave, e.g. NPS conspirators before activation) return `None` and
/// the true sample goes through. The driver uses the `Some`/`None`
/// outcome as the ground-truth positive/negative label for the
/// detection metrics of §5.1.
///
/// `intercept` takes `&self` and the trait requires `Sync`: the
/// two-phase tick loops consult the adversary concurrently from every
/// worker thread, so an implementation must answer purely from its
/// configuration (deriving any per-victim randomness from its seed
/// rather than caching it). Reconfiguration entry points such as
/// [`observe_hierarchy`](../nps_collusion/struct.NpsCollusionAttack.html#method.observe_hierarchy)
/// stay `&mut self` and happen between runs.
pub trait Adversary: Sync {
    /// Whether the adversary controls this node at all (used to keep
    /// malicious nodes out of the honest-population metrics).
    fn is_malicious(&self, node: usize) -> bool;

    /// Possibly tamper with the interaction in which `victim` embeds
    /// against `peer` during embedding tick `tick`.
    ///
    /// * `tick` — the driver's embedding tick (NPS: positioning round).
    ///   Time-varying attacks (slow drift) derive their displacement
    ///   from it; the paper's two attacks ignore it, so their behavior
    ///   is bit-identical to before the parameter existed;
    /// * `true_coord`, `true_error` — what an honest peer would report;
    /// * `measured_rtt` — the RTT the probe actually measured;
    /// * `victim_coord` — the victim's current coordinate (attackers can
    ///   observe it; they are part of the system).
    #[allow(clippy::too_many_arguments)]
    fn intercept(
        &self,
        peer: usize,
        victim: usize,
        tick: u64,
        true_coord: &Coordinate,
        true_error: f64,
        measured_rtt: f64,
        victim_coord: &Coordinate,
    ) -> Option<TamperedSample>;

    /// Total coordinate displacement (ms) this adversary has dragged a
    /// victim through by tick `tick` — nonzero only for accumulating
    /// attacks (slow drift), where the driver surfaces it as the
    /// `attack.drift_accumulated_ms` gauge. The default is no drift.
    fn drift_accumulated_ms(&self, _tick: u64) -> f64 {
        0.0
    }
}

/// The attack-free world: nobody ever lies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HonestWorld;

impl Adversary for HonestWorld {
    fn is_malicious(&self, _node: usize) -> bool {
        false
    }

    fn intercept(
        &self,
        _peer: usize,
        _victim: usize,
        _tick: u64,
        _true_coord: &Coordinate,
        _true_error: f64,
        _measured_rtt: f64,
        _victim_coord: &Coordinate,
    ) -> Option<TamperedSample> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ices_coord::Space;

    #[test]
    fn honest_world_never_tampers() {
        let w = HonestWorld;
        let c = Coordinate::origin(Space::with_height(2));
        assert!(!w.is_malicious(3));
        assert!(w.intercept(1, 2, 0, &c, 0.5, 30.0, &c).is_none());
        assert_eq!(w.drift_accumulated_ms(100), 0.0);
    }

    #[test]
    fn clamp_rtt_raises_deflated_rtts_only() {
        let c = Coordinate::origin(Space::with_height(2));
        let mut deflated = TamperedSample {
            coord: c.clone(),
            error: 0.1,
            rtt_ms: 10.0,
        };
        assert!(deflated.clamp_rtt(25.0), "deflation must be reported");
        assert_eq!(deflated.rtt_ms, 25.0);
        let mut inflated = TamperedSample {
            coord: c,
            error: 0.1,
            rtt_ms: 40.0,
        };
        assert!(!inflated.clamp_rtt(25.0), "added delay is legitimate");
        assert_eq!(inflated.rtt_ms, 40.0);
    }
}
