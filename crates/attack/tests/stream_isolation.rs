//! Regression lock on the VICT/NPSV stream-tag collision.
//!
//! Both attacks derive per-victim randomness as
//! `SimRng::from_stream(seed, index, TAG)` — the Vivaldi isolation
//! attack with `streams::VICT` (`vivaldi_isolation.rs`, the coordinated
//! lie direction) and the NPS collusion attack with `streams::NPSV`
//! (`nps_collusion.rs`, the per-layer victim draw). Until the audit's
//! STREAM01 registry pass caught it, both tags were the literal
//! `0x5649_4354` ("VICT"), so a scenario running both attacks off one
//! master seed handed them *identical* victim streams: the NPS layer-k
//! victim selection replayed the Vivaldi victim-k lie angles. These
//! tests mirror the two call sites exactly and pin the streams apart.

use ices_stats::rng::SimRng;
use rand::RngExt;
use ices_stats::streams;

/// The exact derivation each attack performs for index `i` under
/// `seed` (argument order matches both call sites).
fn vivaldi_victim_rng(seed: u64, i: u64) -> SimRng {
    SimRng::from_stream(seed, i, streams::VICT)
}

fn nps_victim_rng(seed: u64, i: u64) -> SimRng {
    SimRng::from_stream(seed, i, streams::NPSV)
}

#[test]
fn vivaldi_and_nps_attacks_draw_from_distinct_victim_streams() {
    for seed in [2007, 0xDEAD_BEEF, u64::MAX] {
        for i in 0..8 {
            let viv: Vec<u64> = {
                let mut rng = vivaldi_victim_rng(seed, i);
                (0..16).map(|_| rng.random::<u64>()).collect()
            };
            let nps: Vec<u64> = {
                let mut rng = nps_victim_rng(seed, i);
                (0..16).map(|_| rng.random::<u64>()).collect()
            };
            assert_ne!(
                viv, nps,
                "seed {seed:#x}, index {i}: the Vivaldi lie stream and the \
                 NPS victim-selection stream must never coincide"
            );
        }
    }
}

#[test]
fn each_attack_stream_is_still_deterministic_per_tag() {
    let mut a = vivaldi_victim_rng(7, 3);
    let mut b = vivaldi_victim_rng(7, 3);
    for _ in 0..32 {
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }
    let mut a = nps_victim_rng(7, 3);
    let mut b = nps_victim_rng(7, 3);
    for _ in 0..32 {
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }
}
