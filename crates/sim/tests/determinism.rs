//! Tier-1 determinism guarantee of the parallel engine: a simulation
//! run on four worker threads must be **bit-for-bit identical** to the
//! same run on the exact sequential path (`ICES_THREADS=1`).
//!
//! Both drivers are exercised through their full pipeline — clean
//! convergence, Surveyor calibration, armed detection, a colluding
//! attack with trace collection — and every observable output is
//! compared: coordinates, per-node malice traces, and the accumulated
//! detection report. Any scheduling-dependent state (shared RNG draws,
//! order-sensitive merges, rayon-style nondeterminism) would show up
//! here as a float diverging in the last ulp.

use ices_attack::{NpsCollusionAttack, VivaldiIsolationAttack};
use ices_core::EmConfig;
use ices_coord::Coordinate;
use ices_sim::metrics::DetectionReport;
use ices_sim::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use ices_sim::trace::TraceRing;
use ices_sim::{NpsSimulation, VivaldiSimulation};

fn scenario(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        topology: TopologyKind::small_planetlab(70),
        surveyors: SurveyorPlacement::Random { fraction: 0.1 },
        malicious_fraction: 0.2,
        alpha: 0.05,
        detection: true,
        clean_cycles: 6,
        attack_cycles: 3,
        embed_against_surveyors_only: false,
    }
}

/// Everything a run exposes, captured for comparison.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    coordinates: Vec<Coordinate>,
    traces: Vec<TraceRing>,
    report: DetectionReport,
}

fn vivaldi_fingerprint(seed: u64) -> Fingerprint {
    let mut sim = VivaldiSimulation::new(scenario(seed));
    sim.run_clean(6);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.arm_detection();
    let target = sim.normal_nodes()[0];
    let attack = VivaldiIsolationAttack::new(
        sim.malicious().iter().copied(),
        sim.coordinate(target).clone(),
        50.0,
        seed,
    );
    sim.run(3, &attack, true);
    Fingerprint {
        coordinates: (0..sim.len()).map(|i| sim.coordinate(i).clone()).collect(),
        traces: sim.traces().to_vec(),
        report: sim.report().clone(),
    }
}

fn nps_fingerprint(seed: u64) -> Fingerprint {
    let mut sim = NpsSimulation::new(scenario(seed));
    sim.run_clean(6);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.arm_detection();
    let mut attack = NpsCollusionAttack::new(sim.malicious().iter().copied(), 8, 3.0, 0.5, seed);
    attack.observe_hierarchy(&sim.serving_map(), &sim.layer_members());
    sim.run(3, &attack, true);
    Fingerprint {
        coordinates: (0..sim.len()).map(|i| sim.coordinate(i).clone()).collect(),
        traces: sim.traces().to_vec(),
        report: sim.report().clone(),
    }
}

#[test]
fn vivaldi_parallel_matches_sequential_bit_for_bit() {
    let sequential = ices_par::with_threads(1, || vivaldi_fingerprint(41));
    let parallel = ices_par::with_threads(4, || vivaldi_fingerprint(41));
    assert_eq!(
        sequential, parallel,
        "4-thread Vivaldi run diverged from the sequential path"
    );
}

#[test]
fn nps_parallel_matches_sequential_bit_for_bit() {
    let sequential = ices_par::with_threads(1, || nps_fingerprint(43));
    let parallel = ices_par::with_threads(4, || nps_fingerprint(43));
    assert_eq!(
        sequential, parallel,
        "4-thread NPS run diverged from the sequential path"
    );
}

#[test]
fn sweep_cells_are_thread_count_invariant() {
    use ices_sim::experiments::detection::fig9_12_vivaldi_sweep;
    use ices_sim::experiments::Scale;
    let sequential =
        ices_par::with_threads(1, || fig9_12_vivaldi_sweep(&Scale::test(), &[0.2], &[0.05]));
    let parallel =
        ices_par::with_threads(3, || fig9_12_vivaldi_sweep(&Scale::test(), &[0.2], &[0.05]));
    assert_eq!(
        sequential, parallel,
        "sweep results must not depend on worker count"
    );
}
