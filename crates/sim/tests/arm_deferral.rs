//! Regression tests for the join-probe arming path under a total
//! Surveyor outage. `arm_detection` used to fall through to
//! `&candidates[0]` on an empty candidate slice and panic; now a node
//! whose candidate Surveyors are all down defers arming to the next
//! tick (counted in `FaultReport::deferred_arms`) and arms late once a
//! Surveyor returns (`late_arms`).

use ices_core::EmConfig;
use ices_netsim::{ChurnModel, FaultPlan};
use ices_sim::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use ices_sim::{NpsSimulation, VivaldiSimulation};

fn scenario(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        topology: TopologyKind::small_planetlab(60),
        surveyors: SurveyorPlacement::Random { fraction: 0.1 },
        malicious_fraction: 0.1,
        alpha: 0.05,
        detection: true,
        clean_cycles: 4,
        attack_cycles: 2,
        embed_against_surveyors_only: false,
    }
}

/// Every Surveyor permanently down.
fn blackout(surveyors: &std::collections::BTreeSet<usize>) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for &s in surveyors {
        plan = plan.with_node_churn(s, ChurnModel::permanent_outage());
    }
    plan
}

#[test]
fn vivaldi_arm_defers_under_outage_and_recovers_when_it_lifts() {
    let mut sim = VivaldiSimulation::new(scenario(11));
    sim.run_clean(4);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.set_fault_plan(blackout(sim.surveyors()));

    // Used to panic on `&candidates[0]`; now every normal node defers.
    sim.arm_detection();
    let normals: Vec<usize> = sim.normal_nodes().to_vec();
    assert!(!sim.pending_arms().is_empty(), "outage must defer arming");
    let deferred = sim.report().faults.deferred_arms;
    assert!(deferred > 0, "deferrals must be counted");
    assert!(normals.iter().all(|&n| !sim.is_secured(n)));

    // Still dark: retries keep deferring, nothing arms, nothing panics.
    sim.run_clean(1);
    assert!(!sim.pending_arms().is_empty());
    assert!(sim.report().faults.deferred_arms > deferred);

    // Outage lifts: the next pass arms every pending node late.
    sim.set_fault_plan(FaultPlan::none());
    sim.run_clean(1);
    assert!(sim.pending_arms().is_empty(), "all pending nodes must arm");
    let faults = sim.report().faults;
    assert!(faults.late_arms > 0, "late arms must be counted: {faults:?}");
    assert!(normals.iter().all(|&n| sim.is_secured(n)));
}

#[test]
fn nps_arm_defers_under_outage_and_recovers_when_it_lifts() {
    let mut sim = NpsSimulation::new(scenario(13));
    sim.run_clean(4);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.set_fault_plan(blackout(sim.surveyors()));

    sim.arm_detection();
    let normals: Vec<usize> = sim.normal_nodes().to_vec();
    assert!(!sim.pending_arms().is_empty(), "outage must defer arming");
    let deferred = sim.report().faults.deferred_arms;
    assert!(deferred > 0, "deferrals must be counted");
    assert!(normals.iter().all(|&n| !sim.is_secured(n)));

    sim.run_clean(1);
    assert!(!sim.pending_arms().is_empty());
    assert!(sim.report().faults.deferred_arms > deferred);

    sim.set_fault_plan(FaultPlan::none());
    sim.run_clean(1);
    assert!(sim.pending_arms().is_empty(), "all pending nodes must arm");
    let faults = sim.report().faults;
    assert!(faults.late_arms > 0, "late arms must be counted: {faults:?}");
    assert!(normals.iter().all(|&n| sim.is_secured(n)));
}
