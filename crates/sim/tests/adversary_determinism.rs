//! Tier-1 determinism guarantee of the new adversary scenarios: each of
//! the post-2007 attacks (Sybil swarm, eclipse, slow drift) — composed
//! with an active fault plan (probe loss, timeouts, churn), eclipse
//! referral steering, and the cross-verification defense — must produce
//! bit-for-bit identical runs at four worker threads and on the exact
//! sequential path (`ICES_THREADS=1`).
//!
//! Every new decision source answers purely from `(seed, tick, victim,
//! peer)` streams: Sybil anchors/jitter from `SYBA`/`SYBJ`, eclipse
//! translations from `ECLP` and steering from `ECLN`/`ECLR`, drift
//! directions from `DRFT`, witness draws from `WTNS`, and witness probe
//! nonces from `XPRB`. None of them consume shared RNG state; this
//! suite is the proof, over every observable a run exposes —
//! coordinates, traces, and the full `DetectionReport` including the
//! `AdversaryReport` counters.

use ices_attack::{Adversary, DefenseConfig, EclipseAttack, SlowDriftAttack, SybilSwarmAttack};
use ices_core::EmConfig;
use ices_coord::Coordinate;
use ices_netsim::{ChurnModel, EclipsePlan, FaultPlan};
use ices_sim::metrics::DetectionReport;
use ices_sim::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use ices_sim::trace::TraceRing;
use ices_sim::VivaldiSimulation;

fn scenario(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        topology: TopologyKind::small_planetlab(70),
        surveyors: SurveyorPlacement::Random { fraction: 0.1 },
        malicious_fraction: 0.2,
        alpha: 0.05,
        detection: true,
        clean_cycles: 6,
        attack_cycles: 3,
        embed_against_surveyors_only: false,
    }
}

/// Loss, timeouts, and churn all active: the composed regime the issue
/// demands — attack decisions must stay deterministic even when the
/// fault layer reshuffles which probes exist at all.
fn plan() -> FaultPlan {
    FaultPlan::lossy(0.1, 0.05).with_churn(ChurnModel::new(16, 0.1))
}

/// Everything a run exposes, captured for comparison.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    coordinates: Vec<Coordinate>,
    traces: Vec<TraceRing>,
    report: DetectionReport,
}

fn capture(sim: &mut VivaldiSimulation) -> Fingerprint {
    Fingerprint {
        coordinates: (0..sim.len()).map(|i| sim.coordinate(i).clone()).collect(),
        traces: sim.traces().to_vec(),
        report: sim.report().clone(),
    }
}

/// Shared pipeline: faulty clean convergence, calibration, armed
/// detection, cross-verification on, then the given attack (plus an
/// optional eclipse plan) for the measure phase.
fn fingerprint(
    seed: u64,
    attack: impl Fn(&VivaldiSimulation) -> Box<dyn Adversary>,
    eclipse: impl Fn(&VivaldiSimulation) -> EclipsePlan,
) -> Fingerprint {
    let mut sim = VivaldiSimulation::new(scenario(seed));
    sim.set_fault_plan(plan());
    sim.run_clean(6);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.arm_detection();
    sim.set_defense(DefenseConfig::cross_verification(seed ^ 0xDEF3));
    sim.set_eclipse(eclipse(&sim));
    let adversary = attack(&sim);
    sim.run(3, adversary.as_ref(), true);
    capture(&mut sim)
}

fn sybil_fingerprint(seed: u64) -> Fingerprint {
    fingerprint(
        seed,
        |sim| {
            Box::new(SybilSwarmAttack::new(
                sim.malicious().iter().copied(),
                800.0,
                10.0,
                sim.coordinate(0).dims(),
                seed ^ 0x5B11,
            ))
        },
        |sim| {
            EclipsePlan::new(
                sim.normal_nodes(),
                sim.malicious().iter().copied(),
                0.4,
                seed ^ 0x5B11,
            )
        },
    )
}

fn eclipse_fingerprint(seed: u64) -> Fingerprint {
    fingerprint(
        seed,
        |sim| {
            Box::new(EclipseAttack::new(
                sim.malicious().iter().copied(),
                sim.normal_nodes(),
                120.0,
                seed ^ 0xEC11,
            ))
        },
        |sim| {
            EclipsePlan::new(
                sim.normal_nodes(),
                sim.malicious().iter().copied(),
                0.6,
                seed ^ 0xEC11,
            )
        },
    )
}

fn drift_fingerprint(seed: u64) -> Fingerprint {
    fingerprint(
        seed,
        |sim| {
            Box::new(
                SlowDriftAttack::new(sim.malicious().iter().copied(), 0.5, seed ^ 0xD217)
                    .starting_at(sim.ticks()),
            )
        },
        |_| EclipsePlan::none(),
    )
}

fn assert_invariant(name: &str, run: impl Fn(u64) -> Fingerprint + Sync, seed: u64) {
    let sequential = ices_par::with_threads(1, || run(seed));
    let parallel = ices_par::with_threads(4, || run(seed));
    assert!(
        sequential.report.faults.total_failed_probes() > 0,
        "{name}: the fault plan must actually fire for this test to mean anything"
    );
    assert!(
        sequential.report.adversary.active_lies > 0,
        "{name}: the adversary must actually lie"
    );
    assert!(
        sequential.report.adversary.cross_checks > 0,
        "{name}: the defense must actually probe"
    );
    assert_eq!(
        sequential, parallel,
        "{name}: 4-thread run diverged from the sequential path"
    );
}

#[test]
fn sybil_swarm_under_faults_is_thread_count_invariant() {
    assert_invariant("sybil", sybil_fingerprint, 83);
}

#[test]
fn eclipse_under_faults_is_thread_count_invariant() {
    assert_invariant("eclipse", eclipse_fingerprint, 89);
}

#[test]
fn slow_drift_under_faults_is_thread_count_invariant() {
    assert_invariant("slow_drift", drift_fingerprint, 97);
}
