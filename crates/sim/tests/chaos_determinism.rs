//! Tier-1 determinism guarantee of the fault-injection layer: a run on
//! a **faulty** network (probe loss, timeouts, node churn, a crashed
//! Surveyor) at four worker threads must be bit-for-bit identical to
//! the same run on the exact sequential path (`ICES_THREADS=1`).
//!
//! Fault fates draw from their own seeded streams (`FALT`/`CHRN`) and
//! retries from dedicated retry streams, so no fault decision ever
//! consumes shared RNG state; this test is the proof. Both drivers are
//! exercised through their full pipeline — clean convergence under
//! loss, calibration, armed detection, an attack with churn in the
//! path — and every observable output is compared: coordinates, traces,
//! and the detection report including the fault counters.

use ices_attack::{NpsCollusionAttack, VivaldiIsolationAttack};
use ices_core::EmConfig;
use ices_coord::Coordinate;
use ices_netsim::{ChurnModel, FaultPlan};
use ices_sim::metrics::DetectionReport;
use ices_sim::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use ices_sim::trace::TraceRing;
use ices_sim::{NpsSimulation, VivaldiSimulation};

fn scenario(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        topology: TopologyKind::small_planetlab(70),
        surveyors: SurveyorPlacement::Random { fraction: 0.1 },
        malicious_fraction: 0.2,
        alpha: 0.05,
        detection: true,
        clean_cycles: 6,
        attack_cycles: 3,
        embed_against_surveyors_only: false,
    }
}

/// Nonzero loss, timeouts, and global churn, plus one permanently
/// crashed node — every fault path the drivers implement is active.
fn plan(epoch_ticks: u64, crashed: usize) -> FaultPlan {
    FaultPlan::lossy(0.1, 0.05)
        .with_churn(ChurnModel::new(epoch_ticks, 0.1))
        .with_node_churn(crashed, ChurnModel::new(u64::MAX, 0.999_999))
}

/// Everything a run exposes, captured for comparison.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    coordinates: Vec<Coordinate>,
    traces: Vec<TraceRing>,
    report: DetectionReport,
}

fn vivaldi_fingerprint(seed: u64) -> Fingerprint {
    let mut sim = VivaldiSimulation::new(scenario(seed));
    sim.set_fault_plan(plan(16, sim.normal_nodes()[1]));
    sim.run_clean(6);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.arm_detection();
    let target = sim.normal_nodes()[0];
    let attack = VivaldiIsolationAttack::new(
        sim.malicious().iter().copied(),
        sim.coordinate(target).clone(),
        50.0,
        seed,
    );
    sim.run(3, &attack, true);
    Fingerprint {
        coordinates: (0..sim.len()).map(|i| sim.coordinate(i).clone()).collect(),
        traces: sim.traces().to_vec(),
        report: sim.report().clone(),
    }
}

fn nps_fingerprint(seed: u64) -> Fingerprint {
    let mut sim = NpsSimulation::new(scenario(seed));
    sim.set_fault_plan(plan(2, sim.normal_nodes()[1]));
    sim.run_clean(6);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.arm_detection();
    let mut attack = NpsCollusionAttack::new(sim.malicious().iter().copied(), 8, 3.0, 0.5, seed);
    attack.observe_hierarchy(&sim.serving_map(), &sim.layer_members());
    sim.run(3, &attack, true);
    Fingerprint {
        coordinates: (0..sim.len()).map(|i| sim.coordinate(i).clone()).collect(),
        traces: sim.traces().to_vec(),
        report: sim.report().clone(),
    }
}

#[test]
fn faulty_vivaldi_parallel_matches_sequential_bit_for_bit() {
    let sequential = ices_par::with_threads(1, || vivaldi_fingerprint(61));
    let parallel = ices_par::with_threads(4, || vivaldi_fingerprint(61));
    assert!(
        sequential.report.faults.total_failed_probes() > 0,
        "the fault plan must actually fire for this test to mean anything"
    );
    assert_eq!(
        sequential, parallel,
        "4-thread faulty Vivaldi run diverged from the sequential path"
    );
}

/// The scratch-space NPS solver reuses one per-node workspace across
/// simplex restarts, successive rounds, and the security filter's trial
/// solves. This extends the determinism suite over that kernel at a
/// fresh seed: the `DetectionReport` — and every other observable — of
/// a faulty NPS run must be bit-identical between the exact sequential
/// path (`ICES_THREADS=1`) and four workers, proving buffer reuse
/// carries no state between evaluations or across the thread schedule.
#[test]
fn nps_scratch_solver_is_thread_count_invariant() {
    let sequential = ices_par::with_threads(1, || nps_fingerprint(73));
    let parallel = ices_par::with_threads(4, || nps_fingerprint(73));
    assert!(
        sequential.report.faults.total_failed_probes() > 0,
        "the fault plan must actually fire for this test to mean anything"
    );
    assert_eq!(
        sequential.report, parallel.report,
        "DetectionReports diverged between thread counts"
    );
    assert_eq!(
        sequential, parallel,
        "4-thread NPS run diverged from the sequential path"
    );
}

/// The same chaos cell on a **streamed generated topology**: no dense
/// matrix exists, every base RTT is recomputed per probe from the
/// `(seed, lo, hi)` pair streams, and the persistent worker pool serves
/// the parallel phase — the run must still be bit-for-bit identical
/// between the sequential path and four pooled workers, and must also
/// reproduce exactly what the dense-matrix form of the same topology
/// produces.
#[test]
fn faulty_vivaldi_on_generated_topology_is_deterministic() {
    let run = |seed, topology: TopologyKind| {
        let mut cfg = scenario(seed);
        cfg.topology = topology;
        let mut sim = VivaldiSimulation::new(cfg);
        sim.set_fault_plan(plan(16, sim.normal_nodes()[1]));
        sim.run_clean(4);
        sim.calibrate_surveyors(&EmConfig::default());
        sim.arm_detection();
        let target = sim.normal_nodes()[0];
        let attack = VivaldiIsolationAttack::new(
            sim.malicious().iter().copied(),
            sim.coordinate(target).clone(),
            50.0,
            seed,
        );
        sim.run(2, &attack, true);
        Fingerprint {
            coordinates: (0..sim.len()).map(|i| sim.coordinate(i).clone()).collect(),
            traces: sim.traces().to_vec(),
            report: sim.report().clone(),
        }
    };
    let sequential = ices_par::with_threads(1, || run(79, TopologyKind::streamed_king(70)));
    let parallel = ices_par::with_threads(4, || run(79, TopologyKind::streamed_king(70)));
    assert!(
        sequential.report.faults.total_failed_probes() > 0,
        "the fault plan must actually fire for this test to mean anything"
    );
    assert_eq!(
        sequential, parallel,
        "4-thread faulty run on a generated topology diverged from the sequential path"
    );
    let dense = ices_par::with_threads(1, || run(79, TopologyKind::small_king(70)));
    assert_eq!(
        sequential, dense,
        "streamed topology diverged from the dense matrix form of the same world"
    );
}

#[test]
fn faulty_nps_parallel_matches_sequential_bit_for_bit() {
    let sequential = ices_par::with_threads(1, || nps_fingerprint(67));
    let parallel = ices_par::with_threads(4, || nps_fingerprint(67));
    assert!(
        sequential.report.faults.total_failed_probes() > 0,
        "the fault plan must actually fire for this test to mean anything"
    );
    assert_eq!(
        sequential, parallel,
        "4-thread faulty NPS run diverged from the sequential path"
    );
}
