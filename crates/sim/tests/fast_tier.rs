//! Fast-tier (`ICES_FAST=1`) guarantees at the system level.
//!
//! The fast tier gives up bit-identity *with the exact tier* (its
//! reassociated kernels differ in the low bits) but keeps every other
//! contract: results are deterministic per tier, thread-count
//! invariant, and journal-labelled. This suite drives the full Vivaldi
//! pipeline — faults, churn, armed detection running the batched
//! `DetectorBank` sweep, cross-verification, and a Sybil swarm — under
//! `ices_par::with_fast(true)` and proves those properties hold.
//! Statistical equivalence between the tiers (FPR/TPR and accuracy
//! deltas) is the tier-2 `fast_equiv` gate's job, not tier-1's.

use ices_attack::{DefenseConfig, SybilSwarmAttack};
use ices_core::EmConfig;
use ices_coord::Coordinate;
use ices_netsim::{ChurnModel, FaultPlan};
use ices_sim::metrics::DetectionReport;
use ices_sim::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use ices_sim::trace::TraceRing;
use ices_sim::VivaldiSimulation;

fn scenario(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        topology: TopologyKind::small_planetlab(70),
        surveyors: SurveyorPlacement::Random { fraction: 0.1 },
        malicious_fraction: 0.2,
        alpha: 0.05,
        detection: true,
        clean_cycles: 6,
        attack_cycles: 3,
        embed_against_surveyors_only: false,
    }
}

/// Everything a run exposes, captured for comparison.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    coordinates: Vec<Coordinate>,
    traces: Vec<TraceRing>,
    report: DetectionReport,
}

/// Faulty clean convergence, calibration, armed detection (the batched
/// bank path), cross-verification on, then a Sybil swarm.
fn sybil_fingerprint(seed: u64) -> Fingerprint {
    let mut sim = VivaldiSimulation::new(scenario(seed));
    sim.set_fault_plan(FaultPlan::lossy(0.1, 0.05).with_churn(ChurnModel::new(16, 0.1)));
    sim.run_clean(6);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.arm_detection();
    sim.set_defense(DefenseConfig::cross_verification(seed ^ 0xDEF3));
    let attack = SybilSwarmAttack::new(
        sim.malicious().iter().copied(),
        800.0,
        10.0,
        sim.coordinate(0).dims(),
        seed ^ 0x5B11,
    );
    sim.run(3, &attack, true);
    Fingerprint {
        coordinates: (0..sim.len()).map(|i| sim.coordinate(i).clone()).collect(),
        traces: sim.traces().to_vec(),
        report: sim.report().clone(),
    }
}

/// The fast tier must be thread-count invariant too: its reassociations
/// live inside per-node kernels, never across the worker partition, and
/// the `with_fast` pin must reach pooled workers. Four workers against
/// the sequential path, with the detection bank, faults, the defense,
/// and the Sybil swarm all active.
#[test]
fn fast_tier_sybil_under_faults_is_thread_count_invariant() {
    let sequential = ices_par::with_fast(true, || ices_par::with_threads(1, || sybil_fingerprint(83)));
    let parallel = ices_par::with_fast(true, || ices_par::with_threads(4, || sybil_fingerprint(83)));
    assert!(
        sequential.report.faults.total_failed_probes() > 0,
        "the fault plan must actually fire for this test to mean anything"
    );
    assert!(
        sequential.report.adversary.active_lies > 0,
        "the adversary must actually lie"
    );
    assert_eq!(
        sequential, parallel,
        "fast tier: 4-thread run diverged from the sequential path"
    );
}

/// Fast runs must reproduce fast runs exactly (determinism per tier) —
/// reassociation changes which bits come out, not whether they repeat.
#[test]
fn fast_tier_is_deterministic_per_tier() {
    let once = ices_par::with_fast(true, || ices_par::with_threads(2, || sybil_fingerprint(29)));
    let twice = ices_par::with_fast(true, || ices_par::with_threads(2, || sybil_fingerprint(29)));
    assert_eq!(once, twice, "two fast-tier runs of the same seed diverged");
}

/// The journal must carry the tier identity: a `tier` line right after
/// `meta` on the fast tier, and — so historical exact-tier journals
/// remain byte-comparable — no such line on the exact tier.
#[test]
fn journal_records_tier_identity_only_on_fast() {
    let journal_bytes = |fast: bool| {
        ices_par::with_fast(fast, || {
            ices_par::with_threads(1, || {
                let mut sim = VivaldiSimulation::new(scenario(11));
                sim.enable_journal(ices_obs::Journal::in_memory());
                sim.run_clean(1);
                sim.finish_journal().expect("in-memory journal returns bytes")
            })
        })
    };
    let fast_text = String::from_utf8(journal_bytes(true)).expect("journal is utf-8");
    let (fast_run, errors) = ices_obs::report::parse(&fast_text);
    assert!(errors.is_empty(), "fast journal must stay schema-clean: {errors:?}");
    assert_eq!(
        fast_run.tier.as_deref(),
        Some("fast"),
        "fast-tier journal must declare its tier"
    );
    let exact_text = String::from_utf8(journal_bytes(false)).expect("journal is utf-8");
    let (exact_run, errors) = ices_obs::report::parse(&exact_text);
    assert!(errors.is_empty(), "{errors:?}");
    assert_eq!(
        exact_run.tier, None,
        "exact-tier journals must not grow a tier line"
    );
    assert!(
        !exact_text.contains("\"ev\":\"tier\""),
        "exact-tier journal bytes must be unchanged"
    );
}
