//! Tier-1 contract of the observability layer: journaling is a pure
//! observer. A faulty full-pipeline run with the JSONL journal enabled
//! must be **bit-for-bit identical** — coordinates, traces, the derived
//! `DetectionReport` — to the same run with it disabled, at both the
//! exact sequential path (`ICES_THREADS=1`) and four workers; and the
//! journal bytes themselves must be identical across thread counts
//! (the obs layer is only touched from sequential phases).

// Test-support helpers below sit outside #[test] fns, so the
// allow-*-in-tests clippy knobs don't reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use ices_attack::{NpsCollusionAttack, VivaldiIsolationAttack};
use ices_core::EmConfig;
use ices_coord::Coordinate;
use ices_netsim::{ChurnModel, FaultPlan};
use ices_obs::Journal;
use ices_sim::metrics::DetectionReport;
use ices_sim::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use ices_sim::trace::TraceRing;
use ices_sim::{NpsSimulation, VivaldiSimulation};

fn scenario(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        topology: TopologyKind::small_planetlab(70),
        surveyors: SurveyorPlacement::Random { fraction: 0.1 },
        malicious_fraction: 0.2,
        alpha: 0.05,
        detection: true,
        clean_cycles: 6,
        attack_cycles: 3,
        embed_against_surveyors_only: false,
    }
}

/// Loss, timeouts, churn, and one crashed node: the journal records
/// every event family the drivers emit.
fn plan(epoch_ticks: u64, crashed: usize) -> FaultPlan {
    FaultPlan::lossy(0.1, 0.05)
        .with_churn(ChurnModel::new(epoch_ticks, 0.1))
        .with_node_churn(crashed, ChurnModel::permanent_outage())
}

#[derive(Debug, PartialEq)]
struct Fingerprint {
    coordinates: Vec<Coordinate>,
    traces: Vec<TraceRing>,
    report: DetectionReport,
}

fn vivaldi_run(seed: u64, journaled: bool) -> (Fingerprint, Option<Vec<u8>>) {
    let mut sim = VivaldiSimulation::new(scenario(seed));
    if journaled {
        sim.enable_journal(Journal::in_memory());
    }
    sim.set_fault_plan(plan(16, sim.normal_nodes()[1]));
    sim.run_clean(6);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.arm_detection();
    let target = sim.normal_nodes()[0];
    let attack = VivaldiIsolationAttack::new(
        sim.malicious().iter().copied(),
        sim.coordinate(target).clone(),
        50.0,
        seed,
    );
    sim.run(3, &attack, true);
    let fp = Fingerprint {
        coordinates: (0..sim.len()).map(|i| sim.coordinate(i).clone()).collect(),
        traces: sim.traces().to_vec(),
        report: sim.report().clone(),
    };
    (fp, sim.finish_journal())
}

fn nps_run(seed: u64, journaled: bool) -> (Fingerprint, Option<Vec<u8>>) {
    let mut sim = NpsSimulation::new(scenario(seed));
    if journaled {
        sim.enable_journal(Journal::in_memory());
    }
    sim.set_fault_plan(plan(2, sim.normal_nodes()[1]));
    sim.run_clean(6);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.arm_detection();
    let mut attack = NpsCollusionAttack::new(sim.malicious().iter().copied(), 8, 3.0, 0.5, seed);
    attack.observe_hierarchy(&sim.serving_map(), &sim.layer_members());
    sim.run(3, &attack, true);
    let fp = Fingerprint {
        coordinates: (0..sim.len()).map(|i| sim.coordinate(i).clone()).collect(),
        traces: sim.traces().to_vec(),
        report: sim.report().clone(),
    };
    (fp, sim.finish_journal())
}

fn check(run: impl Fn(u64, bool) -> (Fingerprint, Option<Vec<u8>>) + Copy, seed: u64) {
    let (plain_seq, none) = ices_par::with_threads(1, || run(seed, false));
    assert!(none.is_none(), "no journal was enabled");
    let (journ_seq, bytes_seq) = ices_par::with_threads(1, || run(seed, true));
    let (plain_par, _) = ices_par::with_threads(4, || run(seed, false));
    let (journ_par, bytes_par) = ices_par::with_threads(4, || run(seed, true));

    assert!(
        plain_seq.report.faults.total_failed_probes() > 0,
        "the fault plan must actually fire for this test to mean anything"
    );
    // Journal on vs off: every observable identical, at both widths.
    assert_eq!(plain_seq, journ_seq, "journaling perturbed the sequential run");
    assert_eq!(plain_par, journ_par, "journaling perturbed the parallel run");
    assert_eq!(plain_seq, plain_par, "thread count changed the run");

    // The journal bytes themselves are thread-count invariant.
    let bytes_seq = bytes_seq.expect("sequential journal bytes");
    let bytes_par = bytes_par.expect("parallel journal bytes");
    assert!(!bytes_seq.is_empty(), "journal must contain events");
    assert_eq!(
        bytes_seq, bytes_par,
        "journal bytes diverged between thread counts"
    );

    // And they conform to the schema.
    let text = String::from_utf8(bytes_seq).expect("journal is utf8");
    let (parsed, errors) = ices_obs::report::parse(&text);
    assert!(errors.is_empty(), "journal schema violations: {errors:?}");
    assert!(!parsed.ticks.is_empty(), "journal has no tick rows");
}

#[test]
fn vivaldi_journal_is_a_pure_observer() {
    check(vivaldi_run, 61);
}

#[test]
fn nps_journal_is_a_pure_observer() {
    check(nps_run, 61);
}
