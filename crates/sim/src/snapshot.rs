//! Structure-of-arrays population snapshot for the two-phase tick loops.
//!
//! The snapshot phase used to build a `Vec<(Coordinate, f64)>` every
//! tick — one heap `Vec` per node per tick just to photograph state that
//! is three flat numbers wide. [`CoordSnapshot`] keeps the same data as
//! three reusable flat arrays (positions row-major, heights, errors):
//! refilling touches no allocator once the buffers have grown to
//! population size, and the update phase materializes an owned
//! [`Coordinate`] only for the one or two coordinates a node actually
//! feeds into its embedding step. Values are copied bit-for-bit, so the
//! SoA form is invisible to results.

use ices_coord::Coordinate;

/// A reusable structure-of-arrays photograph of every node's
/// `(coordinate, local error)`.
#[derive(Debug, Default)]
pub struct CoordSnapshot {
    dims: usize,
    /// Row-major latent positions: node `i` occupies
    /// `pos[i*dims .. (i+1)*dims]`.
    pos: Vec<f64>,
    height: Vec<f64>,
    error: Vec<f64>,
}

impl CoordSnapshot {
    /// An empty snapshot; buffers grow on first [`CoordSnapshot::fill`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Refill from the population, reusing the existing buffers. All
    /// coordinates must share one dimensionality (the drivers guarantee
    /// this — every node embeds in the same space).
    ///
    /// # Panics
    /// Panics if coordinates disagree on dimensionality.
    pub fn fill<'a, I>(&mut self, population: I)
    where
        I: Iterator<Item = (&'a Coordinate, f64)>,
    {
        self.pos.clear();
        self.height.clear();
        self.error.clear();
        self.dims = 0;
        for (coord, err) in population {
            let position = coord.position();
            if self.dims == 0 {
                self.dims = position.len();
            }
            assert_eq!(
                position.len(),
                self.dims,
                "snapshot requires uniform coordinate dimensionality"
            );
            self.pos.extend_from_slice(position);
            self.height.push(coord.height());
            self.error.push(err);
        }
    }

    /// Number of snapshotted nodes.
    pub fn len(&self) -> usize {
        self.height.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.height.is_empty()
    }

    /// Node `i`'s snapshotted position components.
    pub fn position(&self, i: usize) -> &[f64] {
        &self.pos[i * self.dims..(i + 1) * self.dims]
    }

    /// Node `i`'s snapshotted height.
    pub fn height(&self, i: usize) -> f64 {
        self.height[i]
    }

    /// Node `i`'s snapshotted local error.
    pub fn error(&self, i: usize) -> f64 {
        self.error[i]
    }

    /// Materialize node `i`'s snapshotted coordinate — bit-identical to
    /// the `Coordinate` it was filled from.
    pub fn coordinate(&self, i: usize) -> Coordinate {
        Coordinate::new(self.position(i).to_vec(), self.height[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coords() -> Vec<(Coordinate, f64)> {
        (0..7)
            .map(|i| {
                let x = i as f64 * 1.37 - 3.0;
                (
                    Coordinate::new(vec![x, -x * 0.5, x.sin()], 0.25 + i as f64),
                    (i as f64 * 0.77).cos().abs(),
                )
            })
            .collect()
    }

    #[test]
    fn roundtrips_coordinates_bitwise() {
        let population = coords();
        let mut snap = CoordSnapshot::new();
        snap.fill(population.iter().map(|(c, e)| (c, *e)));
        assert_eq!(snap.len(), population.len());
        for (i, (coord, err)) in population.iter().enumerate() {
            let back = snap.coordinate(i);
            assert_eq!(back.position(), coord.position());
            assert_eq!(back.height().to_bits(), coord.height().to_bits());
            assert_eq!(snap.error(i).to_bits(), err.to_bits());
        }
    }

    #[test]
    fn refill_reuses_buffers_and_replaces_content() {
        let population = coords();
        let mut snap = CoordSnapshot::new();
        snap.fill(population.iter().map(|(c, e)| (c, *e)));
        let shorter: Vec<(Coordinate, f64)> = population[..3].to_vec();
        snap.fill(shorter.iter().map(|(c, e)| (c, *e)));
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.coordinate(2).position(), shorter[2].0.position());
    }

    #[test]
    fn empty_population_is_fine() {
        let mut snap = CoordSnapshot::new();
        snap.fill(std::iter::empty());
        assert!(snap.is_empty());
    }

    #[test]
    #[should_panic(expected = "uniform coordinate dimensionality")]
    fn mixed_dimensionality_is_rejected() {
        let a = Coordinate::new(vec![1.0, 2.0], 0.1);
        let b = Coordinate::new(vec![1.0, 2.0, 3.0], 0.1);
        let both = [(a, 0.0), (b, 0.0)];
        CoordSnapshot::new().fill(both.iter().map(|(c, e)| (c, *e)));
    }
}
