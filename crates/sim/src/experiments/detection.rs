//! §5 detection-performance sweeps: Figs 9–12 (Vivaldi under the
//! colluding isolation attack) and Fig 14 (NPS under the colluding
//! reference-point attack with anti-detection).
//!
//! Each sweep cell is a full system run at one `(malicious fraction,
//! significance level α)` operating point; the §5.1 metrics are read off
//! the accumulated confusion counts, and ROC curves are assembled per
//! malicious fraction across the α values.

use super::Scale;
use crate::nps_driver::NpsSimulation;
use crate::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use crate::vivaldi_driver::VivaldiSimulation;
use ices_attack::{NpsCollusionAttack, VivaldiIsolationAttack};
use ices_core::EmConfig;
use ices_stats::{Confusion, RocCurve};
use serde::{Deserialize, Serialize};

/// The α values the paper sweeps (its ROC curve ticks).
pub const PAPER_ALPHAS: [f64; 4] = [0.01, 0.03, 0.05, 0.10];

/// The malicious fractions the paper sweeps.
pub const PAPER_FRACTIONS: [f64; 5] = [0.10, 0.20, 0.30, 0.40, 0.50];

/// One operating point of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Fraction of nodes under adversary control.
    pub malicious_fraction: f64,
    /// Significance level of the test.
    pub alpha: f64,
    /// Confusion counts over all vetted steps.
    pub confusion: Confusion,
    /// Reprieves granted.
    pub reprieves: u64,
    /// Peer replacements performed.
    pub replacements: u64,
    /// Filter refreshes triggered.
    pub filter_refreshes: u64,
}

/// A full detection sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionSweep {
    /// All cells, row-major over `(fraction, alpha)`.
    pub cells: Vec<SweepCell>,
}

impl DetectionSweep {
    /// ROC curve (across α) for one malicious fraction — one Fig 9/14
    /// curve.
    pub fn roc_for(&self, malicious_fraction: f64) -> RocCurve {
        let levels = self
            .cells
            .iter()
            .filter(|c| (c.malicious_fraction - malicious_fraction).abs() < 1e-9)
            .map(|c| (c.alpha, c.confusion))
            .collect();
        RocCurve::from_levels(levels)
    }

    /// Metric series vs malicious fraction for one α: used for Figs
    /// 10 (TPTF), 11 (FPR) and 12 (FNR).
    pub fn series(&self, alpha: f64, metric: impl Fn(&Confusion) -> f64) -> Vec<(f64, f64)> {
        let mut points: Vec<(f64, f64)> = self
            .cells
            .iter()
            .filter(|c| (c.alpha - alpha).abs() < 1e-9)
            .map(|c| (c.malicious_fraction, metric(&c.confusion)))
            .collect();
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        points
    }

    /// The cell at an exact operating point.
    pub fn cell(&self, malicious_fraction: f64, alpha: f64) -> Option<&SweepCell> {
        self.cells.iter().find(|c| {
            (c.malicious_fraction - malicious_fraction).abs() < 1e-9
                && (c.alpha - alpha).abs() < 1e-9
        })
    }
}

fn scenario(scale: &Scale, fraction: f64, alpha: f64, detection: bool) -> ScenarioConfig {
    ScenarioConfig {
        seed: scale.seed,
        topology: TopologyKind::small_planetlab(scale.planetlab_nodes),
        surveyors: SurveyorPlacement::Random { fraction: 0.08 },
        malicious_fraction: fraction,
        alpha,
        detection,
        clean_cycles: scale.clean_passes,
        attack_cycles: scale.measure_passes,
        embed_against_surveyors_only: false,
    }
}

/// Run one Vivaldi operating point and return its cell.
pub fn vivaldi_cell(scale: &Scale, fraction: f64, alpha: f64) -> SweepCell {
    let mut sim = VivaldiSimulation::new(scenario(scale, fraction, alpha, true));
    sim.run_clean(scale.clean_passes);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.arm_detection();
    // The colluders agree on an exclusion zone around a target normal
    // node, sized relative to the network's scale.
    let target = sim.normal_nodes()[0]; // audit:allow(PANIC02): every scenario places normal nodes
    let radius = sim.network().median_base_rtt() / 2.0;
    let attack = VivaldiIsolationAttack::new(
        sim.malicious().iter().copied(),
        sim.coordinate(target).clone(),
        radius.max(20.0),
        scale.seed ^ 0xA77AC4,
    );
    sim.run(scale.measure_passes, &attack, false);
    let report = sim.report();
    SweepCell {
        malicious_fraction: fraction,
        alpha,
        confusion: report.confusion,
        reprieves: report.reprieves,
        replacements: report.replacements,
        filter_refreshes: report.filter_refreshes,
    }
}

/// Run independent sweep cells on the [`ices_par`] executor (each cell
/// is a self-contained deterministic simulation, so parallel execution
/// cannot change results — only wall-clock time). Worker count follows
/// `ICES_THREADS` like every other parallel loop in the workspace.
fn run_cells_parallel(
    points: Vec<(f64, f64)>,
    run: impl Fn(f64, f64) -> SweepCell + Sync,
) -> Vec<SweepCell> {
    ices_par::par_map(&points, |_, &(fraction, alpha)| run(fraction, alpha))
}

/// Figs 9–12: the full Vivaldi sweep. Cells run in parallel.
pub fn fig9_12_vivaldi_sweep(scale: &Scale, fractions: &[f64], alphas: &[f64]) -> DetectionSweep {
    let mut points = Vec::with_capacity(fractions.len() * alphas.len());
    for &fraction in fractions {
        for &alpha in alphas {
            points.push((fraction, alpha));
        }
    }
    let cells = run_cells_parallel(points, |f, a| vivaldi_cell(scale, f, a));
    DetectionSweep { cells }
}

/// The drag strength of the paper's blatant push (each malicious sample
/// demands a 3-RTT displacement).
pub const NPS_DRAG_BLATANT: f64 = 3.0;

/// A stealthy drag variant: per-sample deviations sized near the honest
/// noise floor, trading per-round pull for detectability.
pub const NPS_DRAG_STEALTHY: f64 = 0.5;

/// Run one NPS operating point and return its cell.
pub fn nps_cell(scale: &Scale, fraction: f64, alpha: f64) -> SweepCell {
    nps_cell_with_drag(scale, fraction, alpha, NPS_DRAG_BLATANT)
}

/// Run one NPS operating point with an explicit drag strength.
pub fn nps_cell_with_drag(scale: &Scale, fraction: f64, alpha: f64, drag: f64) -> SweepCell {
    let mut sim = NpsSimulation::new(scenario(scale, fraction, alpha, true));
    sim.run_clean(scale.nps_clean_rounds);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.arm_detection();
    let mut attack = NpsCollusionAttack::new(
        sim.malicious().iter().copied(),
        8,
        drag,
        0.5,
        scale.seed ^ 0x4E5053,
    );
    attack.observe_hierarchy(&sim.serving_map(), &sim.layer_members());
    sim.run(scale.nps_measure_rounds, &attack, false);
    let report = sim.report();
    SweepCell {
        malicious_fraction: fraction,
        alpha,
        confusion: report.confusion,
        reprieves: report.reprieves,
        replacements: report.replacements,
        filter_refreshes: report.filter_refreshes,
    }
}

/// Fig 14: the NPS sweep. Cells run in parallel.
pub fn fig14_nps_sweep(scale: &Scale, fractions: &[f64], alphas: &[f64]) -> DetectionSweep {
    fig14_nps_sweep_with_drag(scale, fractions, alphas, NPS_DRAG_BLATANT)
}

/// The NPS sweep at an explicit drag strength (the stealthy variant
/// trades attack effectiveness for evasion; see the fig14 binary).
pub fn fig14_nps_sweep_with_drag(
    scale: &Scale,
    fractions: &[f64],
    alphas: &[f64],
    drag: f64,
) -> DetectionSweep {
    let mut points = Vec::with_capacity(fractions.len() * alphas.len());
    for &fraction in fractions {
        for &alpha in alphas {
            points.push((fraction, alpha));
        }
    }
    let cells = run_cells_parallel(points, |f, a| nps_cell_with_drag(scale, f, a, drag));
    DetectionSweep { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vivaldi_sweep_produces_usable_roc() {
        let sweep = fig9_12_vivaldi_sweep(&Scale::test(), &[0.2], &[0.01, 0.05, 0.10]);
        assert_eq!(sweep.cells.len(), 3);
        for cell in &sweep.cells {
            assert!(cell.confusion.positives() > 0, "attack produced no steps");
            assert!(cell.confusion.negatives() > 0);
        }
        let roc = sweep.roc_for(0.2);
        assert_eq!(roc.points.len(), 3);
        let auc = roc.auc();
        assert!(
            auc > 0.7,
            "detector should beat chance handily under 20% attack: AUC {auc}"
        );
    }

    #[test]
    fn higher_alpha_catches_more_but_flags_more() {
        let sweep = fig9_12_vivaldi_sweep(&Scale::test(), &[0.2], &[0.01, 0.10]);
        let lo = sweep.cell(0.2, 0.01).expect("cell");
        let hi = sweep.cell(0.2, 0.10).expect("cell");
        assert!(
            hi.confusion.tpr() >= lo.confusion.tpr() - 0.02,
            "TPR should not fall as α grows: {} -> {}",
            lo.confusion.tpr(),
            hi.confusion.tpr()
        );
        assert!(
            hi.confusion.fpr() >= lo.confusion.fpr() - 0.01,
            "FPR should not fall as α grows: {} -> {}",
            lo.confusion.fpr(),
            hi.confusion.fpr()
        );
    }

    #[test]
    fn series_are_sorted_by_fraction() {
        let sweep = fig9_12_vivaldi_sweep(&Scale::test(), &[0.3, 0.1], &[0.05]);
        let fnr = sweep.series(0.05, |c| c.fnr());
        assert_eq!(fnr.len(), 2);
        assert!(fnr[0].0 < fnr[1].0);
    }

    #[test]
    fn nps_sweep_runs_and_counts_honest_steps() {
        let mut scale = Scale::test();
        scale.planetlab_nodes = 90; // hierarchy needs room
        let sweep = fig14_nps_sweep(&scale, &[0.3], &[0.05]);
        let cell = &sweep.cells[0];
        assert!(cell.confusion.negatives() > 0);
        // With the RP-biased malicious assignment the conspiracy should
        // find enough reference points at 30%.
        assert!(
            cell.confusion.positives() > 0,
            "collusion should have activated at 30% malicious"
        );
    }
}
