//! §5.2.2 / §5.3.2 embedding-system performance under attack: Fig 13
//! (Vivaldi) and Fig 15 (NPS) — CDFs of relative estimation errors
//! across all normal nodes after convergence, with and without the
//! detection protocol, plus the §6 "dedicated Surveyors for embedding"
//! variant.

use super::{Curve, Scale};
use crate::nps_driver::NpsSimulation;
use crate::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use crate::vivaldi_driver::VivaldiSimulation;
use ices_attack::{HonestWorld, NpsCollusionAttack, VivaldiIsolationAttack};
use ices_core::EmConfig;
use serde::{Deserialize, Serialize};

/// Result of a system-performance experiment: one labelled CDF per
/// configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemPerfResult {
    /// Relative-error CDFs.
    pub curves: Vec<Curve>,
    /// `(label, median relative error)` summaries.
    pub medians: Vec<(String, f64)>,
}

impl SystemPerfResult {
    /// Median for a labelled curve.
    pub fn median_of(&self, label: &str) -> Option<f64> {
        self.medians
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, m)| *m)
    }
}

fn scenario(scale: &Scale, fraction: f64, detection: bool, dedicated: bool) -> ScenarioConfig {
    ScenarioConfig {
        seed: scale.seed,
        topology: TopologyKind::small_planetlab(scale.planetlab_nodes),
        surveyors: if dedicated {
            // The paper's §6 variant uses the 1% k-means deployment.
            SurveyorPlacement::KMeansHeads { fraction: 0.04 }
        } else {
            SurveyorPlacement::Random { fraction: 0.08 }
        },
        malicious_fraction: fraction,
        alpha: 0.05,
        detection,
        clean_cycles: scale.clean_passes,
        attack_cycles: scale.measure_passes,
        embed_against_surveyors_only: dedicated,
    }
}

fn vivaldi_errors(scale: &Scale, fraction: f64, detection: bool, dedicated: bool) -> Vec<f64> {
    let mut sim = VivaldiSimulation::new(scenario(scale, fraction, detection, dedicated));
    sim.run_clean(scale.clean_passes);
    if fraction > 0.0 {
        if detection {
            sim.calibrate_surveyors(&EmConfig::default());
            sim.arm_detection();
        }
        let target = sim.normal_nodes()[0]; // audit:allow(PANIC02): every scenario places normal nodes
        let radius = sim.network().median_base_rtt() / 2.0;
        let attack = VivaldiIsolationAttack::new(
            sim.malicious().iter().copied(),
            sim.coordinate(target).clone(),
            radius.max(20.0),
            scale.seed ^ 0xA77AC4,
        );
        sim.run(scale.measure_passes, &attack, false);
    } else {
        let honest = HonestWorld;
        sim.run(scale.measure_passes, &honest, false);
    }
    sim.accuracy_report(scale.pairs_per_node).relative_errors
}

/// Fig 13: Vivaldi relative-error CDFs for the paper's configurations.
///
/// `fractions` are the attack intensities to sweep (the paper shows 10%,
/// 30%, 50%); for each, curves with detection on and off are produced,
/// plus a clean baseline and the dedicated-Surveyors variant.
pub fn fig13_vivaldi(scale: &Scale, fractions: &[f64]) -> SystemPerfResult {
    let mut curves = Vec::new();
    let mut medians = Vec::new();
    let mut push = |label: String, errors: Vec<f64>| {
        let median = ices_stats::Ecdf::new(errors.clone()).median();
        curves.push(Curve::from_samples(label.clone(), errors, 200));
        medians.push((label, median));
    };

    push(
        "clean (no attack)".into(),
        vivaldi_errors(scale, 0.0, false, false),
    );
    for &f in fractions {
        let pct = (f * 100.0).round() as u32;
        push(
            format!("{pct}% malicious, detection on"),
            vivaldi_errors(scale, f, true, false),
        );
        push(
            format!("{pct}% malicious, detection off"),
            vivaldi_errors(scale, f, false, false),
        );
    }
    push(
        "using dedicated Surveyors for embedding".into(),
        vivaldi_errors(scale, fractions.last().copied().unwrap_or(0.3), false, true),
    );
    SystemPerfResult { curves, medians }
}

fn nps_errors(scale: &Scale, fraction: f64, detection: bool, dedicated: bool) -> Vec<f64> {
    let mut sim = NpsSimulation::new(scenario(scale, fraction, detection, dedicated));
    sim.run_clean(scale.nps_clean_rounds);
    if fraction > 0.0 {
        if detection {
            sim.calibrate_surveyors(&EmConfig::default());
            sim.arm_detection();
        }
        let mut attack = NpsCollusionAttack::new(
            sim.malicious().iter().copied(),
            8,
            3.0,
            0.5,
            scale.seed ^ 0x4E5053,
        );
        attack.observe_hierarchy(&sim.serving_map(), &sim.layer_members());
        sim.run(scale.nps_measure_rounds, &attack, false);
    } else {
        let honest = HonestWorld;
        sim.run(scale.nps_measure_rounds, &honest, false);
    }
    sim.accuracy_report(scale.pairs_per_node).relative_errors
}

/// Fig 15: NPS relative-error CDFs. "Detection off" still leaves NPS's
/// built-in sensitivity filter on, exactly as in the paper.
pub fn fig15_nps(scale: &Scale, fractions: &[f64]) -> SystemPerfResult {
    let mut curves = Vec::new();
    let mut medians = Vec::new();
    let mut push = |label: String, errors: Vec<f64>| {
        let median = ices_stats::Ecdf::new(errors.clone()).median();
        curves.push(Curve::from_samples(label.clone(), errors, 200));
        medians.push((label, median));
    };

    push(
        "clean (no attack)".into(),
        nps_errors(scale, 0.0, false, false),
    );
    for &f in fractions {
        let pct = (f * 100.0).round() as u32;
        push(
            format!("{pct}% malicious, detection on"),
            nps_errors(scale, f, true, false),
        );
        push(
            format!("{pct}% malicious, detection off"),
            nps_errors(scale, f, false, false),
        );
    }
    SystemPerfResult { curves, medians }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_detection_restores_accuracy() {
        let r = fig13_vivaldi(&Scale::test(), &[0.3]);
        let clean = r.median_of("clean (no attack)").expect("clean curve");
        let on = r
            .median_of("30% malicious, detection on")
            .expect("detection-on curve");
        let off = r
            .median_of("30% malicious, detection off")
            .expect("detection-off curve");
        assert!(
            on < off,
            "detection should improve accuracy under attack: on {on} vs off {off}"
        );
        assert!(
            on < clean * 3.0 + 0.2,
            "with detection the system should stay near clean accuracy: {on} vs clean {clean}"
        );
    }

    #[test]
    fn fig13_has_dedicated_surveyor_curve() {
        let r = fig13_vivaldi(&Scale::test(), &[0.1]);
        assert!(r
            .median_of("using dedicated Surveyors for embedding")
            .is_some());
        // 1 clean + 2 per fraction + 1 dedicated.
        assert_eq!(r.curves.len(), 4);
    }

    #[test]
    fn fig15_runs_for_nps() {
        let mut scale = Scale::test();
        scale.planetlab_nodes = 90;
        let r = fig15_nps(&scale, &[0.3]);
        assert_eq!(r.curves.len(), 3);
        let on = r
            .median_of("30% malicious, detection on")
            .expect("detection-on");
        let off = r
            .median_of("30% malicious, detection off")
            .expect("detection-off");
        // Under the anti-detection collusion the protected system should
        // be no worse than the unprotected one.
        assert!(on <= off * 1.25 + 0.05, "on {on} vs off {off}");
    }
}
