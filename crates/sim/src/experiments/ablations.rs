//! Ablations of the design choices DESIGN.md calls out.
//!
//! These are not paper figures; they quantify why the system is built
//! the way it is:
//!
//! * [`ablate_beta`] — is the EM-fitted AR coefficient worth having, or
//!   would a white model (β = 0) or a near-random-walk (β = 0.99) do?
//! * [`ablate_reprieve`] — what does the first-time-peer reprieve buy a
//!   system with churn (joining nodes being mistaken for attackers)?
//! * [`ablate_filter_source`] — own-trace calibration vs the closest
//!   Surveyor's parameters vs a random Surveyor's (the paper's Figs 6–8
//!   in detection terms).
//! * [`ablate_recalibration`] — how much does a stale filter (calibrated
//!   before a network-condition change) degrade detection, and does the
//!   refresh rule recover it?

use super::Scale;
use crate::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use crate::vivaldi_driver::VivaldiSimulation;
use ices_attack::VivaldiIsolationAttack;
use ices_core::{calibrate, EmConfig, StateSpaceParams};
use ices_stats::Confusion;
use serde::{Deserialize, Serialize};

/// Outcome of one ablation arm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationArm {
    /// Which variant ran.
    pub label: String,
    /// Detection quality under the standard attack workload.
    pub confusion: Confusion,
}

/// A complete ablation: several arms over the same workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationResult {
    /// What is being ablated.
    pub name: String,
    /// The arms, in presentation order.
    pub arms: Vec<AblationArm>,
}

fn scenario(scale: &Scale) -> ScenarioConfig {
    ScenarioConfig {
        seed: scale.seed,
        topology: TopologyKind::small_planetlab(scale.planetlab_nodes),
        surveyors: SurveyorPlacement::Random { fraction: 0.08 },
        malicious_fraction: 0.2,
        alpha: 0.05,
        detection: true,
        clean_cycles: scale.clean_passes,
        attack_cycles: scale.measure_passes,
        embed_against_surveyors_only: false,
    }
}

/// Shared workload: clean phase, calibrate, arm (with a parameter
/// transformation applied to every Surveyor filter), attack, report.
fn run_with_params(
    scale: &Scale,
    reprieve: bool,
    mut transform: impl FnMut(StateSpaceParams) -> StateSpaceParams,
) -> Confusion {
    let mut sim = VivaldiSimulation::new(scenario(scale));
    sim.run_clean(scale.clean_passes);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.transform_registry_params(&mut transform);
    if !reprieve {
        sim.set_reprieve_enabled(false);
    }
    sim.arm_detection();
    let target = sim.normal_nodes()[0]; // audit:allow(PANIC02): every scenario places normal nodes
    let radius = sim.network().median_base_rtt() / 2.0;
    let attack = VivaldiIsolationAttack::new(
        sim.malicious().iter().copied(),
        sim.coordinate(target).clone(),
        radius.max(20.0),
        scale.seed ^ 0xAB1,
    );
    sim.run(scale.measure_passes, &attack, false);
    sim.report().confusion
}

/// Ablate the AR coefficient β.
pub fn ablate_beta(scale: &Scale) -> AblationResult {
    let arms = vec![
        AblationArm {
            label: "EM-fitted β (the paper)".into(),
            confusion: run_with_params(scale, true, |p| p),
        },
        AblationArm {
            label: "β = 0 (white model)".into(),
            confusion: run_with_params(scale, true, |mut p| {
                // Keep the stationary mean fixed while removing memory.
                p.w_bar = p.stationary_mean();
                p.v_w = p.stationary_variance().max(1e-8);
                p.beta = 0.0;
                p
            }),
        },
        AblationArm {
            label: "β = 0.99 (near random walk)".into(),
            confusion: run_with_params(scale, true, |mut p| {
                let mean = p.stationary_mean();
                p.beta = 0.99;
                p.w_bar = mean * (1.0 - 0.99);
                p
            }),
        },
    ];
    AblationResult {
        name: "state-model AR coefficient".into(),
        arms,
    }
}

/// Ablate the first-time-peer reprieve.
pub fn ablate_reprieve(scale: &Scale) -> AblationResult {
    let arms = vec![
        AblationArm {
            label: "reprieve on (the paper)".into(),
            confusion: run_with_params(scale, true, |p| p),
        },
        AblationArm {
            label: "reprieve off".into(),
            confusion: run_with_params(scale, false, |p| p),
        },
    ];
    AblationResult {
        name: "first-time-peer reprieve".into(),
        arms,
    }
}

/// Ablate where the filter parameters come from.
///
/// The "closest Surveyor" arm is the paper's protocol (what
/// `arm_detection` does); "random Surveyor" replaces every node's
/// parameter source with a randomly drawn Surveyor.
pub fn ablate_filter_source(scale: &Scale) -> AblationResult {
    // Closest (paper).
    let closest = run_with_params(scale, true, |p| p);

    // Random surveyor: emulate by shuffling the registry parameters so
    // the "closest" lookup yields an unrelated Surveyor's filter.
    let mut sim = VivaldiSimulation::new(scenario(scale));
    sim.run_clean(scale.clean_passes);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.shuffle_registry_params();
    sim.arm_detection();
    let target = sim.normal_nodes()[0]; // audit:allow(PANIC02): every scenario places normal nodes
    let radius = sim.network().median_base_rtt() / 2.0;
    let attack = VivaldiIsolationAttack::new(
        sim.malicious().iter().copied(),
        sim.coordinate(target).clone(),
        radius.max(20.0),
        scale.seed ^ 0xAB1,
    );
    sim.run(scale.measure_passes, &attack, false);
    let random = sim.report().confusion;

    AblationResult {
        name: "filter parameter source".into(),
        arms: vec![
            AblationArm {
                label: "closest Surveyor (the paper)".into(),
                confusion: closest,
            },
            AblationArm {
                label: "random Surveyor".into(),
                confusion: random,
            },
        ],
    }
}

/// Ablate filter freshness: parameters calibrated on an *unrelated*
/// system (different seed → different topology and noise realization)
/// stand in for a stale filter.
pub fn ablate_recalibration(scale: &Scale) -> AblationResult {
    // Fresh (paper).
    let fresh = run_with_params(scale, true, |p| p);

    // Stale: calibrate on a different world, then run here.
    let stale_params: Vec<StateSpaceParams> = {
        let mut other = scenario(scale);
        other.seed ^= 0x5EED;
        let mut sim = VivaldiSimulation::new(other);
        sim.run_clean(scale.clean_passes);
        sim.traces()
            .iter()
            .filter(|t| t.len() >= 10)
            .take(8)
            .map(|t| {
                calibrate(
                    t,
                    StateSpaceParams::em_initial_guess(),
                    &EmConfig::default(),
                )
                .params
            })
            .collect()
    };
    let mut idx = 0;
    let stale = run_with_params(scale, true, move |_| {
        let p = stale_params[idx % stale_params.len()];
        idx += 1;
        p
    });

    AblationResult {
        name: "filter freshness".into(),
        arms: vec![
            AblationArm {
                label: "freshly calibrated (the paper)".into(),
                confusion: fresh,
            },
            AblationArm {
                label: "stale (calibrated on another network)".into(),
                confusion: stale,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_ablation_produces_three_comparable_arms() {
        let r = ablate_beta(&Scale::test());
        assert_eq!(r.arms.len(), 3);
        for arm in &r.arms {
            assert!(arm.confusion.positives() > 0, "{}", arm.label);
            assert!(arm.confusion.negatives() > 0, "{}", arm.label);
        }
    }

    #[test]
    fn reprieve_off_does_not_reduce_detection() {
        let r = ablate_reprieve(&Scale::test());
        let on = &r.arms[0].confusion;
        let off = &r.arms[1].confusion;
        // Without reprieves every suspicious first-timer is rejected, so
        // TPR cannot drop.
        assert!(
            off.tpr() >= on.tpr() - 0.02,
            "off {} vs on {}",
            off.tpr(),
            on.tpr()
        );
    }

    #[test]
    fn filter_source_ablation_runs() {
        let r = ablate_filter_source(&Scale::test());
        assert_eq!(r.arms.len(), 2);
        for arm in &r.arms {
            assert!(arm.confusion.total() > 0);
        }
    }

    #[test]
    fn recalibration_ablation_runs() {
        let r = ablate_recalibration(&Scale::test());
        assert_eq!(r.arms.len(), 2);
        for arm in &r.arms {
            assert!(arm.confusion.total() > 0);
        }
    }
}
