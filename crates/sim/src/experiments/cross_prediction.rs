//! §3.3 cross-prediction experiments: Figs 6, 7 and 8.
//!
//! Every normal node's clean trace is replayed through every Surveyor's
//! calibrated filter. Fig 6 shows the full (node × Surveyor) matrix of
//! maximum prediction errors; Fig 7 correlates a pair's prediction
//! accuracy with the node↔Surveyor RTT; Fig 8 shows the maximum
//! prediction error when each node adopts its *closest* Surveyor.

use super::Scale;
use crate::replay::prediction_errors;
use crate::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use crate::vivaldi_driver::VivaldiSimulation;
use ices_core::EmConfig;
use serde::{Deserialize, Serialize};

/// Transient samples skipped before measuring prediction errors.
const BURN_IN: usize = 10;

/// One (node, Surveyor) cell of the cross-prediction study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossCell {
    /// The normal node whose trace was replayed.
    pub node: usize,
    /// The Surveyor whose filter parameters were used.
    pub surveyor: usize,
    /// Base RTT between the two, ms.
    pub rtt_ms: f64,
    /// Maximum prediction error over the node's trace (Fig 6's z-axis).
    pub max_error: f64,
    /// Mean prediction error (Fig 7's y-axis).
    pub mean_error: f64,
}

/// Result of the Figs 6–8 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossPredictionResult {
    /// All (node × Surveyor) cells.
    pub cells: Vec<CrossCell>,
    /// Fig 8 series: per node, `(node, closest surveyor, max error)`.
    pub closest: Vec<(usize, usize, f64)>,
    /// Number of Surveyors deployed.
    pub surveyor_count: usize,
    /// Number of normal nodes measured.
    pub node_count: usize,
}

impl CrossPredictionResult {
    /// Pearson correlation between RTT and mean prediction error over
    /// all cells — the trend Fig 7 plots (positive: farther Surveyors
    /// predict worse).
    pub fn rtt_error_correlation(&self) -> f64 {
        let n = self.cells.len() as f64;
        if n < 2.0 {
            return 0.0;
        }
        let mx = self.cells.iter().map(|c| c.rtt_ms).sum::<f64>() / n;
        let my = self.cells.iter().map(|c| c.mean_error).sum::<f64>() / n;
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        let mut syy = 0.0;
        for c in &self.cells {
            let dx = c.rtt_ms - mx;
            let dy = c.mean_error - my;
            sxy += dx * dy;
            sxx += dx * dx;
            syy += dy * dy;
        }
        if sxx == 0.0 || syy == 0.0 {
            0.0
        } else {
            sxy / (sxx * syy).sqrt()
        }
    }

    /// For each node, whether at least one Surveyor's filter yields a
    /// max prediction error below `threshold` (the paper: every node can
    /// find *some* good Surveyor).
    pub fn fraction_with_good_surveyor(&self, threshold: f64) -> f64 {
        if self.node_count == 0 {
            return 0.0;
        }
        let mut good = std::collections::BTreeSet::new();
        for c in &self.cells {
            if c.max_error < threshold {
                good.insert(c.node);
            }
        }
        good.len() as f64 / self.node_count as f64
    }
}

/// Run the cross-prediction experiment (Vivaldi on the PlanetLab-like
/// deployment, ~20 Surveyors as in the paper's Fig 8).
pub fn fig678_cross_prediction(scale: &Scale) -> CrossPredictionResult {
    let fraction = (20.0 / scale.planetlab_nodes as f64).clamp(0.05, 0.3);
    let config = ScenarioConfig {
        seed: scale.seed,
        topology: TopologyKind::small_planetlab(scale.planetlab_nodes),
        surveyors: SurveyorPlacement::Random { fraction },
        malicious_fraction: 0.0,
        alpha: 0.05,
        detection: false,
        clean_cycles: scale.clean_passes,
        attack_cycles: 0,
        embed_against_surveyors_only: false,
    };
    let mut sim = VivaldiSimulation::new(config);
    sim.run_clean(scale.clean_passes);
    sim.calibrate_surveyors(&EmConfig::default());
    // Fresh measurement phase for the traces being replayed.
    sim.clear_traces();
    sim.run_clean(scale.measure_passes);

    let normal = sim.normal_nodes();
    let surveyors: Vec<usize> = sim.surveyors().iter().copied().collect();
    let mut cells = Vec::with_capacity(normal.len() * surveyors.len());
    let mut closest = Vec::with_capacity(normal.len());
    for &node in &normal {
        let trace = &sim.traces()[node];
        if trace.len() <= BURN_IN + 5 {
            continue;
        }
        // Track the closest Surveyor's cell (by base RTT) as the cells
        // are produced, so no back-search over `cells` is needed.
        let mut best: Option<(usize, f64, f64)> = None;
        for &s in &surveyors {
            // A Surveyor absent from the registry (never calibrated)
            // simply contributes no cell.
            let Some(info) = sim.registry().get(s) else {
                continue;
            };
            let errors = prediction_errors(info.params, trace);
            let tail = &errors[BURN_IN..];
            let max_error = tail.iter().cloned().fold(0.0, f64::max);
            let mean_error = tail.iter().sum::<f64>() / tail.len() as f64;
            let rtt_ms = sim.network().base_rtt(node, s);
            cells.push(CrossCell {
                node,
                surveyor: s,
                rtt_ms,
                max_error,
                mean_error,
            });
            if best.map(|(_, d, _)| rtt_ms < d).unwrap_or(true) {
                best = Some((s, rtt_ms, max_error));
            }
        }
        if let Some((s, _, max_err)) = best {
            closest.push((node, s, max_err));
        }
    }
    CrossPredictionResult {
        cells,
        closest,
        surveyor_count: surveyors.len(),
        node_count: normal.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> CrossPredictionResult {
        fig678_cross_prediction(&Scale::test())
    }

    #[test]
    fn produces_full_matrix() {
        let r = result();
        assert!(r.surveyor_count >= 2);
        assert!(r.node_count > 10);
        assert_eq!(r.closest.len(), r.node_count);
        // One cell per (node, surveyor) pair with a usable trace.
        assert_eq!(r.cells.len(), r.node_count * r.surveyor_count);
    }

    #[test]
    fn most_nodes_find_a_good_surveyor() {
        let r = result();
        // Paper: "each normal node can find at least one Surveyor whose
        // filter yields very low prediction errors". Judge by the mean
        // prediction error (the max is dominated by single outliers at
        // toy scale).
        let mut good = std::collections::BTreeSet::new();
        for c in &r.cells {
            if c.mean_error < 0.25 {
                good.insert(c.node);
            }
        }
        let frac = good.len() as f64 / r.node_count as f64;
        assert!(frac > 0.8, "only {frac} of nodes have a good surveyor");
    }

    #[test]
    fn closest_surveyor_errors_beat_worst_case() {
        let r = result();
        let mean_closest: f64 =
            r.closest.iter().map(|(_, _, e)| *e).sum::<f64>() / r.closest.len() as f64;
        let mean_worst: f64 = {
            let mut per_node: std::collections::BTreeMap<usize, f64> = Default::default();
            for c in &r.cells {
                let e = per_node.entry(c.node).or_insert(0.0);
                *e = e.max(c.max_error);
            }
            per_node.values().sum::<f64>() / per_node.len() as f64
        };
        assert!(
            mean_closest <= mean_worst,
            "closest {mean_closest} vs worst {mean_worst}"
        );
    }

    #[test]
    fn cells_are_finite_and_nonnegative() {
        let r = result();
        for c in &r.cells {
            assert!(c.max_error.is_finite() && c.max_error >= 0.0);
            assert!(c.mean_error.is_finite() && c.mean_error >= 0.0);
            assert!(c.mean_error <= c.max_error + 1e-12);
            assert!(c.rtt_ms > 0.0);
        }
    }
}
