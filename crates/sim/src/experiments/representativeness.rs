//! §3.3 Surveyor-representativeness experiments: Fig 4 (population size
//! and placement) and Fig 5 (8% Surveyors on both substrates).
//!
//! The metric is the CDF of per-node 95th-percentile relative errors: a
//! Surveyor deployment is representative when the distribution observed
//! over Surveyors matches the one observed over the full normal-node
//! population.

use super::{Curve, Scale};
use crate::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use crate::vivaldi_driver::VivaldiSimulation;
use serde::{Deserialize, Serialize};

fn scenario(scale: &Scale, topology: TopologyKind, placement: SurveyorPlacement) -> ScenarioConfig {
    ScenarioConfig {
        seed: scale.seed,
        topology,
        surveyors: placement,
        malicious_fraction: 0.0,
        alpha: 0.05,
        detection: false,
        clean_cycles: scale.clean_passes,
        attack_cycles: 0,
        embed_against_surveyors_only: false,
    }
}

/// Run one clean Vivaldi system and return `(normal-node p95 samples,
/// surveyor p95 samples, KS distance between the two)`.
fn one_system(
    scale: &Scale,
    topology: TopologyKind,
    placement: SurveyorPlacement,
) -> (Vec<f64>, Vec<f64>, f64) {
    let mut sim = VivaldiSimulation::new(scenario(scale, topology, placement));
    sim.run_clean(scale.clean_passes);
    let normal = sim.accuracy_report(scale.pairs_per_node).p95_per_node;
    let surveyor_ids: Vec<usize> = sim.surveyors().iter().copied().collect();
    let surveyors = sim.p95_for_subset(&surveyor_ids, scale.pairs_per_node);
    let ks = ices_stats::Ecdf::new(normal.clone())
        .ks_distance(&ices_stats::Ecdf::new(surveyors.clone()));
    (normal, surveyors, ks)
}

/// Fig 4 result: representativeness vs Surveyor population size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Result {
    /// CDF curves: normal population plus each Surveyor deployment.
    pub curves: Vec<Curve>,
    /// `(label, KS distance to the normal-node distribution)` per
    /// deployment — the scalar representativeness summary.
    pub ks: Vec<(String, f64)>,
}

/// Run the Fig 4 experiment on the King-like topology.
pub fn fig4_surveyor_population(scale: &Scale) -> Fig4Result {
    let mut curves = Vec::new();
    let mut ks = Vec::new();
    let deployments = [
        ("random 10%", SurveyorPlacement::Random { fraction: 0.10 }),
        ("random 8%", SurveyorPlacement::Random { fraction: 0.08 }),
        ("random 5%", SurveyorPlacement::Random { fraction: 0.05 }),
        ("random 1%", SurveyorPlacement::Random { fraction: 0.01 }),
        (
            "k-means heads 1%",
            SurveyorPlacement::KMeansHeads { fraction: 0.01 },
        ),
    ];
    let mut normal_curve_done = false;
    for (label, placement) in deployments {
        let (normal, surveyors, d) =
            one_system(scale, TopologyKind::small_king(scale.king_nodes), placement);
        if !normal_curve_done {
            curves.push(Curve::from_samples(
                "95th percentile of normal nodes",
                normal,
                150,
            ));
            normal_curve_done = true;
        }
        curves.push(Curve::from_samples(
            format!("95th percentile of Surveyors: {label}"),
            surveyors,
            150,
        ));
        ks.push((label.to_string(), d));
    }
    Fig4Result { curves, ks }
}

/// Fig 5 result: 8% random Surveyors on both substrates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Result {
    /// Four curves: normal/surveyor × King/PlanetLab.
    pub curves: Vec<Curve>,
    /// KS distances per substrate.
    pub ks_king: f64,
    /// KS distance on the PlanetLab-like deployment.
    pub ks_planetlab: f64,
}

/// Run the Fig 5 experiment.
pub fn fig5_representativeness(scale: &Scale) -> Fig5Result {
    let placement = SurveyorPlacement::Random { fraction: 0.08 };
    let (nk, sk, ks_king) =
        one_system(scale, TopologyKind::small_king(scale.king_nodes), placement);
    let (np, sp, ks_planetlab) = one_system(
        scale,
        TopologyKind::small_planetlab(scale.planetlab_nodes),
        placement,
    );
    Fig5Result {
        curves: vec![
            Curve::from_samples("normal nodes: King", nk, 150),
            Curve::from_samples("Surveyors: King", sk, 150),
            Curve::from_samples("normal nodes: PlanetLab", np, 150),
            Curve::from_samples("Surveyors: PlanetLab", sp, 150),
        ],
        ks_king,
        ks_planetlab,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_larger_random_populations_are_more_representative() {
        let r = fig4_surveyor_population(&Scale::test());
        assert_eq!(r.curves.len(), 6);
        assert_eq!(r.ks.len(), 5);
        for (_, d) in &r.ks {
            assert!((0.0..=1.0).contains(d));
        }
        // At toy scale the 1% deployments hold only 2 Surveyors, so the
        // KS ordering is statistically meaningless; shape comparisons
        // happen at harness scale (see EXPERIMENTS.md). Here we only
        // check that every deployment produced a usable comparison.
        for (label, d) in &r.ks {
            assert!(d.is_finite(), "{label} produced no KS distance");
        }
    }

    #[test]
    fn fig5_eight_percent_tracks_population() {
        let r = fig5_representativeness(&Scale::test());
        assert_eq!(r.curves.len(), 4);
        // At test scale 8% is only ~5 Surveyors, each with ~4 Surveyor
        // neighbors — their positioning degrades and the KS distance is
        // dominated by that artifact. Representativeness proper is
        // checked at harness scale (see EXPERIMENTS.md); here we only
        // require well-formed output.
        assert!((0.0..=1.0).contains(&r.ks_king), "King KS {}", r.ks_king);
        assert!(
            (0.0..=1.0).contains(&r.ks_planetlab),
            "PlanetLab KS {}",
            r.ks_planetlab
        );
    }
}
