//! §3.1–3.2 validation experiments: Fig 1 (innovation gaussianity),
//! Fig 2 (tracking), Fig 3 + Table 1 (prediction-error distribution).

use super::{Curve, Scale};
use crate::nps_driver::NpsSimulation;
use crate::replay::{prediction_errors, standardized_innovations};
use crate::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use crate::vivaldi_driver::VivaldiSimulation;
use ices_core::EmConfig;
use ices_stats::histogram::IntervalBin;
use ices_stats::lilliefors::Significance;
use ices_stats::qq::{qq_normal, QqPoint};
use ices_stats::{lilliefors_test, IntervalHistogram};
use serde::{Deserialize, Serialize};

/// Transient samples skipped before applying statistics to innovations.
const BURN_IN: usize = 20;

/// The four system × substrate combinations of the validation section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Combo {
    /// Vivaldi on the King-like simulation topology.
    VivaldiKing,
    /// Vivaldi on the PlanetLab-like deployment.
    VivaldiPlanetLab,
    /// NPS on the King-like simulation topology.
    NpsKing,
    /// NPS on the PlanetLab-like deployment.
    NpsPlanetLab,
}

impl Combo {
    /// Human-readable label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            Combo::VivaldiKing => "Simulations, Vivaldi",
            Combo::VivaldiPlanetLab => "PlanetLab, Vivaldi",
            Combo::NpsKing => "Simulations, NPS",
            Combo::NpsPlanetLab => "PlanetLab, NPS",
        }
    }

    /// All four combos, in the paper's order.
    pub fn all() -> [Combo; 4] {
        [
            Combo::VivaldiKing,
            Combo::NpsKing,
            Combo::VivaldiPlanetLab,
            Combo::NpsPlanetLab,
        ]
    }
}

fn clean_scenario(scale: &Scale, topology: TopologyKind) -> ScenarioConfig {
    ScenarioConfig {
        seed: scale.seed,
        topology,
        surveyors: SurveyorPlacement::Random { fraction: 0.08 },
        malicious_fraction: 0.0,
        alpha: 0.05,
        detection: false,
        clean_cycles: scale.clean_passes,
        attack_cycles: scale.measure_passes,
        embed_against_surveyors_only: false,
    }
}

fn king(scale: &Scale) -> TopologyKind {
    TopologyKind::small_king(scale.king_nodes)
}

fn planetlab(scale: &Scale) -> TopologyKind {
    TopologyKind::small_planetlab(scale.planetlab_nodes)
}

/// Collect per-node clean traces for a combo: run the system clean,
/// calibrate every node's own filter, forget coordinates, re-embed, and
/// return `(phase-2 traces, per-node params)`.
fn traces_and_params(
    scale: &Scale,
    combo: Combo,
) -> (Vec<Vec<f64>>, Vec<ices_core::StateSpaceParams>) {
    let em = EmConfig::default();
    match combo {
        Combo::VivaldiKing | Combo::VivaldiPlanetLab => {
            let topo = if combo == Combo::VivaldiKing {
                king(scale)
            } else {
                planetlab(scale)
            };
            let mut sim = VivaldiSimulation::new(clean_scenario(scale, topo));
            sim.run_clean(scale.clean_passes);
            let params: Vec<_> = sim
                .calibrate_all(&em)
                .into_iter()
                .map(|o| o.params)
                .collect();
            sim.clear_traces();
            sim.forget_coordinates();
            // The paper's §3.2 second embedding runs as long as the
            // first: symmetric phases, so the filter sees the same mix
            // of transient and stationary behavior it was calibrated on.
            sim.run_clean(scale.clean_passes);
            (sim.traces().iter().map(|t| t.to_vec()).collect(), params)
        }
        Combo::NpsKing | Combo::NpsPlanetLab => {
            let topo = if combo == Combo::NpsKing {
                king(scale)
            } else {
                planetlab(scale)
            };
            let mut sim = NpsSimulation::new(clean_scenario(scale, topo));
            sim.run_clean(scale.nps_clean_rounds);
            let params: Vec<_> = sim
                .calibrate_all_traces(&em)
                .into_iter()
                .map(|o| o.params)
                .collect();
            sim.clear_traces();
            sim.forget_coordinates();
            sim.run_clean(scale.nps_clean_rounds);
            (sim.traces().iter().map(|t| t.to_vec()).collect(), params)
        }
    }
}

/// Fig 1 result: QQ data of representative innovation processes plus the
/// Lilliefors rejection census of §3.1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Result {
    /// QQ points of one representative Vivaldi (PlanetLab) node.
    pub qq_vivaldi: Vec<QqPoint>,
    /// QQ points of one representative NPS (PlanetLab) node.
    pub qq_nps: Vec<QqPoint>,
    /// Per-combo `(rejections, nodes tested)` at the 5% level.
    pub lilliefors: Vec<(Combo, usize, usize)>,
}

/// Run the Fig 1 experiment.
pub fn fig1_innovation_gaussianity(scale: &Scale) -> Fig1Result {
    let mut lilliefors = Vec::new();
    let mut qq_vivaldi = Vec::new();
    let mut qq_nps = Vec::new();
    for combo in Combo::all() {
        let (traces, params) = traces_and_params(scale, combo);
        let mut rejections = 0usize;
        let mut tested = 0usize;
        let mut candidates: Vec<(f64, Vec<f64>)> = Vec::new();
        for (trace, p) in traces.iter().zip(&params) {
            if trace.len() <= BURN_IN + 20 {
                continue;
            }
            let z = standardized_innovations(*p, trace);
            let z = &z[BURN_IN..];
            // A constant trace cannot be tested.
            // audit:allow(PANIC02): the burn-in length check above keeps z non-empty
            if z.iter().all(|&v| (v - z[0]).abs() < 1e-12) {
                continue;
            }
            tested += 1;
            let outcome = lilliefors_test(z, Significance::FivePercent);
            if outcome.rejected {
                rejections += 1;
            }
            candidates.push((outcome.statistic, z.to_vec()));
        }
        // The representative node for the QQ plot is the one with the
        // median test statistic — a typical innovation process, not a
        // cherry-picked best or a pathological worst.
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0));
        if let Some((_, z)) = candidates.get(candidates.len() / 2) {
            match combo {
                Combo::VivaldiPlanetLab => qq_vivaldi = qq_normal(z),
                Combo::NpsPlanetLab => qq_nps = qq_normal(z),
                _ => {}
            }
        }
        lilliefors.push((combo, rejections, tested));
    }
    Fig1Result {
        qq_vivaldi,
        qq_nps,
        lilliefors,
    }
}

/// Fig 2 result: the time series of measured vs predicted relative
/// errors of one node, plus the prediction error (their difference).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Result {
    /// Node whose trace is shown.
    pub node: usize,
    /// Per-step rows `(step, measured D_n, predicted Δ̂, |difference|)`.
    pub series: Vec<(usize, f64, f64, f64)>,
}

/// Run the Fig 2 experiment (Vivaldi, PlanetLab-like).
pub fn fig2_tracking(scale: &Scale) -> Fig2Result {
    let mut sim = VivaldiSimulation::new(clean_scenario(scale, planetlab(scale)));
    sim.run_clean(scale.clean_passes);
    let em = EmConfig::default();
    let outcomes = sim.calibrate_all(&em);
    sim.clear_traces();
    sim.forget_coordinates();
    sim.run_clean(scale.clean_passes);
    // A representative normal node: the one whose trace mean is the
    // median over normal nodes (neither a best case nor a pathological
    // host).
    let mut by_mean: Vec<(f64, usize)> = sim
        .normal_nodes()
        .iter()
        .map(|&n| {
            let t = &sim.traces()[n];
            (t.iter().sum::<f64>() / t.len().max(1) as f64, n)
        })
        .collect();
    by_mean.sort_by(|a, b| a.0.total_cmp(&b.0));
    let node = by_mean[by_mean.len() / 2].1;
    let trace = &sim.traces()[node];
    let params = outcomes[node].params;
    let replayed = crate::replay::replay_filter(params, trace);
    let series = replayed
        .into_iter()
        .enumerate()
        .map(|(i, (pred, innovation))| {
            let measured = pred.predicted + innovation;
            (i, measured, pred.predicted, innovation.abs())
        })
        .collect();
    Fig2Result { node, series }
}

/// Fig 3 + Table 1 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Result {
    /// One prediction-error CDF per combo.
    pub curves: Vec<Curve>,
    /// Table 1 rows for Vivaldi (PlanetLab).
    pub table_vivaldi: Vec<IntervalBin>,
    /// Table 1 rows for NPS (PlanetLab).
    pub table_nps: Vec<IntervalBin>,
}

/// Run the Fig 3 / Table 1 experiment: calibrate every node on its own
/// embedding, restart the embedding, and measure |predicted − measured|.
pub fn fig3_prediction_cdf(scale: &Scale) -> Fig3Result {
    let mut curves = Vec::new();
    let mut table_vivaldi = Vec::new();
    let mut table_nps = Vec::new();
    for combo in Combo::all() {
        let (traces, params) = traces_and_params(scale, combo);
        let mut all_errors = Vec::new();
        let mut hist = IntervalHistogram::new(0.05, 13);
        for (node, (trace, p)) in traces.iter().zip(&params).enumerate() {
            if trace.len() <= BURN_IN {
                continue;
            }
            let errors = prediction_errors(*p, trace);
            for &e in &errors[BURN_IN..] {
                all_errors.push(e);
                hist.record(node, e); // values past the last interval land in the overflow bin
            }
        }
        curves.push(Curve::from_samples(combo.label(), all_errors, 200));
        match combo {
            Combo::VivaldiPlanetLab => table_vivaldi = hist.table(),
            Combo::NpsPlanetLab => table_nps = hist.table(),
            _ => {}
        }
    }
    Fig3Result {
        curves,
        table_vivaldi,
        table_nps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_census_runs_and_qq_bulk_is_linear() {
        let r = fig1_innovation_gaussianity(&Scale::test());
        assert_eq!(r.lilliefors.len(), 4);
        for &(combo, rejections, tested) in &r.lilliefors {
            assert!(tested > 0, "{combo:?} tested no nodes");
            assert!(rejections <= tested);
        }
        assert!(!r.qq_vivaldi.is_empty());
        assert!(!r.qq_nps.is_empty());
        // The innovation bulk should hug the gaussian line even though
        // the synthetic substrate has heavier tails than the paper''s
        // measurements: trim 5% on each side before correlating.
        for (label, qq) in [("vivaldi", &r.qq_vivaldi), ("nps", &r.qq_nps)] {
            let n = qq.len();
            let bulk = &qq[n / 20..n - n / 20];
            let r2 = ices_stats::qq::qq_correlation(bulk);
            // The synthetic substrate's innovations are heavier-tailed
            // than the paper's measurements (see EXPERIMENTS.md); the
            // bulk must still be recognizably linear.
            assert!(r2 > 0.7, "{label} QQ bulk r² = {r2}");
        }
    }

    #[test]
    fn fig2_prediction_tracks_measurement() {
        let r = fig2_tracking(&Scale::test());
        assert!(r.series.len() > 50);
        // The filter must beat both trivial baselines: predicting zero
        // and predicting the trace mean.
        let n = r.series.len() as f64;
        let mean_measured: f64 = r.series.iter().map(|(_, m, _, _)| *m).sum::<f64>() / n;
        let mean_err: f64 = r.series.iter().map(|(_, _, _, e)| *e).sum::<f64>() / n;
        let zero_baseline: f64 = r.series.iter().map(|(_, m, _, _)| m.abs()).sum::<f64>() / n;
        let mean_baseline: f64 = r
            .series
            .iter()
            .map(|(_, m, _, _)| (m - mean_measured).abs())
            .sum::<f64>()
            / n;
        assert!(
            mean_err < zero_baseline,
            "filter ({mean_err}) must beat the zero predictor ({zero_baseline})"
        );
        assert!(
            mean_err < 1.05 * mean_baseline,
            "filter ({mean_err}) must match or beat the constant-mean predictor ({mean_baseline})"
        );
    }

    #[test]
    fn fig3_most_predictions_excellent() {
        let r = fig3_prediction_cdf(&Scale::test());
        assert_eq!(r.curves.len(), 4);
        for c in &r.curves {
            // The paper: the vast majority of prediction errors are tiny.
            // At toy scale (short, unconverged phases) the bar is looser.
            let x80 = c.quantile_x(0.8);
            assert!(
                x80 < 0.5,
                "{}: 80th-percentile prediction error {x80}",
                c.label
            );
        }
        assert!(!r.table_vivaldi.is_empty());
        assert!(!r.table_nps.is_empty());
        // The first interval should dominate, as in Table 1.
        // The low-error region must dominate the tail: compare the mass
        // of the first three intervals with the mass of the last three.
        let rows = &r.table_vivaldi;
        let low: usize = rows.iter().take(3).map(|b| b.total).sum();
        let high: usize = rows.iter().rev().take(3).map(|b| b.total).sum();
        assert!(
            low > 3 * high,
            "low-error mass {low} should dwarf tail mass {high}"
        );
    }
}
