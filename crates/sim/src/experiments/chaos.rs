//! Chaos sweep: graceful degradation of the secured system under
//! injected network faults.
//!
//! The paper evaluates the detector on a perfectly reliable measurement
//! substrate; this experiment asks what happens on a *real* one. Each
//! cell runs the full secured Vivaldi pipeline — clean convergence,
//! Surveyor calibration, armed detection, the colluding isolation
//! attack — on a network with probe loss, probe timeouts, node churn,
//! and intermittent Surveyor outages, and reads off both the §5.1
//! detection metrics (TPR/FPR) and the embedding accuracy. Sweeping
//! `loss × churn` yields degradation curves: how fast detection quality
//! and coordinate accuracy erode as the substrate gets worse, and —
//! the key robustness claim — that the detector's false-positive rate
//! stays bounded instead of blowing up when samples go missing.

use super::Scale;
use crate::metrics::FaultReport;
use crate::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use crate::vivaldi_driver::VivaldiSimulation;
use ices_attack::VivaldiIsolationAttack;
use ices_core::EmConfig;
use ices_netsim::{ChurnModel, FaultPlan};
use ices_stats::Confusion;
use serde::{Deserialize, Serialize};

/// Probe-loss levels the default chaos sweep visits.
pub const DEFAULT_LOSS_LEVELS: [f64; 4] = [0.0, 0.05, 0.10, 0.20];

/// Churn down-probabilities the default chaos sweep visits.
pub const DEFAULT_CHURN_LEVELS: [f64; 3] = [0.0, 0.05, 0.10];

/// Timeouts ride along at a quarter of the loss probability (losses
/// dominate on real paths; timeouts are the rarer, slower failure).
const TIMEOUT_RATIO: f64 = 0.25;

/// Churn epoch length in Vivaldi ticks (one tick = one neighbor slot).
const CHURN_EPOCH_TICKS: u64 = 16;

/// Surveyors churn at half the population's rate: the paper assumes
/// they are managed infrastructure, but not that they never fail.
const SURVEYOR_CHURN_RATIO: f64 = 0.5;

/// One `(loss, churn)` operating point of the chaos sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosCell {
    /// Per-probe loss probability (timeouts ride along at a quarter of
    /// this).
    pub loss: f64,
    /// Per-epoch down probability of ordinary nodes (Surveyors churn at
    /// half this rate).
    pub churn: f64,
    /// Confusion counts over all vetted steps of the attack phase.
    pub confusion: Confusion,
    /// Fault-path bookkeeping accumulated over the whole run.
    pub faults: FaultReport,
    /// Median relative embedding error of honest nodes after the run.
    pub accuracy_median: f64,
    /// 95th-percentile relative embedding error.
    pub accuracy_p95: f64,
    /// Filter refreshes (starvation feeds this under heavy faults).
    pub filter_refreshes: u64,
}

/// A full chaos sweep over `loss × churn`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosSweep {
    /// All cells, row-major over `(churn, loss)`.
    pub cells: Vec<ChaosCell>,
}

impl ChaosSweep {
    /// The cell at an exact operating point.
    pub fn cell(&self, loss: f64, churn: f64) -> Option<&ChaosCell> {
        self.cells
            .iter()
            .find(|c| (c.loss - loss).abs() < 1e-9 && (c.churn - churn).abs() < 1e-9)
    }

    /// Degradation series vs loss for one churn level: `(loss, y)`
    /// points sorted by loss, with `y` read off each cell (e.g. TPR,
    /// FPR, or accuracy).
    pub fn series(&self, churn: f64, metric: impl Fn(&ChaosCell) -> f64) -> Vec<(f64, f64)> {
        let mut points: Vec<(f64, f64)> = self
            .cells
            .iter()
            .filter(|c| (c.churn - churn).abs() < 1e-9)
            .map(|c| (c.loss, metric(c)))
            .collect();
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        points
    }
}

/// The fault plan for one operating point: link loss/timeouts, global
/// churn, and a slower Surveyor churn override per Surveyor.
fn chaos_plan(loss: f64, churn: f64, surveyors: &std::collections::BTreeSet<usize>) -> FaultPlan {
    let mut plan = FaultPlan::lossy(loss, loss * TIMEOUT_RATIO);
    if churn > 0.0 {
        plan = plan.with_churn(ChurnModel::new(CHURN_EPOCH_TICKS, churn));
        for &s in surveyors {
            plan = plan.with_node_churn(
                s,
                ChurnModel::new(CHURN_EPOCH_TICKS, churn * SURVEYOR_CHURN_RATIO),
            );
        }
    }
    plan
}

fn scenario(scale: &Scale) -> ScenarioConfig {
    ScenarioConfig {
        seed: scale.seed,
        topology: TopologyKind::small_planetlab(scale.planetlab_nodes),
        surveyors: SurveyorPlacement::Random { fraction: 0.08 },
        malicious_fraction: 0.2,
        alpha: 0.05,
        detection: true,
        clean_cycles: scale.clean_passes,
        attack_cycles: scale.measure_passes,
        embed_against_surveyors_only: false,
    }
}

/// Run one chaos operating point: the full secured Vivaldi pipeline
/// with the fault plan active from the first tick (calibration included
/// — Surveyors calibrate on whatever samples survive, as they would in
/// deployment).
pub fn chaos_cell(scale: &Scale, loss: f64, churn: f64) -> ChaosCell {
    let mut sim = VivaldiSimulation::new(scenario(scale));
    sim.set_fault_plan(chaos_plan(loss, churn, sim.surveyors()));
    sim.run_clean(scale.clean_passes);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.arm_detection();
    let target = sim.normal_nodes()[0];
    let radius = sim.network().matrix().median() / 2.0;
    let attack = VivaldiIsolationAttack::new(
        sim.malicious().iter().copied(),
        sim.coordinate(target).clone(),
        radius.max(20.0),
        scale.seed ^ 0xC4A05,
    );
    sim.run(scale.measure_passes, &attack, false);
    let accuracy = sim.accuracy_report(scale.pairs_per_node);
    let report = sim.report();
    ChaosCell {
        loss,
        churn,
        confusion: report.confusion,
        faults: report.faults.clone(),
        accuracy_median: accuracy.median(),
        accuracy_p95: accuracy.ecdf().quantile(0.95),
        filter_refreshes: report.filter_refreshes,
    }
}

/// The full chaos sweep over `loss × churn`. Cells are independent
/// deterministic simulations, so they run in parallel on the
/// [`ices_par`] executor without affecting results.
pub fn chaos_sweep(scale: &Scale, losses: &[f64], churns: &[f64]) -> ChaosSweep {
    let mut points = Vec::with_capacity(losses.len() * churns.len());
    for &churn in churns {
        for &loss in losses {
            points.push((loss, churn));
        }
    }
    let cells = ices_par::par_map(&points, |_, &(loss, churn)| chaos_cell(scale, loss, churn));
    ChaosSweep { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_cell_reports_no_faults() {
        let cell = chaos_cell(&Scale::test(), 0.0, 0.0);
        assert_eq!(cell.faults, FaultReport::default());
        assert!(cell.confusion.negatives() > 0);
        assert!(cell.accuracy_median < 0.3, "clean accuracy sanity");
    }

    #[test]
    fn fpr_stays_bounded_under_loss_and_churn() {
        // The robustness acceptance criterion: at >= 10% probe loss with
        // churn enabled, missing samples must not masquerade as attacks.
        let cell = chaos_cell(&Scale::test(), 0.10, 0.05);
        assert!(
            cell.faults.total_failed_probes() > 0,
            "the plan must actually injure probes"
        );
        assert!(cell.confusion.negatives() > 0, "honest steps must flow");
        let fpr = cell.confusion.fpr();
        assert!(
            fpr < 0.15,
            "detector FPR must stay bounded under 10% loss + churn, got {fpr}"
        );
        // Detection must still function: the blatant isolation attack
        // should be caught more often than not.
        if cell.confusion.positives() > 0 {
            assert!(
                cell.confusion.tpr() > 0.5,
                "attack detection collapsed under faults: tpr {}",
                cell.confusion.tpr()
            );
        }
    }

    #[test]
    fn sweep_covers_the_grid_and_degrades_gracefully() {
        let sweep = chaos_sweep(&Scale::test(), &[0.0, 0.10], &[0.0, 0.05]);
        assert_eq!(sweep.cells.len(), 4);
        let clean = sweep.cell(0.0, 0.0).expect("clean cell");
        let worst = sweep.cell(0.10, 0.05).expect("faulty cell");
        assert_eq!(clean.faults, FaultReport::default());
        assert!(worst.faults.total_failed_probes() > 0);
        // Graceful, not catastrophic: the faulty embedding stays within
        // a loose multiple of the clean one.
        assert!(
            worst.accuracy_median < clean.accuracy_median.max(0.05) * 6.0,
            "accuracy blew up under faults: clean {} vs faulty {}",
            clean.accuracy_median,
            worst.accuracy_median
        );
        let fpr_series = sweep.series(0.05, |c| c.confusion.fpr());
        assert_eq!(fpr_series.len(), 2);
        assert!(fpr_series.iter().all(|&(_, fpr)| fpr < 0.15));
    }
}
