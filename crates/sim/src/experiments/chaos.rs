//! Chaos sweep: graceful degradation of the secured system under
//! injected network faults.
//!
//! The paper evaluates the detector on a perfectly reliable measurement
//! substrate; this experiment asks what happens on a *real* one. Each
//! cell runs the full secured Vivaldi pipeline — clean convergence,
//! Surveyor calibration, armed detection, the colluding isolation
//! attack — on a network with probe loss, probe timeouts, node churn,
//! and intermittent Surveyor outages, and reads off both the §5.1
//! detection metrics (TPR/FPR) and the embedding accuracy. Sweeping
//! `loss × churn` yields degradation curves: how fast detection quality
//! and coordinate accuracy erode as the substrate gets worse, and —
//! the key robustness claim — that the detector's false-positive rate
//! stays bounded instead of blowing up when samples go missing.

use super::Scale;
use crate::metrics::FaultReport;
use crate::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use crate::vivaldi_driver::VivaldiSimulation;
use ices_attack::VivaldiIsolationAttack;
use ices_core::EmConfig;
use ices_netsim::{ChurnModel, FaultPlan};
use ices_obs::Journal;
use ices_stats::Confusion;
use serde::{Deserialize, Serialize};

/// Probe-loss levels the default chaos sweep visits.
pub const DEFAULT_LOSS_LEVELS: [f64; 4] = [0.0, 0.05, 0.10, 0.20];

/// Churn down-probabilities the default chaos sweep visits.
pub const DEFAULT_CHURN_LEVELS: [f64; 3] = [0.0, 0.05, 0.10];

/// Timeouts ride along at a quarter of the loss probability (losses
/// dominate on real paths; timeouts are the rarer, slower failure).
const TIMEOUT_RATIO: f64 = 0.25;

/// Churn epoch length in Vivaldi ticks (one tick = one neighbor slot).
const CHURN_EPOCH_TICKS: u64 = 16;

/// Surveyors churn at half the population's rate: the paper assumes
/// they are managed infrastructure, but not that they never fail.
const SURVEYOR_CHURN_RATIO: f64 = 0.5;

/// One `(loss, churn)` operating point of the chaos sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosCell {
    /// Per-probe loss probability (timeouts ride along at a quarter of
    /// this).
    pub loss: f64,
    /// Per-epoch down probability of ordinary nodes (Surveyors churn at
    /// half this rate).
    pub churn: f64,
    /// Confusion counts over all vetted steps of the attack phase.
    pub confusion: Confusion,
    /// Fault-path bookkeeping accumulated over the whole run.
    pub faults: FaultReport,
    /// Median relative embedding error of honest nodes after the run;
    /// `None` (JSON `null`) when the run sampled zero honest pairs.
    pub accuracy_median: Option<f64>,
    /// 95th-percentile relative embedding error; `None` when the run
    /// sampled zero honest pairs.
    pub accuracy_p95: Option<f64>,
    /// Filter refreshes (starvation feeds this under heavy faults).
    pub filter_refreshes: u64,
}

/// A full chaos sweep over `loss × churn`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosSweep {
    /// All cells, row-major over `(churn, loss)`.
    pub cells: Vec<ChaosCell>,
}

impl ChaosSweep {
    /// The cell at an exact operating point.
    pub fn cell(&self, loss: f64, churn: f64) -> Option<&ChaosCell> {
        self.cells
            .iter()
            .find(|c| (c.loss - loss).abs() < 1e-9 && (c.churn - churn).abs() < 1e-9)
    }

    /// Degradation series vs loss for one churn level: `(loss, y)`
    /// points sorted by loss, with `y` read off each cell (e.g. TPR,
    /// FPR, or accuracy).
    pub fn series(&self, churn: f64, metric: impl Fn(&ChaosCell) -> f64) -> Vec<(f64, f64)> {
        let mut points: Vec<(f64, f64)> = self
            .cells
            .iter()
            .filter(|c| (c.churn - churn).abs() < 1e-9)
            .map(|c| (c.loss, metric(c)))
            .collect();
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        points
    }
}

/// The fault plan for one operating point: link loss/timeouts, global
/// churn, and a slower Surveyor churn override per Surveyor.
fn chaos_plan(loss: f64, churn: f64, surveyors: &std::collections::BTreeSet<usize>) -> FaultPlan {
    let mut plan = FaultPlan::lossy(loss, loss * TIMEOUT_RATIO);
    if churn > 0.0 {
        plan = plan.with_churn(ChurnModel::new(CHURN_EPOCH_TICKS, churn));
        for &s in surveyors {
            plan = plan.with_node_churn(
                s,
                ChurnModel::new(CHURN_EPOCH_TICKS, churn * SURVEYOR_CHURN_RATIO),
            );
        }
    }
    plan
}

fn scenario(scale: &Scale) -> ScenarioConfig {
    ScenarioConfig {
        seed: scale.seed,
        topology: TopologyKind::small_planetlab(scale.planetlab_nodes),
        surveyors: SurveyorPlacement::Random { fraction: 0.08 },
        malicious_fraction: 0.2,
        alpha: 0.05,
        detection: true,
        clean_cycles: scale.clean_passes,
        attack_cycles: scale.measure_passes,
        embed_against_surveyors_only: false,
    }
}

/// Run one chaos operating point: the full secured Vivaldi pipeline
/// with the fault plan active from the first tick (calibration included
/// — Surveyors calibrate on whatever samples survive, as they would in
/// deployment).
pub fn chaos_cell(scale: &Scale, loss: f64, churn: f64) -> ChaosCell {
    run_cell(scale, loss, churn, scale.pairs_per_node, false).0
}

/// [`chaos_cell`] with an in-memory run journal attached: returns the
/// cell plus the journal's JSONL bytes (the obs layer's bit-identity
/// contract means the cell itself is unchanged by the journaling).
pub fn chaos_cell_journaled(scale: &Scale, loss: f64, churn: f64) -> (ChaosCell, Vec<u8>) {
    let (cell, journal) = run_cell(scale, loss, churn, scale.pairs_per_node, true);
    (cell, journal.unwrap_or_default())
}

fn run_cell(
    scale: &Scale,
    loss: f64,
    churn: f64,
    pairs_per_node: usize,
    journaled: bool,
) -> (ChaosCell, Option<Vec<u8>>) {
    let mut sim = VivaldiSimulation::new(scenario(scale));
    if journaled {
        sim.enable_journal(Journal::in_memory());
    }
    sim.set_fault_plan(chaos_plan(loss, churn, sim.surveyors()));
    sim.run_clean(scale.clean_passes);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.arm_detection();
    finish_cell(sim, scale, loss, churn, pairs_per_node)
}

/// Attack phase + metric harvest shared by every cell flavor.
fn finish_cell(
    mut sim: VivaldiSimulation,
    scale: &Scale,
    loss: f64,
    churn: f64,
    pairs_per_node: usize,
) -> (ChaosCell, Option<Vec<u8>>) {
    let target = sim.normal_nodes()[0]; // audit:allow(PANIC02): every scenario places normal nodes
    let radius = sim.network().median_base_rtt() / 2.0;
    let attack = VivaldiIsolationAttack::new(
        sim.malicious().iter().copied(),
        sim.coordinate(target).clone(),
        radius.max(20.0),
        scale.seed ^ 0xC4A05,
    );
    sim.run(scale.measure_passes, &attack, false);
    let accuracy = sim.accuracy_report(pairs_per_node);
    let report = sim.report();
    let journal = sim.finish_journal();
    let cell = ChaosCell {
        loss,
        churn,
        confusion: report.confusion,
        faults: report.faults.clone(),
        // A starved sample (zero honest pairs) records null accuracy
        // rather than aborting the sweep.
        accuracy_median: accuracy.ecdf().map(|e| e.median()),
        accuracy_p95: accuracy.ecdf().map(|e| e.quantile(0.95)),
        filter_refreshes: report.filter_refreshes,
    };
    (cell, journal)
}

/// The total-blackout operating point: the run converges and calibrates
/// cleanly, then **every Surveyor goes permanently dark** before
/// detection is armed. Every normal node's candidate draw comes back
/// empty, so arming is deferred (and stays deferred — the counters land
/// in `faults.deferred_arms`), the attack phase runs against unsecured
/// nodes, and the accuracy sample is deliberately empty (zero pairs) —
/// the regime that used to panic twice over (`&candidates[0]` on an
/// empty slice, `Ecdf::new` on an empty sample) now degrades to a cell
/// full of nulls and degraded-run counters.
pub fn surveyor_blackout_cell(scale: &Scale) -> ChaosCell {
    let mut sim = VivaldiSimulation::new(scenario(scale));
    sim.run_clean(scale.clean_passes);
    sim.calibrate_surveyors(&EmConfig::default());
    let mut plan = FaultPlan::none();
    for &s in sim.surveyors() {
        plan = plan.with_node_churn(s, ChurnModel::permanent_outage());
    }
    sim.set_fault_plan(plan);
    sim.arm_detection();
    finish_cell(sim, scale, 0.0, 1.0, 0).0
}

/// The full chaos sweep over `loss × churn`. Cells are independent
/// deterministic simulations, so they run in parallel on the
/// [`ices_par`] executor without affecting results.
pub fn chaos_sweep(scale: &Scale, losses: &[f64], churns: &[f64]) -> ChaosSweep {
    let mut points = Vec::with_capacity(losses.len() * churns.len());
    for &churn in churns {
        for &loss in losses {
            points.push((loss, churn));
        }
    }
    let cells = ices_par::par_map(&points, |_, &(loss, churn)| chaos_cell(scale, loss, churn));
    ChaosSweep { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_cell_reports_no_faults() {
        let cell = chaos_cell(&Scale::test(), 0.0, 0.0);
        assert_eq!(cell.faults, FaultReport::default());
        assert!(cell.confusion.negatives() > 0);
        let median = cell.accuracy_median.expect("clean run samples pairs");
        assert!(median < 0.3, "clean accuracy sanity: {median}");
    }

    #[test]
    fn fpr_stays_bounded_under_loss_and_churn() {
        // The robustness acceptance criterion: at >= 10% probe loss with
        // churn enabled, missing samples must not masquerade as attacks.
        let cell = chaos_cell(&Scale::test(), 0.10, 0.05);
        assert!(
            cell.faults.total_failed_probes() > 0,
            "the plan must actually injure probes"
        );
        assert!(cell.confusion.negatives() > 0, "honest steps must flow");
        let fpr = cell.confusion.fpr();
        assert!(
            fpr < 0.15,
            "detector FPR must stay bounded under 10% loss + churn, got {fpr}"
        );
        // Detection must still function: the blatant isolation attack
        // should be caught more often than not.
        if cell.confusion.positives() > 0 {
            assert!(
                cell.confusion.tpr() > 0.5,
                "attack detection collapsed under faults: tpr {}",
                cell.confusion.tpr()
            );
        }
    }

    #[test]
    fn sweep_covers_the_grid_and_degrades_gracefully() {
        let sweep = chaos_sweep(&Scale::test(), &[0.0, 0.10], &[0.0, 0.05]);
        assert_eq!(sweep.cells.len(), 4);
        let clean = sweep.cell(0.0, 0.0).expect("clean cell");
        let worst = sweep.cell(0.10, 0.05).expect("faulty cell");
        assert_eq!(clean.faults, FaultReport::default());
        assert!(worst.faults.total_failed_probes() > 0);
        // Graceful, not catastrophic: the faulty embedding stays within
        // a loose multiple of the clean one.
        let clean_median = clean.accuracy_median.expect("clean accuracy");
        let worst_median = worst.accuracy_median.expect("faulty accuracy");
        assert!(
            worst_median < clean_median.max(0.05) * 6.0,
            "accuracy blew up under faults: clean {clean_median} vs faulty {worst_median}"
        );
        let fpr_series = sweep.series(0.05, |c| c.confusion.fpr());
        assert_eq!(fpr_series.len(), 2);
        assert!(fpr_series.iter().all(|&(_, fpr)| fpr < 0.15));
    }

    #[test]
    fn surveyor_blackout_degrades_instead_of_panicking() {
        // The two panic paths this cell used to hit: indexing
        // `&candidates[0]` on an empty Surveyor draw, and building an
        // ECDF over zero sampled pairs. Now it must complete and expose
        // the degradation through counters and null accuracy.
        let cell = surveyor_blackout_cell(&Scale::test());
        assert!(
            cell.faults.deferred_arms > 0,
            "total outage must defer arming: {:?}",
            cell.faults
        );
        assert_eq!(cell.faults.late_arms, 0, "outage never lifts");
        assert_eq!(cell.accuracy_median, None, "zero pairs => null accuracy");
        assert_eq!(cell.accuracy_p95, None);
        // No node armed, so no verdicts flow at all.
        assert_eq!(cell.confusion.total(), 0);
    }

    #[test]
    fn journaled_cell_matches_plain_cell() {
        let scale = Scale::test();
        let plain = chaos_cell(&scale, 0.05, 0.05);
        let (journaled, bytes) = chaos_cell_journaled(&scale, 0.05, 0.05);
        assert_eq!(plain, journaled, "journaling must not perturb the run");
        let text = String::from_utf8(bytes).expect("utf8 journal");
        let (run, errors) = ices_obs::report::parse(&text);
        assert!(errors.is_empty(), "journal must validate: {errors:?}");
        assert!(!run.ticks.is_empty(), "journal must carry tick deltas");
    }
}
