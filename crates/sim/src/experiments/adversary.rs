//! Adversary sweep: the post-2007 attack taxonomy against the paper's
//! detector, with and without cross-verification.
//!
//! The paper evaluates its Kalman innovation test against two blatant
//! colluding attacks. This experiment runs the three scenarios the test
//! was never evaluated against — Sybil swarms, eclipse translations,
//! and calibrated slow drift — across an intensity axis, each with the
//! VerLoc-style cross-verification defense off *and* on, and records
//! TPR/FPR, accuracy degradation, and the adversary/defense counters
//! per cell.
//!
//! The cells are built to surface three qualitatively different
//! stories:
//!
//! * **Sybil** is blatant: remote-cluster lies trip the innovation test
//!   at once, and the interesting axis is how far the swarm's candidate
//!   takeover degrades the *embedding* even while detection holds.
//! * **Eclipse** is structural: the victim converges into the
//!   translated frame before detection is armed (the plan steers its
//!   referrals from the first tick), so innovations look healthy and
//!   the detector is near-blind until witnesses outside the eclipse
//!   contradict the claims.
//! * **Slow drift** is temporal: sub-threshold per-tick displacement is
//!   accepted sample by sample, so at low drift rates the detector's
//!   TPR collapses — *that collapse is the headline result*, reported,
//!   not asserted away — and only drift fast enough to outrun the
//!   tolerance margin becomes visible to either layer.

use super::Scale;
use crate::metrics::AdversaryReport;
use crate::scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
use crate::vivaldi_driver::VivaldiSimulation;
use ices_attack::{DefenseConfig, EclipseAttack, SlowDriftAttack, SybilSwarmAttack};
use ices_core::EmConfig;
use ices_netsim::EclipsePlan;
use ices_obs::Journal;
use ices_stats::Confusion;
use serde::{Deserialize, Serialize};

/// Sybil intensities: the swarm's share of identities *and* of each
/// victim's steered candidate slots (the takeover fraction).
pub const DEFAULT_SYBIL_INTENSITIES: [f64; 3] = [0.10, 0.25, 0.40];

/// Eclipse intensities: the fraction of a victim's referrals the
/// poisoned registrar steers to attackers.
pub const DEFAULT_ECLIPSE_INTENSITIES: [f64; 3] = [0.25, 0.50, 0.90];

/// Slow-drift intensities: claimed-coordinate displacement per tick, in
/// ms. The low end sits far under the innovation threshold; the high
/// end outruns it within a few ticks.
pub const DEFAULT_DRIFT_INTENSITIES: [f64; 3] = [0.05, 0.50, 5.00];

/// Malicious population share for the eclipse and slow-drift cells
/// (Sybil cells use their intensity as the share — identity count *is*
/// the Sybil knob).
const BASE_MALICIOUS_FRACTION: f64 = 0.2;

/// Seed salts so each attack family draws from its own stream.
const SYBIL_SALT: u64 = 0x5B11;
const ECLIPSE_SALT: u64 = 0xEC11;
const DRIFT_SALT: u64 = 0xD217;
const DEFENSE_SALT: u64 = 0xDEF3;

/// The three swept attack scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// One adversary, many identities, one remote cluster story.
    Sybil,
    /// Rigid per-victim translation behind steered referrals.
    Eclipse,
    /// Sub-threshold per-tick displacement ("frog boiling").
    SlowDrift,
}

impl AttackKind {
    /// All swept kinds, in sweep order.
    pub const ALL: [AttackKind; 3] = [AttackKind::Sybil, AttackKind::Eclipse, AttackKind::SlowDrift];

    /// The default intensity axis for this attack.
    pub fn default_intensities(self) -> &'static [f64] {
        match self {
            AttackKind::Sybil => &DEFAULT_SYBIL_INTENSITIES,
            AttackKind::Eclipse => &DEFAULT_ECLIPSE_INTENSITIES,
            AttackKind::SlowDrift => &DEFAULT_DRIFT_INTENSITIES,
        }
    }

    /// The snake_case tag used in sweep JSON.
    pub fn tag(self) -> &'static str {
        match self {
            AttackKind::Sybil => "sybil",
            AttackKind::Eclipse => "eclipse",
            AttackKind::SlowDrift => "slow_drift",
        }
    }
}

// The vendored serde shim has no `rename_all` helper attribute, so the
// snake_case wire tags are hand-rolled.
impl Serialize for AttackKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.tag().to_owned())
    }
}

impl Deserialize for AttackKind {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Str(s) => match s.as_str() {
                "sybil" => Ok(AttackKind::Sybil),
                "eclipse" => Ok(AttackKind::Eclipse),
                "slow_drift" => Ok(AttackKind::SlowDrift),
                other => Err(serde::DeError::new(format!("unknown attack kind `{other}`"))),
            },
            other => Err(serde::DeError::new(format!("expected attack tag, got {other:?}"))),
        }
    }
}

/// One `(attack, intensity, defense)` operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdversaryCell {
    /// Which attack ran.
    pub attack: AttackKind,
    /// The attack's intensity knob (meaning depends on the attack; see
    /// the `DEFAULT_*_INTENSITIES` docs).
    pub intensity: f64,
    /// Whether cross-verification was armed.
    pub defense: bool,
    /// Confusion counts over all vetted steps of the attack phase.
    pub confusion: Confusion,
    /// Adversary/defense counters accumulated over the run.
    pub adversary: AdversaryReport,
    /// Peer replacements honest nodes performed.
    pub replacements: u64,
    /// Median relative embedding error of honest nodes after the run;
    /// `None` when zero honest pairs were sampled.
    pub accuracy_median: Option<f64>,
    /// 95th-percentile relative embedding error.
    pub accuracy_p95: Option<f64>,
    /// `accuracy_median` over the honest-world baseline median at the
    /// same scale — the accuracy-degradation factor. Filled in by
    /// [`adversary_sweep`]; `None` for standalone cells.
    pub accuracy_degradation: Option<f64>,
}

impl AdversaryCell {
    /// True-positive rate over the vetted attack-phase steps.
    pub fn tpr(&self) -> f64 {
        self.confusion.tpr()
    }

    /// False-positive rate over the vetted attack-phase steps.
    pub fn fpr(&self) -> f64 {
        self.confusion.fpr()
    }
}

/// A full adversary sweep: attack × intensity × defense.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdversarySweep {
    /// Honest-world baseline accuracy median at the same scale (the
    /// denominator of every cell's degradation factor).
    pub honest_accuracy_median: Option<f64>,
    /// All cells, ordered attack-major, then intensity, then defense
    /// off before on.
    pub cells: Vec<AdversaryCell>,
}

impl AdversarySweep {
    /// The cell at an exact operating point.
    pub fn cell(&self, attack: AttackKind, intensity: f64, defense: bool) -> Option<&AdversaryCell> {
        self.cells.iter().find(|c| {
            c.attack == attack && (c.intensity - intensity).abs() < 1e-9 && c.defense == defense
        })
    }

    /// Defense-off/defense-on cell pairs for one attack, sorted by
    /// intensity.
    pub fn pairs(&self, attack: AttackKind) -> Vec<(&AdversaryCell, &AdversaryCell)> {
        let mut intensities: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.attack == attack && !c.defense)
            .map(|c| c.intensity)
            .collect();
        intensities.sort_by(f64::total_cmp);
        intensities
            .into_iter()
            .filter_map(|i| Some((self.cell(attack, i, false)?, self.cell(attack, i, true)?)))
            .collect()
    }
}

fn scenario(scale: &Scale, malicious_fraction: f64) -> ScenarioConfig {
    ScenarioConfig {
        seed: scale.seed,
        topology: TopologyKind::small_planetlab(scale.planetlab_nodes),
        surveyors: SurveyorPlacement::Random { fraction: 0.08 },
        malicious_fraction,
        alpha: 0.05,
        detection: true,
        clean_cycles: scale.clean_passes,
        attack_cycles: scale.measure_passes,
        embed_against_surveyors_only: false,
    }
}

/// Run one operating point of the adversary sweep.
///
/// # Panics
/// Panics when `intensity` is outside its attack's meaningful range
/// (a fraction in `(0, 1]` for Sybil/eclipse, a positive rate for
/// slow drift).
pub fn adversary_cell(
    scale: &Scale,
    attack: AttackKind,
    intensity: f64,
    defense: bool,
) -> AdversaryCell {
    run_cell(scale, attack, intensity, defense, false).0
}

/// [`adversary_cell`] with an in-memory run journal attached: returns
/// the cell plus the journal's JSONL bytes. The obs layer's
/// bit-identity contract means the cell itself is unchanged.
pub fn adversary_cell_journaled(
    scale: &Scale,
    attack: AttackKind,
    intensity: f64,
    defense: bool,
) -> (AdversaryCell, Vec<u8>) {
    let (cell, journal) = run_cell(scale, attack, intensity, defense, true);
    (cell, journal.unwrap_or_default())
}

fn defense_config(scale: &Scale, on: bool) -> DefenseConfig {
    if on {
        DefenseConfig::cross_verification(scale.seed ^ DEFENSE_SALT)
    } else {
        DefenseConfig::off()
    }
}

fn run_cell(
    scale: &Scale,
    attack: AttackKind,
    intensity: f64,
    defense: bool,
    journaled: bool,
) -> (AdversaryCell, Option<Vec<u8>>) {
    match attack {
        AttackKind::Sybil => sybil_cell(scale, intensity, defense, journaled),
        AttackKind::Eclipse => eclipse_cell(scale, intensity, defense, journaled),
        AttackKind::SlowDrift => drift_cell(scale, intensity, defense, journaled),
    }
}

fn new_sim(scale: &Scale, malicious_fraction: f64, journaled: bool) -> VivaldiSimulation {
    let mut sim = VivaldiSimulation::new(scenario(scale, malicious_fraction));
    if journaled {
        sim.enable_journal(Journal::in_memory());
    }
    sim
}

/// Sybil swarm: `intensity` of the population are swarm identities, and
/// the same fraction of every honest normal node's candidate slots is
/// steered to them. The lies are blatant remote-cluster claims, so the
/// attack phase starts from a converged, armed system (the paper's
/// threat timing).
fn sybil_cell(
    scale: &Scale,
    intensity: f64,
    defense: bool,
    journaled: bool,
) -> (AdversaryCell, Option<Vec<u8>>) {
    assert!(
        intensity > 0.0 && intensity <= 1.0,
        "sybil takeover fraction must be in (0, 1], got {intensity}"
    );
    let mut sim = new_sim(scale, intensity, journaled);
    sim.run_clean(scale.clean_passes);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.arm_detection();
    sim.set_defense(defense_config(scale, defense));
    let median_rtt = sim.network().median_base_rtt();
    let swarm = SybilSwarmAttack::new(
        sim.malicious().iter().copied(),
        (median_rtt * 4.0).max(500.0),
        10.0,
        sim.coordinate(0).dims(),
        scale.seed ^ SYBIL_SALT,
    );
    sim.set_eclipse(EclipsePlan::new(
        sim.normal_nodes(),
        sim.malicious().iter().copied(),
        intensity,
        scale.seed ^ SYBIL_SALT,
    ));
    sim.run(scale.measure_passes, &swarm, false);
    harvest(sim, scale, AttackKind::Sybil, intensity, defense)
}

/// Eclipse: the registrar steers `intensity` of every honest normal
/// node's referrals to the attackers *from the first tick*, and the
/// attackers report the rigid translation throughout — so victims
/// converge into the translated frame before detection is armed, and
/// the armed detector inherits a filter primed on translated-but-
/// consistent history. That pre-positioning is the whole attack.
fn eclipse_cell(
    scale: &Scale,
    intensity: f64,
    defense: bool,
    journaled: bool,
) -> (AdversaryCell, Option<Vec<u8>>) {
    assert!(
        intensity > 0.0 && intensity <= 1.0,
        "eclipse steering strength must be in (0, 1], got {intensity}"
    );
    let mut sim = new_sim(scale, BASE_MALICIOUS_FRACTION, journaled);
    let offset_ms = (sim.network().median_base_rtt() * 2.0).max(150.0);
    let attack = EclipseAttack::new(
        sim.malicious().iter().copied(),
        sim.normal_nodes(),
        offset_ms,
        scale.seed ^ ECLIPSE_SALT,
    );
    sim.set_eclipse(EclipsePlan::new(
        sim.normal_nodes(),
        sim.malicious().iter().copied(),
        intensity,
        scale.seed ^ ECLIPSE_SALT,
    ));
    // The adversary is active during convergence: victims embed inside
    // the translated frame and their traces (which prime the armed
    // filters) already reflect it.
    sim.run(scale.clean_passes, &attack, true);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.arm_detection();
    sim.set_defense(defense_config(scale, defense));
    sim.run(scale.measure_passes, &attack, false);
    harvest(sim, scale, AttackKind::Eclipse, intensity, defense)
}

/// Slow drift: attackers drift their claims `intensity` ms per tick,
/// anchored at the attack phase's first tick so the opening sample is
/// honest. No steering — the attack needs nothing but patience.
fn drift_cell(
    scale: &Scale,
    intensity: f64,
    defense: bool,
    journaled: bool,
) -> (AdversaryCell, Option<Vec<u8>>) {
    assert!(intensity > 0.0, "drift rate must be positive, got {intensity}");
    let mut sim = new_sim(scale, BASE_MALICIOUS_FRACTION, journaled);
    sim.run_clean(scale.clean_passes);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.arm_detection();
    sim.set_defense(defense_config(scale, defense));
    let attack = SlowDriftAttack::new(
        sim.malicious().iter().copied(),
        intensity,
        scale.seed ^ DRIFT_SALT,
    )
    .starting_at(sim.ticks());
    sim.run(scale.measure_passes, &attack, false);
    harvest(sim, scale, AttackKind::SlowDrift, intensity, defense)
}

fn harvest(
    mut sim: VivaldiSimulation,
    scale: &Scale,
    attack: AttackKind,
    intensity: f64,
    defense: bool,
) -> (AdversaryCell, Option<Vec<u8>>) {
    let accuracy = sim.accuracy_report(scale.pairs_per_node);
    let report = sim.report();
    let journal = sim.finish_journal();
    let cell = AdversaryCell {
        attack,
        intensity,
        defense,
        confusion: report.confusion,
        adversary: report.adversary,
        replacements: report.replacements,
        accuracy_median: accuracy.ecdf().map(|e| e.median()),
        accuracy_p95: accuracy.ecdf().map(|e| e.quantile(0.95)),
        accuracy_degradation: None,
    };
    (cell, journal)
}

/// The honest-world baseline at this scale: same pipeline, no attack,
/// defense off. Its accuracy median is every cell's degradation
/// denominator.
pub fn honest_baseline_accuracy(scale: &Scale) -> Option<f64> {
    let mut sim = new_sim(scale, BASE_MALICIOUS_FRACTION, false);
    sim.run_clean(scale.clean_passes);
    sim.calibrate_surveyors(&EmConfig::default());
    sim.arm_detection();
    sim.run(scale.measure_passes, &ices_attack::HonestWorld, false);
    sim.accuracy_report(scale.pairs_per_node).ecdf().map(|e| e.median())
}

/// The full sweep: every attack kind × its intensity axis × defense
/// {off, on}, plus the honest baseline. Cells are independent
/// deterministic simulations and fan out over [`ices_par`].
pub fn adversary_sweep(scale: &Scale) -> AdversarySweep {
    let mut points: Vec<(AttackKind, f64, bool)> = Vec::new();
    for kind in AttackKind::ALL {
        for &intensity in kind.default_intensities() {
            points.push((kind, intensity, false));
            points.push((kind, intensity, true));
        }
    }
    adversary_sweep_over(scale, &points)
}

/// [`adversary_sweep`] over an explicit cell list (smoke runs shrink
/// the matrix; the harness uses the default one).
pub fn adversary_sweep_over(
    scale: &Scale,
    points: &[(AttackKind, f64, bool)],
) -> AdversarySweep {
    let honest = honest_baseline_accuracy(scale);
    let mut cells = ices_par::par_map(points, |_, &(kind, intensity, defense)| {
        adversary_cell(scale, kind, intensity, defense)
    });
    if let Some(h) = honest {
        if h > 0.0 {
            for cell in &mut cells {
                cell.accuracy_degradation = cell.accuracy_median.map(|m| m / h);
            }
        }
    }
    AdversarySweep {
        honest_accuracy_median: honest,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_drift_under_threshold_evades_the_detector() {
        // The headline negative result: at a drift rate far below the
        // innovation threshold, nearly every tampered sample is
        // accepted. TPR < 0.2 is the acceptance criterion — the
        // detector is *supposed* to lose here.
        let cell = adversary_cell(&Scale::test(), AttackKind::SlowDrift, 0.05, false);
        assert!(
            cell.confusion.positives() > 0,
            "the drift must actually inject lies"
        );
        assert!(cell.adversary.active_lies > 0);
        assert!(
            cell.adversary.drift_accumulated_ms > 0.0,
            "the drift gauge must move"
        );
        assert!(
            cell.tpr() < 0.2,
            "sub-threshold drift should evade the innovation test, tpr {}",
            cell.tpr()
        );
        assert!(cell.fpr() < 0.15, "evasion must not come from a broken detector");
    }

    #[test]
    fn eclipse_blinds_the_detector_until_cross_verification() {
        // Defense off: the victim converged inside the translated frame,
        // so innovations look healthy and TPR collapses. Defense on:
        // witnesses outside the eclipse contradict the claims and
        // detection recovers — the sweep's recovery criterion.
        let off = adversary_cell(&Scale::test(), AttackKind::Eclipse, 0.50, false);
        let on = adversary_cell(&Scale::test(), AttackKind::Eclipse, 0.50, true);
        assert!(off.confusion.positives() > 0, "lies must flow");
        assert!(on.adversary.cross_checks > 0, "defense must actually probe");
        assert!(on.adversary.rejections > 0, "defense must actually reject");
        assert!(
            on.tpr() > off.tpr() + 0.2,
            "cross-verification must measurably recover detection: off {} vs on {}",
            off.tpr(),
            on.tpr()
        );
    }

    #[test]
    fn sybil_swarm_is_blatant_to_the_innovation_test() {
        let cell = adversary_cell(&Scale::test(), AttackKind::Sybil, 0.25, false);
        assert!(cell.confusion.positives() > 0, "sybil lies must flow");
        assert!(
            cell.tpr() > 0.5,
            "remote-cluster claims should trip the detector, tpr {}",
            cell.tpr()
        );
        assert!(cell.fpr() < 0.15, "honest steps must not be collateral");
    }

    #[test]
    fn sweep_covers_the_matrix_and_fills_degradation() {
        // A shrunken matrix keeps the tier-1 budget: one intensity per
        // attack, both defense arms.
        let points = [
            (AttackKind::Sybil, 0.25, false),
            (AttackKind::Sybil, 0.25, true),
            (AttackKind::Eclipse, 0.50, false),
            (AttackKind::Eclipse, 0.50, true),
            (AttackKind::SlowDrift, 0.05, false),
            (AttackKind::SlowDrift, 0.05, true),
        ];
        let sweep = adversary_sweep_over(&Scale::test(), &points);
        assert_eq!(sweep.cells.len(), 6);
        let honest = sweep.honest_accuracy_median.expect("baseline samples pairs");
        assert!(honest > 0.0);
        for cell in &sweep.cells {
            assert!(
                cell.accuracy_degradation.is_some(),
                "degradation must be filled for {:?}",
                cell.attack
            );
        }
        let pairs = sweep.pairs(AttackKind::Eclipse);
        assert_eq!(pairs.len(), 1);
        let (off, on) = pairs[0];
        assert!(!off.defense && on.defense);
        // Defense-off cells never cross-check; armed cells always do.
        assert_eq!(off.adversary.cross_checks, 0);
        assert!(on.adversary.cross_checks > 0);
    }

    #[test]
    fn journaled_cell_matches_plain_cell() {
        let scale = Scale::test();
        let plain = adversary_cell(&scale, AttackKind::SlowDrift, 0.5, true);
        let (journaled, bytes) =
            adversary_cell_journaled(&scale, AttackKind::SlowDrift, 0.5, true);
        assert_eq!(plain, journaled, "journaling must not perturb the run");
        let text = String::from_utf8(bytes).expect("utf8 journal");
        let (run, errors) = ices_obs::report::parse(&text);
        assert!(errors.is_empty(), "journal must validate: {errors:?}");
        assert!(!run.ticks.is_empty(), "journal must carry tick deltas");
    }
}
