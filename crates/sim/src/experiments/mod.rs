//! One entry point per table/figure of the paper's evaluation.
//!
//! Every function takes a [`Scale`] so the same code runs at paper scale
//! (1740-node King matrix, 280-node PlanetLab, long phases) from the
//! benchmark harness and at toy scale from the test suite. Results are
//! plain serde-serializable structs; the `ices-bench` binaries print
//! them as the rows/series the paper plots.

pub mod ablations;
pub mod adversary;
pub mod chaos;
pub mod cross_prediction;
pub mod detection;
pub mod representativeness;
pub mod system_perf;
pub mod validation;

use serde::{Deserialize, Serialize};

/// Experiment sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Master seed.
    pub seed: u64,
    /// King-like simulation population (paper: 1740).
    pub king_nodes: usize,
    /// PlanetLab-like population (paper: 280).
    pub planetlab_nodes: usize,
    /// Clean Vivaldi passes (each node visits all 64 neighbors once per
    /// pass) before calibration.
    pub clean_passes: usize,
    /// Measurement/attack-phase Vivaldi passes.
    pub measure_passes: usize,
    /// Clean NPS positioning rounds before calibration.
    pub nps_clean_rounds: usize,
    /// Measurement/attack-phase NPS rounds.
    pub nps_measure_rounds: usize,
    /// Random partners sampled per node when evaluating accuracy.
    pub pairs_per_node: usize,
}

impl Scale {
    /// Paper-scale settings (minutes of CPU).
    pub fn paper() -> Self {
        Self {
            seed: 2007,
            king_nodes: 1740,
            planetlab_nodes: 280,
            clean_passes: 18,
            measure_passes: 10,
            nps_clean_rounds: 18,
            nps_measure_rounds: 10,
            pairs_per_node: 40,
        }
    }

    /// Reduced paper-shaped settings for the default bench harness run
    /// (tens of seconds): smaller King population, same structure.
    pub fn harness_default() -> Self {
        Self {
            seed: 2007,
            king_nodes: 600,
            planetlab_nodes: 280,
            clean_passes: 12,
            measure_passes: 8,
            nps_clean_rounds: 12,
            nps_measure_rounds: 8,
            pairs_per_node: 30,
        }
    }

    /// Tiny settings for unit/integration tests (sub-second per call).
    pub fn test() -> Self {
        Self {
            seed: 7,
            king_nodes: 70,
            planetlab_nodes: 60,
            clean_passes: 10,
            measure_passes: 6,
            nps_clean_rounds: 4,
            nps_measure_rounds: 3,
            pairs_per_node: 12,
        }
    }
}

/// A labelled CDF curve, as the paper's figures plot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Curve {
    /// Legend label.
    pub label: String,
    /// `(x, F(x))` points.
    pub points: Vec<(f64, f64)>,
}

impl Curve {
    /// Build a curve from samples by reading the ECDF at `k` evenly
    /// spaced *ranks* (quantiles), so heavy-tailed data keeps full
    /// resolution in the bulk instead of wasting the grid on outliers.
    ///
    /// # Panics
    /// Panics if `samples` is empty or `k < 2`.
    pub fn from_samples(label: impl Into<String>, samples: Vec<f64>, k: usize) -> Self {
        assert!(k >= 2, "curve needs at least 2 points");
        let ecdf = ices_stats::Ecdf::new(samples);
        let points = (0..k)
            .map(|i| {
                let q = i as f64 / (k - 1) as f64;
                (ecdf.quantile(q), q)
            })
            .collect();
        Self {
            label: label.into(),
            points,
        }
    }

    /// x-value at which the curve first reaches `q` (quantile read-off).
    /// An empty curve has no quantiles: returns NaN rather than panicking.
    pub fn quantile_x(&self, q: f64) -> f64 {
        self.points
            .iter()
            .find(|(_, f)| *f >= q)
            .or_else(|| self.points.last())
            .map(|(x, _)| *x)
            .unwrap_or(f64::NAN)
    }
}
