//! Offline replay of filters over collected traces.
//!
//! The Kalman filter consumes nothing but the scalar sequence of
//! measured relative errors, so validation experiments can collect the
//! traces once and replay them through any filter afterwards. This is
//! how the paper's §3.2–3.3 experiments evaluate *one node's* trace
//! under *another node's* (a Surveyor's) calibrated parameters.

use ices_core::kalman::{KalmanFilter, Prediction};
use ices_core::StateSpaceParams;

/// Run a filter with the given parameters over a trace, returning each
/// step's one-step-ahead prediction and innovation.
pub fn replay_filter(params: StateSpaceParams, trace: &[f64]) -> Vec<(Prediction, f64)> {
    KalmanFilter::run_trace(params, trace)
}

/// Prediction errors `|Δ̂_{n|n−1} − D_n|` of a filter over a trace — the
/// quantity Figs 2, 3, 6, 7 and 8 of the paper report.
pub fn prediction_errors(params: StateSpaceParams, trace: &[f64]) -> Vec<f64> {
    replay_filter(params, trace)
        .into_iter()
        .map(|(pred, innovation)| {
            debug_assert!((pred.predicted + innovation).is_finite());
            innovation.abs()
        })
        .collect()
}

/// Standardized innovations `η_n / √v_η,n` — the series whose
/// gaussianity Fig 1 and the Lilliefors census of §3.1 check.
pub fn standardized_innovations(params: StateSpaceParams, trace: &[f64]) -> Vec<f64> {
    replay_filter(params, trace)
        .into_iter()
        .map(|(pred, innovation)| innovation / pred.innovation_variance.sqrt())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ices_stats::rng::stream_rng;

    fn params() -> StateSpaceParams {
        StateSpaceParams {
            beta: 0.8,
            v_w: 0.004,
            v_u: 0.002,
            w_bar: 0.03,
            w0: 0.4,
            p0: 0.05,
        }
    }

    #[test]
    fn prediction_errors_match_innovations() {
        let p = params();
        let mut rng = stream_rng(1, 0);
        let trace = p.simulate(200, &mut rng);
        let errors = prediction_errors(p, &trace);
        let replayed = replay_filter(p, &trace);
        assert_eq!(errors.len(), trace.len());
        for (e, (_, innovation)) in errors.iter().zip(&replayed) {
            assert_eq!(*e, innovation.abs());
        }
    }

    #[test]
    fn own_model_predicts_well() {
        let p = params();
        let mut rng = stream_rng(2, 0);
        let trace = p.simulate(2000, &mut rng);
        let errors = prediction_errors(p, &trace);
        let mean: f64 = errors[100..].iter().sum::<f64>() / (errors.len() - 100) as f64;
        // Mean |innovation| for a gaussian is √(2v/π); v_η ≈ v_U + steady P.
        assert!(mean < 0.1, "mean prediction error {mean}");
    }

    #[test]
    fn mismatched_model_predicts_worse() {
        let p = params();
        let mut rng = stream_rng(3, 0);
        let trace = p.simulate(2000, &mut rng);
        let good: f64 = prediction_errors(p, &trace)[100..].iter().sum();
        let mut wrong = p;
        wrong.w_bar = 0.5; // predicts a stationary mean of 2.5 instead of 0.15
        let bad: f64 = prediction_errors(wrong, &trace)[100..].iter().sum();
        assert!(bad > 2.0 * good, "good {good} vs bad {bad}");
    }

    #[test]
    fn standardized_innovations_have_unit_scale() {
        let p = params();
        let mut rng = stream_rng(4, 0);
        let trace = p.simulate(5000, &mut rng);
        let z = standardized_innovations(p, &trace);
        let mut s = ices_stats::OnlineStats::new();
        for &x in &z[100..] {
            s.push(x);
        }
        assert!(s.mean().abs() < 0.06, "mean {}", s.mean());
        assert!((s.variance() - 1.0).abs() < 0.1, "var {}", s.variance());
    }
}
