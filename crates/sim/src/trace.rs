//! Bounded per-node trace storage with amortized O(1) appends.
//!
//! The drivers record one measured relative error per embedding step and
//! keep only the most recent [`TraceRing::cap`] samples. The seed
//! implementation used `Vec::remove(0)` once the cap was reached — an
//! O(cap) memmove on *every* step of a long run. `TraceRing` keeps a
//! start offset into a backing `Vec` instead and compacts only when the
//! dead prefix exceeds the capacity, so appends are amortized O(1) and
//! the buffer never holds more than `2 × cap` samples.
//!
//! The live window stays contiguous in memory, so the ring derefs to
//! `&[f64]` and every existing consumer (calibration, offline replay,
//! priming) keeps its slice-based signature.

use serde::{Deserialize, Serialize};

/// A bounded, contiguous ring of trace samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRing {
    /// Backing storage; the live window is `buf[start..]`.
    buf: Vec<f64>,
    /// Index of the oldest live sample in `buf`.
    start: usize,
    /// Maximum number of live samples retained.
    cap: usize,
}

impl TraceRing {
    /// An empty ring retaining at most `cap` samples.
    ///
    /// # Panics
    /// Panics if `cap` is zero.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "trace capacity must be positive");
        Self {
            buf: Vec::new(),
            start: 0,
            cap,
        }
    }

    /// The maximum number of samples retained.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Append a sample, evicting the oldest once `cap` is reached.
    pub fn push(&mut self, sample: f64) {
        self.buf.push(sample);
        if self.buf.len() - self.start > self.cap {
            self.start += 1;
            // Compact once the dead prefix is as large as the window
            // itself; each retained element is moved at most once per
            // `cap` appends, keeping appends amortized O(1).
            if self.start >= self.cap {
                self.buf.drain(..self.start);
                self.start = 0;
            }
        }
    }

    /// The live samples, oldest first.
    pub fn as_slice(&self) -> &[f64] {
        &self.buf[self.start..]
    }

    /// Drop all samples (capacity is kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
    }
}

impl std::ops::Deref for TraceRing {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl AsRef<[f64]> for TraceRing {
    fn as_ref(&self) -> &[f64] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_everything_under_cap() {
        let mut r = TraceRing::with_capacity(8);
        for i in 0..5 {
            r.push(i as f64);
        }
        assert_eq!(r.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn evicts_oldest_beyond_cap() {
        let mut r = TraceRing::with_capacity(4);
        for i in 0..10 {
            r.push(i as f64);
        }
        assert_eq!(r.as_slice(), &[6.0, 7.0, 8.0, 9.0]);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn matches_naive_ring_across_compactions() {
        let cap = 7;
        let mut ring = TraceRing::with_capacity(cap);
        let mut naive: Vec<f64> = Vec::new();
        for i in 0..1000 {
            let x = (i as f64 * 0.37).sin();
            ring.push(x);
            naive.push(x);
            if naive.len() > cap {
                naive.remove(0);
            }
            assert_eq!(ring.as_slice(), naive.as_slice());
        }
    }

    #[test]
    fn memory_stays_bounded() {
        let cap = 16;
        let mut r = TraceRing::with_capacity(cap);
        for i in 0..10_000 {
            r.push(i as f64);
            assert!(r.buf.len() <= 2 * cap, "backing buffer grew unbounded");
        }
    }

    #[test]
    fn derefs_to_slice() {
        let mut r = TraceRing::with_capacity(4);
        r.push(1.0);
        r.push(2.0);
        fn takes_slice(s: &[f64]) -> f64 {
            s.iter().sum()
        }
        assert_eq!(takes_slice(&r), 3.0);
        assert_eq!(r.last(), Some(&2.0));
    }

    #[test]
    fn clear_resets() {
        let mut r = TraceRing::with_capacity(3);
        for i in 0..9 {
            r.push(i as f64);
        }
        r.clear();
        assert!(r.is_empty());
        r.push(42.0);
        assert_eq!(r.as_slice(), &[42.0]);
    }

    #[test]
    fn serde_round_trips_live_window() {
        let mut r = TraceRing::with_capacity(3);
        for i in 0..8 {
            r.push(i as f64);
        }
        let json = serde_json::to_string(&r).expect("serialize");
        let back: TraceRing = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.as_slice(), r.as_slice());
        assert_eq!(back.cap(), r.cap());
    }
}
