//! Driver-side observability glue: one [`SimObs`] per simulation owns
//! the metrics [`Registry`], the optional run [`Journal`], and the
//! [`TickClock`], and is the **single source of truth** for every
//! counter the drivers used to keep in ad-hoc `DetectionReport` fields.
//! [`SimObs::detection_report`] derives the report structs from the
//! registry, so serialized outputs are unchanged while the journal gets
//! the same numbers for free.
//!
//! Determinism contract: every method here is called from the drivers'
//! **sequential** phases only (the node-order merge loop, `end_pass`,
//! `arm_detection`) — never from inside a `par_map_mut` closure — and
//! journal emission only *reads* registry state. Attaching a journal
//! therefore cannot perturb a single simulation output
//! (`crates/sim/tests/obs_invariance.rs` proves it), and with the
//! journal absent the added cost per event is one pre-resolved counter
//! bump.

use crate::metrics::{AdversaryReport, DetectionReport, FaultReport};
use ices_obs::{names, Clock, CounterId, GaugeId, HistogramId, Journal, Registry, Snapshot, TickClock};
use ices_stats::Confusion;

/// Pre-resolved instrument handles (registered once at construction).
#[derive(Debug, Clone, Copy)]
struct Ids {
    tp: CounterId,
    fp: CounterId,
    tn: CounterId,
    fn_: CounterId,
    replacements: CounterId,
    reprieves: CounterId,
    filter_refreshes: CounterId,
    probe_ok: CounterId,
    lost_probes: CounterId,
    timed_out_probes: CounterId,
    peer_down_probes: CounterId,
    retried_probes: CounterId,
    coasted_steps: CounterId,
    evictions: CounterId,
    node_down_ticks: CounterId,
    stale_filter_fallbacks: CounterId,
    deferred_arms: CounterId,
    late_arms: CounterId,
    active_lies: CounterId,
    clamped_rtts: CounterId,
    cross_checks: CounterId,
    defense_rejections: CounterId,
    drift_ms: GaugeId,
    mean_local_error: GaugeId,
    relative_error: HistogramId,
}

/// Per-simulation observability state. See the module docs.
#[derive(Debug)]
pub struct SimObs {
    registry: Registry,
    journal: Option<Journal>,
    clock: TickClock,
    /// Counter values at the last emitted tick line (delta base).
    last: Snapshot,
    ids: Ids,
}

impl SimObs {
    /// Fresh registry with every driver instrument pre-registered, no
    /// journal attached.
    pub fn new() -> Self {
        let mut registry = Registry::new();
        let ids = Ids {
            tp: registry.counter(names::DETECT_TP),
            fp: registry.counter(names::DETECT_FP),
            tn: registry.counter(names::DETECT_TN),
            fn_: registry.counter(names::DETECT_FN),
            replacements: registry.counter(names::REPLACEMENTS),
            reprieves: registry.counter(names::REPRIEVES),
            filter_refreshes: registry.counter(names::FILTER_REFRESHES),
            probe_ok: registry.counter(names::PROBE_OK),
            lost_probes: registry.counter(names::LOST_PROBES),
            timed_out_probes: registry.counter(names::TIMED_OUT_PROBES),
            peer_down_probes: registry.counter(names::PEER_DOWN_PROBES),
            retried_probes: registry.counter(names::RETRIED_PROBES),
            coasted_steps: registry.counter(names::COASTED_STEPS),
            evictions: registry.counter(names::EVICTIONS),
            node_down_ticks: registry.counter(names::NODE_DOWN_TICKS),
            stale_filter_fallbacks: registry.counter(names::STALE_FILTER_FALLBACKS),
            deferred_arms: registry.counter(names::DEFERRED_ARMS),
            late_arms: registry.counter(names::LATE_ARMS),
            active_lies: registry.counter(names::ATTACK_ACTIVE_LIES),
            clamped_rtts: registry.counter(names::ATTACK_CLAMPED_RTTS),
            cross_checks: registry.counter(names::DEFENSE_CROSS_CHECKS),
            defense_rejections: registry.counter(names::DEFENSE_REJECTIONS),
            drift_ms: registry.gauge(names::ATTACK_DRIFT_MS),
            mean_local_error: registry.gauge(names::MEAN_LOCAL_ERROR),
            relative_error: registry.histogram(names::RELATIVE_ERROR, names::RELATIVE_ERROR_BOUNDS),
        };
        let last = registry.snapshot();
        Self {
            registry,
            journal: None,
            clock: TickClock::new(),
            last,
            ids,
        }
    }

    /// Attach a journal and stamp its `meta` line. The delta base
    /// resets so the first tick line reports changes from now on.
    pub fn enable_journal(&mut self, mut journal: Journal, driver: &str, nodes: usize, seed: u64) {
        journal.meta(self.clock.now(), driver, nodes, seed);
        // Tier identity: stamped only when the fast tier is active, so
        // exact-tier journals are byte-identical to pre-tier journals.
        // audit:allow(FAST01): tier identity read for the journal stamp; no numeric dispatch
        if ices_par::fast_enabled() {
            journal.tier(self.clock.now(), "fast");
        }
        self.last = self.registry.snapshot();
        self.journal = Some(journal);
    }

    /// Whether a journal is attached (callers gate journal-only work —
    /// gauge computation, histogram feeds — on this).
    pub fn journal_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// Detach the journal, emitting a `summary` line first, and return
    /// its accumulated bytes (in-memory journals only; file journals
    /// flush to disk and return `None`).
    pub fn finish_journal(&mut self) -> Option<Vec<u8>> {
        let t = self.clock.now();
        let journal = self.journal.as_mut()?;
        let counters: Vec<(&'static str, u64)> = self.registry.counters().collect();
        let gauges: Vec<(&'static str, f64)> = self.registry.gauges().collect();
        journal.summary(t, &counters, &gauges);
        self.journal.take().and_then(Journal::finish)
    }

    /// Start of tick `tick`: advance the clock so discrete events
    /// emitted while the tick is processed carry its index. No journal
    /// output.
    #[inline]
    pub fn begin_tick(&mut self, tick: u64) {
        self.clock.set(tick);
    }

    /// Tick boundary: advance the clock to `tick` and, with a journal
    /// attached, emit the tick line (counter deltas + current gauges)
    /// and rebase the delta snapshot.
    pub fn tick_boundary(&mut self, tick: u64) {
        self.clock.set(tick);
        if let Some(journal) = &mut self.journal {
            let deltas = self.registry.delta(&self.last);
            let gauges: Vec<(&'static str, f64)> = self.registry.gauges().collect();
            journal.tick(tick, &deltas, &gauges);
            self.last = self.registry.snapshot();
        }
    }

    /// Journal a named phase span of `ticks` ticks ending now.
    pub fn phase(&mut self, name: &str, ticks: u64) {
        let t = self.clock.now();
        if let Some(journal) = &mut self.journal {
            journal.phase(t, name, ticks);
        }
    }

    /// One detector verdict: `malicious` is ground truth, `rejected`
    /// the test outcome (same contract as [`Confusion::record`]).
    #[inline]
    pub fn record_confusion(&mut self, malicious: bool, rejected: bool) {
        let id = match (malicious, rejected) {
            (true, true) => self.ids.tp,
            (true, false) => self.ids.fn_,
            (false, true) => self.ids.fp,
            (false, false) => self.ids.tn,
        };
        self.registry.inc(id);
    }

    /// A first-time-peer reprieve was granted.
    #[inline]
    pub fn reprieve(&mut self) {
        self.registry.inc(self.ids.reprieves);
    }

    /// Add `n` reprieves at once (NPS merges per-round vectors).
    #[inline]
    pub fn reprieves(&mut self, n: u64) {
        self.registry.add(self.ids.reprieves, n);
    }

    /// A rejected peer was replaced; journals the edge.
    pub fn replacement(&mut self, node: usize, peer: usize) {
        self.registry.inc(self.ids.replacements);
        let t = self.clock.now();
        if let Some(journal) = &mut self.journal {
            journal.pair_event(t, "reject", node, peer);
        }
    }

    /// A node refreshed its filter from a live Surveyor.
    pub fn filter_refresh(&mut self, node: usize) {
        self.registry.inc(self.ids.filter_refreshes);
        let t = self.clock.now();
        if let Some(journal) = &mut self.journal {
            journal.node_event(t, "refresh", node);
        }
    }

    /// A refresh found no live Surveyor; stale calibration kept.
    pub fn stale_filter_fallback(&mut self, node: usize) {
        self.registry.inc(self.ids.stale_filter_fallbacks);
        let t = self.clock.now();
        if let Some(journal) = &mut self.journal {
            journal.node_event(t, "stale_fallback", node);
        }
    }

    /// A persistently dead neighbor/reference point was evicted.
    pub fn eviction(&mut self, node: usize) {
        self.registry.inc(self.ids.evictions);
        let t = self.clock.now();
        if let Some(journal) = &mut self.journal {
            journal.node_event(t, "evict", node);
        }
    }

    /// Arming was deferred: the Surveyor registry sampled empty.
    pub fn defer_arm(&mut self, node: usize) {
        self.registry.inc(self.ids.deferred_arms);
        let t = self.clock.now();
        if let Some(journal) = &mut self.journal {
            journal.node_event(t, "defer_arm", node);
        }
    }

    /// A previously deferred node armed successfully.
    pub fn late_arm(&mut self, node: usize) {
        self.registry.inc(self.ids.late_arms);
        let t = self.clock.now();
        if let Some(journal) = &mut self.journal {
            journal.node_event(t, "arm", node);
        }
    }

    /// A probe completed and produced a measurement.
    #[inline]
    pub fn probe_ok(&mut self) {
        self.registry.inc(self.ids.probe_ok);
    }

    /// Add `n` completed probes at once.
    #[inline]
    pub fn probes_ok(&mut self, n: u64) {
        self.registry.add(self.ids.probe_ok, n);
    }

    /// A probe was lost after exhausting retries.
    #[inline]
    pub fn lost_probe(&mut self) {
        self.registry.inc(self.ids.lost_probes);
    }

    /// A probe timed out after exhausting retries.
    #[inline]
    pub fn timed_out_probe(&mut self) {
        self.registry.inc(self.ids.timed_out_probes);
    }

    /// A probe was skipped because the peer was crashed.
    #[inline]
    pub fn peer_down_probe(&mut self) {
        self.registry.inc(self.ids.peer_down_probes);
    }

    /// Add `n` probes that completed only after at least one retry.
    #[inline]
    pub fn retried_probes(&mut self, n: u64) {
        self.registry.add(self.ids.retried_probes, n);
    }

    /// Add `n` secured-node steps absorbed as detector coasts.
    #[inline]
    pub fn coasted_steps(&mut self, n: u64) {
        self.registry.add(self.ids.coasted_steps, n);
    }

    /// The node spent this tick crashed.
    #[inline]
    pub fn node_down_tick(&mut self) {
        self.registry.inc(self.ids.node_down_ticks);
    }

    /// Add `n` tampered samples the adversary injected this tick
    /// (ground truth at driver intake).
    #[inline]
    pub fn active_lies(&mut self, n: u64) {
        self.registry.add(self.ids.active_lies, n);
    }

    /// Add `n` tampered samples whose RTT the intake clamp raised.
    #[inline]
    pub fn clamped_rtts(&mut self, n: u64) {
        self.registry.add(self.ids.clamped_rtts, n);
    }

    /// Add `n` cross-verification witness probes.
    #[inline]
    pub fn cross_checks(&mut self, n: u64) {
        self.registry.add(self.ids.cross_checks, n);
    }

    /// The cross-verification defense rejected a sample; journals the
    /// edge like a detector rejection, under its own event name.
    pub fn defense_rejection(&mut self, node: usize, peer: usize) {
        self.registry.inc(self.ids.defense_rejections);
        let t = self.clock.now();
        if let Some(journal) = &mut self.journal {
            journal.pair_event(t, "defense_reject", node, peer);
        }
    }

    /// Set the accumulated slow-drift displacement gauge, in ms.
    #[inline]
    pub fn set_drift_ms(&mut self, x: f64) {
        self.registry.set(self.ids.drift_ms, x);
    }

    /// Feed one recorded relative error into the journal-only histogram.
    /// Call sites gate on [`SimObs::journal_enabled`] so the disabled
    /// path does no bucket work.
    #[inline]
    pub fn observe_relative_error(&mut self, x: f64) {
        self.registry.observe(self.ids.relative_error, x);
    }

    /// Set the journal-only mean-local-error gauge.
    #[inline]
    pub fn set_mean_local_error(&mut self, x: f64) {
        self.registry.set(self.ids.mean_local_error, x);
    }

    /// Derive the externally visible [`DetectionReport`] from the
    /// registry — the report struct is a *view* over the counters, so
    /// its serialized form is exactly what the ad-hoc plumbing
    /// produced.
    pub fn detection_report(&self) -> DetectionReport {
        let c = |id| self.registry.counter_value(id);
        DetectionReport {
            confusion: Confusion {
                true_positives: c(self.ids.tp),
                false_positives: c(self.ids.fp),
                true_negatives: c(self.ids.tn),
                false_negatives: c(self.ids.fn_),
            },
            replacements: c(self.ids.replacements),
            reprieves: c(self.ids.reprieves),
            filter_refreshes: c(self.ids.filter_refreshes),
            faults: FaultReport {
                lost_probes: c(self.ids.lost_probes),
                timed_out_probes: c(self.ids.timed_out_probes),
                peer_down_probes: c(self.ids.peer_down_probes),
                retried_probes: c(self.ids.retried_probes),
                coasted_steps: c(self.ids.coasted_steps),
                evictions: c(self.ids.evictions),
                node_down_ticks: c(self.ids.node_down_ticks),
                stale_filter_fallbacks: c(self.ids.stale_filter_fallbacks),
                deferred_arms: c(self.ids.deferred_arms),
                late_arms: c(self.ids.late_arms),
            },
            adversary: AdversaryReport {
                active_lies: c(self.ids.active_lies),
                clamped_rtts: c(self.ids.clamped_rtts),
                cross_checks: c(self.ids.cross_checks),
                rejections: c(self.ids.defense_rejections),
                // Gauges are NaN until first set; a never-drifting run
                // reports zero so report equality stays well-defined.
                drift_accumulated_ms: {
                    let drift = self.registry.gauge_value(self.ids.drift_ms);
                    if drift.is_finite() {
                        drift
                    } else {
                        0.0
                    }
                },
            },
        }
    }
}

impl Default for SimObs {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_derived_from_registry_counters() {
        let mut obs = SimObs::new();
        obs.record_confusion(true, true);
        obs.record_confusion(false, true);
        obs.record_confusion(false, false);
        obs.record_confusion(true, false);
        obs.reprieve();
        obs.replacement(3, 7);
        obs.filter_refresh(3);
        obs.lost_probe();
        obs.retried_probes(2);
        obs.coasted_steps(4);
        obs.defer_arm(9);
        obs.late_arm(9);
        obs.active_lies(3);
        obs.clamped_rtts(1);
        obs.cross_checks(6);
        obs.defense_rejection(3, 7);
        obs.set_drift_ms(12.5);
        let report = obs.detection_report();
        assert_eq!(report.confusion.true_positives, 1);
        assert_eq!(report.confusion.false_positives, 1);
        assert_eq!(report.confusion.true_negatives, 1);
        assert_eq!(report.confusion.false_negatives, 1);
        assert_eq!(report.replacements, 1);
        assert_eq!(report.reprieves, 1);
        assert_eq!(report.filter_refreshes, 1);
        assert_eq!(report.faults.lost_probes, 1);
        assert_eq!(report.faults.retried_probes, 2);
        assert_eq!(report.faults.coasted_steps, 4);
        assert_eq!(report.faults.deferred_arms, 1);
        assert_eq!(report.faults.late_arms, 1);
        assert_eq!(report.adversary.active_lies, 3);
        assert_eq!(report.adversary.clamped_rtts, 1);
        assert_eq!(report.adversary.cross_checks, 6);
        assert_eq!(report.adversary.rejections, 1);
        assert_eq!(report.adversary.drift_accumulated_ms, 12.5);
    }

    #[test]
    fn journal_records_ticks_and_events() {
        let mut obs = SimObs::new();
        obs.enable_journal(Journal::in_memory(), "vivaldi", 10, 42);
        obs.probe_ok();
        obs.probes_ok(2);
        obs.eviction(5);
        obs.tick_boundary(1);
        obs.phase("clean", 1);
        let bytes = obs.finish_journal().expect("in-memory journal returns bytes");
        let text = String::from_utf8(bytes).expect("journal is utf-8");
        let (run, errors) = ices_obs::report::parse(&text);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(run.ticks.len(), 1);
        assert_eq!(run.ticks[0].delta(names::PROBE_OK), 3);
        assert_eq!(run.event_count("evict"), 1);
        assert_eq!(run.phases.len(), 1);
        assert_eq!(
            run.summary_counters
                .iter()
                .find(|(n, _)| n == names::EVICTIONS)
                .map(|(_, v)| *v),
            Some(1)
        );
    }

    #[test]
    fn counters_identical_with_and_without_journal() {
        let drive = |journal: bool| -> DetectionReport {
            let mut obs = SimObs::new();
            if journal {
                obs.enable_journal(Journal::in_memory(), "x", 1, 0);
            }
            obs.record_confusion(false, false);
            obs.lost_probe();
            obs.tick_boundary(1);
            obs.detection_report()
        };
        assert_eq!(drive(false), drive(true));
    }
}
