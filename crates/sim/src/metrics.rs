//! Metric containers the experiments fill in.

use ices_stats::{Confusion, Ecdf};
use serde::{Deserialize, Serialize};

/// Fault-path bookkeeping for one run. All counters stay zero with an
/// empty [`ices_netsim::FaultPlan`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Probes lost in the network (after exhausting retries).
    pub lost_probes: u64,
    /// Probes that timed out (after exhausting retries).
    pub timed_out_probes: u64,
    /// Probes skipped because the peer was crashed for the tick.
    pub peer_down_probes: u64,
    /// Probes that completed only after at least one retry.
    pub retried_probes: u64,
    /// Secured-node steps absorbed as detector coasts (missing sample).
    pub coasted_steps: u64,
    /// Persistently dead neighbors/reference points evicted.
    pub evictions: u64,
    /// Node-ticks spent crashed (the node skipped its own step).
    pub node_down_ticks: u64,
    /// Filter refreshes that found no live Surveyor and kept the stale
    /// calibration instead.
    pub stale_filter_fallbacks: u64,
    /// Nodes whose detection arming was deferred because the Surveyor
    /// registry produced an empty candidate draw (total outage at arm
    /// time); each deferral is retried on the following ticks.
    pub deferred_arms: u64,
    /// Deferred nodes that successfully armed on a later tick once a
    /// Surveyor came back.
    pub late_arms: u64,
}

impl FaultReport {
    /// Merge another fault report into this one.
    pub fn merge(&mut self, other: &FaultReport) {
        self.lost_probes += other.lost_probes;
        self.timed_out_probes += other.timed_out_probes;
        self.peer_down_probes += other.peer_down_probes;
        self.retried_probes += other.retried_probes;
        self.coasted_steps += other.coasted_steps;
        self.evictions += other.evictions;
        self.node_down_ticks += other.node_down_ticks;
        self.stale_filter_fallbacks += other.stale_filter_fallbacks;
        self.deferred_arms += other.deferred_arms;
        self.late_arms += other.late_arms;
    }

    /// Probes that produced no measurement, of any failure kind.
    pub fn total_failed_probes(&self) -> u64 {
        self.lost_probes + self.timed_out_probes + self.peer_down_probes
    }
}

/// Adversary- and defense-path bookkeeping for one run. All counters
/// stay zero under [`ices_attack::HonestWorld`] with the defense off,
/// and live in their own report — *not* in [`FaultReport`] — so
/// fault-only runs keep asserting a default fault block.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AdversaryReport {
    /// Tampered samples the adversary actually injected (ground truth,
    /// counted at driver intake before any vetting).
    pub active_lies: u64,
    /// Tampered samples whose RTT the intake clamp raised back up to
    /// the measured value (RTT-deflation invariant violations).
    pub clamped_rtts: u64,
    /// Cross-verification witness probes issued by the defense.
    pub cross_checks: u64,
    /// Samples the defense rejected on geometric inconsistency (before
    /// they reached the innovation test).
    pub rejections: u64,
    /// Final value of the slow-drift displacement gauge, in ms (zero
    /// for non-drifting adversaries).
    pub drift_accumulated_ms: f64,
}

impl AdversaryReport {
    /// Merge another adversary report into this one. The drift gauge
    /// takes the maximum — it is a level, not a flow.
    pub fn merge(&mut self, other: &AdversaryReport) {
        self.active_lies += other.active_lies;
        self.clamped_rtts += other.clamped_rtts;
        self.cross_checks += other.cross_checks;
        self.rejections += other.rejections;
        self.drift_accumulated_ms = self.drift_accumulated_ms.max(other.drift_accumulated_ms);
    }
}

/// Detection-quality report for one run (§5.1 metrics).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DetectionReport {
    /// Aggregate confusion over all vetted embedding steps of honest
    /// nodes.
    pub confusion: Confusion,
    /// Number of peer replacements honest nodes performed.
    pub replacements: u64,
    /// Number of reprieves granted to first-time peers.
    pub reprieves: u64,
    /// Number of filter refreshes (half-round-rejected rule, or sample
    /// starvation under faults).
    pub filter_refreshes: u64,
    /// Fault-injection bookkeeping (all zero on a clean network).
    pub faults: FaultReport,
    /// Adversary/defense bookkeeping (all zero in honest defense-off
    /// runs).
    pub adversary: AdversaryReport,
}

impl DetectionReport {
    /// Merge another report into this one.
    pub fn merge(&mut self, other: &DetectionReport) {
        self.confusion.merge(&other.confusion);
        self.replacements += other.replacements;
        self.reprieves += other.reprieves;
        self.filter_refreshes += other.filter_refreshes;
        self.faults.merge(&other.faults);
        self.adversary.merge(&other.adversary);
    }
}

/// System-accuracy report: how well final coordinates predict base RTTs
/// between honest nodes (the quantity Figs 13/15 plot CDFs of).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Relative estimation errors over sampled honest pairs.
    pub relative_errors: Vec<f64>,
    /// Per-node 95th percentile of relative errors (Figs 4/5 plot the
    /// CDF of these).
    pub p95_per_node: Vec<f64>,
}

impl AccuracyReport {
    /// Whether the run sampled zero honest pairs (heavy loss/churn can
    /// starve the sample entirely — e.g. a full Surveyor outage with
    /// every probe dropped).
    pub fn is_empty(&self) -> bool {
        self.relative_errors.is_empty()
    }

    /// Number of sampled honest pairs.
    pub fn len(&self) -> usize {
        self.relative_errors.len()
    }

    /// ECDF over all sampled relative errors, or `None` when the run
    /// sampled zero honest pairs.
    pub fn ecdf(&self) -> Option<Ecdf> {
        (!self.relative_errors.is_empty()).then(|| Ecdf::new(self.relative_errors.clone()))
    }

    /// ECDF over the per-node 95th percentiles, or `None` when no node
    /// accumulated any samples.
    pub fn p95_ecdf(&self) -> Option<Ecdf> {
        (!self.p95_per_node.is_empty()).then(|| Ecdf::new(self.p95_per_node.clone()))
    }

    /// Median relative error — the headline accuracy number.
    ///
    /// Returns `NaN` for an empty report (zero sampled pairs), so
    /// callers that only ever see populated reports keep their plain
    /// `f64` flow; degraded-run consumers should check
    /// [`AccuracyReport::is_empty`] first.
    pub fn median(&self) -> f64 {
        self.ecdf().map(|e| e.median()).unwrap_or(f64::NAN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_report_merges() {
        let mut a = DetectionReport::default();
        a.confusion.record(true, true);
        a.replacements = 2;
        a.faults.lost_probes = 4;
        let mut b = DetectionReport::default();
        b.confusion.record(false, false);
        b.reprieves = 3;
        b.faults.lost_probes = 1;
        b.faults.evictions = 2;
        a.merge(&b);
        assert_eq!(a.confusion.total(), 2);
        assert_eq!(a.replacements, 2);
        assert_eq!(a.reprieves, 3);
        assert_eq!(a.faults.lost_probes, 5);
        assert_eq!(a.faults.evictions, 2);
    }

    #[test]
    fn fault_report_totals_failures() {
        let f = FaultReport {
            lost_probes: 3,
            timed_out_probes: 2,
            peer_down_probes: 5,
            ..FaultReport::default()
        };
        assert_eq!(f.total_failed_probes(), 10);
    }

    #[test]
    fn accuracy_report_statistics() {
        let r = AccuracyReport {
            relative_errors: vec![0.1, 0.2, 0.3, 0.4],
            p95_per_node: vec![0.35, 0.45],
        };
        assert_eq!(r.median(), 0.2);
        assert_eq!(r.p95_ecdf().expect("non-empty").len(), 2);
    }

    /// Regression: a degraded run that samples zero honest pairs must
    /// yield an inert report, not a panic (`Ecdf::new` asserts on
    /// empty input).
    #[test]
    fn empty_accuracy_report_is_safe() {
        let r = AccuracyReport {
            relative_errors: Vec::new(),
            p95_per_node: Vec::new(),
        };
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(r.ecdf().is_none());
        assert!(r.p95_ecdf().is_none());
        assert!(r.median().is_nan());
    }

    #[test]
    fn adversary_report_merges_with_drift_as_a_level() {
        let mut a = AdversaryReport {
            active_lies: 10,
            clamped_rtts: 1,
            cross_checks: 6,
            rejections: 2,
            drift_accumulated_ms: 40.0,
        };
        let b = AdversaryReport {
            active_lies: 5,
            clamped_rtts: 0,
            cross_checks: 3,
            rejections: 1,
            drift_accumulated_ms: 25.0,
        };
        a.merge(&b);
        assert_eq!(a.active_lies, 15);
        assert_eq!(a.clamped_rtts, 1);
        assert_eq!(a.cross_checks, 9);
        assert_eq!(a.rejections, 3);
        assert_eq!(a.drift_accumulated_ms, 40.0, "gauge merges as max");
    }

    #[test]
    fn fault_report_merges_arm_deferral_counters() {
        let mut a = FaultReport {
            deferred_arms: 2,
            late_arms: 1,
            ..FaultReport::default()
        };
        let b = FaultReport {
            deferred_arms: 3,
            late_arms: 2,
            ..FaultReport::default()
        };
        a.merge(&b);
        assert_eq!(a.deferred_arms, 5);
        assert_eq!(a.late_arms, 3);
    }
}
