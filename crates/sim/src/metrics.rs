//! Metric containers the experiments fill in.

use ices_stats::{Confusion, Ecdf};
use serde::{Deserialize, Serialize};

/// Detection-quality report for one run (§5.1 metrics).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DetectionReport {
    /// Aggregate confusion over all vetted embedding steps of honest
    /// nodes.
    pub confusion: Confusion,
    /// Number of peer replacements honest nodes performed.
    pub replacements: u64,
    /// Number of reprieves granted to first-time peers.
    pub reprieves: u64,
    /// Number of filter refreshes (half-round-rejected rule).
    pub filter_refreshes: u64,
}

impl DetectionReport {
    /// Merge another report into this one.
    pub fn merge(&mut self, other: &DetectionReport) {
        self.confusion.merge(&other.confusion);
        self.replacements += other.replacements;
        self.reprieves += other.reprieves;
        self.filter_refreshes += other.filter_refreshes;
    }
}

/// System-accuracy report: how well final coordinates predict base RTTs
/// between honest nodes (the quantity Figs 13/15 plot CDFs of).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Relative estimation errors over sampled honest pairs.
    pub relative_errors: Vec<f64>,
    /// Per-node 95th percentile of relative errors (Figs 4/5 plot the
    /// CDF of these).
    pub p95_per_node: Vec<f64>,
}

impl AccuracyReport {
    /// ECDF over all sampled relative errors.
    ///
    /// # Panics
    /// Panics if the report is empty.
    pub fn ecdf(&self) -> Ecdf {
        Ecdf::new(self.relative_errors.clone())
    }

    /// ECDF over the per-node 95th percentiles.
    ///
    /// # Panics
    /// Panics if the report is empty.
    pub fn p95_ecdf(&self) -> Ecdf {
        Ecdf::new(self.p95_per_node.clone())
    }

    /// Median relative error — the headline accuracy number.
    pub fn median(&self) -> f64 {
        self.ecdf().median()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_report_merges() {
        let mut a = DetectionReport::default();
        a.confusion.record(true, true);
        a.replacements = 2;
        let mut b = DetectionReport::default();
        b.confusion.record(false, false);
        b.reprieves = 3;
        a.merge(&b);
        assert_eq!(a.confusion.total(), 2);
        assert_eq!(a.replacements, 2);
        assert_eq!(a.reprieves, 3);
    }

    #[test]
    fn accuracy_report_statistics() {
        let r = AccuracyReport {
            relative_errors: vec![0.1, 0.2, 0.3, 0.4],
            p95_per_node: vec![0.35, 0.45],
        };
        assert_eq!(r.median(), 0.2);
        assert_eq!(r.p95_ecdf().len(), 2);
    }
}
