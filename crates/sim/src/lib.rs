//! Experiment harness for the SIGCOMM'07 evaluation.
//!
//! Ties the workspace together: builds a synthetic topology
//! (`ices-netsim`), runs a full Vivaldi or NPS system over it
//! (`ices-vivaldi` / `ices-nps`), deploys Surveyors and the detection
//! protocol (`ices-core`), unleashes an adversary (`ices-attack`), and
//! collects the metrics every table and figure of the paper reports.
//!
//! The drivers are deliberately phase-structured, mirroring the paper's
//! method:
//!
//! 1. **Clean embedding** — the system converges without malicious nodes;
//!    every node's measured-relative-error trace is recorded.
//! 2. **Calibration** — Surveyors (or, for the §3.2 validation, every
//!    node) run EM over their traces to obtain filter parameters.
//! 3. **Re-embedding / attack** — nodes forget their coordinates and
//!    rejoin (validation experiments), or an adversary activates
//!    (detection experiments) while normal nodes vet every embedding
//!    step through the Kalman innovation test.
//!
//! Offline replay: because the filter consumes only the scalar trace of
//! measured relative errors, collected traces can be replayed through
//! any number of filters after the fact — this is how the
//! (node × Surveyor) prediction-error matrices of Figs 6–8 are produced
//! without rerunning the system.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod metrics;
pub mod nps_driver;
pub mod obs;
pub mod replay;
pub mod scenario;
pub mod snapshot;
pub mod trace;
pub mod vivaldi_driver;

pub use metrics::{AccuracyReport, DetectionReport};
pub use nps_driver::NpsSimulation;
pub use obs::SimObs;
pub use replay::{prediction_errors, replay_filter};
pub use scenario::{ScenarioConfig, SurveyorPlacement, TopologyKind};
pub use vivaldi_driver::VivaldiSimulation;
