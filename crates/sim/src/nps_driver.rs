//! Full-system NPS simulation driver.
//!
//! Runs the paper's NPS setup: the 4-layer hierarchy with 20 permanent
//! landmarks, per-round downhill-simplex positioning against reference
//! points, NPS's built-in sensitivity-4 filter, Surveyors (all landmarks
//! plus promoted reference points) embedding against trusted nodes only,
//! and the colluding reference-point adversary.
//!
//! ## The two-phase round loop
//!
//! Each positioning round processes the hierarchy layer by layer (so
//! reference points are positioned before the nodes that depend on
//! them), and within a layer runs in two phases: an immutable snapshot
//! of every node's `(coordinate, local error)`, then a parallel sweep
//! ([`ices_par::par_for_indices`]) in which each member node probes all
//! its reference points, consults the adversary, and repositions itself.
//! A node's reference points live in strictly lower layers, which this
//! layer's members never mutate — so the snapshot equals the live state
//! and the fan-out changes nothing about the result. Probe nonces are
//! derived from `(round, node, probe index)`; the per-node effects
//! (traces, confusion counts, RP replacements) merge in node order, so
//! the round is bit-for-bit reproducible at any worker count.

use crate::metrics::{AccuracyReport, DetectionReport};
use crate::obs::SimObs;
use crate::scenario::{ScenarioConfig, TopologyKind};
use crate::snapshot::CoordSnapshot;
use crate::trace::TraceRing;
use ices_obs::Journal;
use ices_attack::Adversary;
use ices_coord::{Coordinate, Embedding, PeerSample};
use ices_core::{
    calibrate, vet_sequences, DetectorBank, EmConfig, SecureNode, SecureStep, SecurityConfig,
    StateSpaceParams, SurveyorInfo, SurveyorRegistry, VetEvent,
};
use ices_netsim::{FaultPlan, Network, ProbeOutcome};
use ices_nps::{Hierarchy, NpsConfig, NpsNode, Role};
use ices_stats::rng::{derive, derive2, SimRng};
use ices_stats::sample::sample_indices;
use rand::RngExt;
use std::collections::{BTreeMap, BTreeSet};
use ices_stats::streams;

/// How many random Surveyors a joining node probes before adopting the
/// closest one's filter.
const JOIN_PROBE_CANDIDATES: usize = 8;

/// Cap on per-node trace length.
const TRACE_CAP: usize = 8192;

/// Recent clean samples used to prime a freshly adopted filter.
const PRIME_SAMPLES: usize = 64;

/// Extra probe attempts after a lost/timed-out probe within one round
/// (bounded deterministic backoff, as in the Vivaldi driver).
const PROBE_RETRIES: u32 = 2;

/// Consecutive failed rounds toward one reference point before the node
/// gives up and evicts it as dead.
pub const DEAD_RP_EVICT_FAILURES: u32 = 3;

#[allow(clippy::large_enum_variant)] // Plain is the common case; boxing it would cost an alloc per node
enum Participant {
    Plain(NpsNode),
    Secured(Box<SecureNode<NpsNode>>),
}

impl Participant {
    fn coordinate(&self) -> &Coordinate {
        match self {
            Participant::Plain(n) => n.coordinate(),
            Participant::Secured(s) => s.inner().coordinate(),
        }
    }

    fn local_error(&self) -> f64 {
        match self {
            Participant::Plain(n) => n.local_error(),
            Participant::Secured(s) => s.inner().local_error(),
        }
    }
}

/// Why a probe produced no measurement (terminal, after retries).
#[derive(Clone, Copy)]
enum ProbeFate {
    Lost,
    TimedOut,
    PeerDown,
}

/// What one node's positioning round asks the driver to apply globally.
/// Collected from the parallel sweep and merged in node order.
#[derive(Default)]
struct RoundEffect {
    /// Measured relative errors to append to the node's trace, in probe
    /// order.
    recorded: Vec<f64>,
    /// `(label_malicious, flagged)` pairs for the confusion matrix, in
    /// probe order.
    vetted: Vec<(bool, bool)>,
    /// Steps that hit the first-time-peer reprieve.
    reprieves: u64,
    /// Reference points the detection test rejected; replace each.
    rejected_rps: Vec<usize>,
    /// The node refreshed its filter at the round boundary.
    refreshed_filter: bool,
    /// The node was crashed for this round (churn) and did nothing.
    self_down: bool,
    /// Probes that completed only after at least one retry.
    retried_probes: u64,
    /// Reference points whose probe completed: clear failure counts.
    ok_rps: Vec<usize>,
    /// Reference points whose probe failed after all retries.
    failed_rps: Vec<(usize, ProbeFate)>,
    /// Missing samples a secured node absorbed as detector coasts.
    coasted_steps: u64,
    /// The node wanted a filter refresh but every Surveyor was down;
    /// it kept its stale calibration.
    stale_fallback: bool,
    /// Tampered samples the adversary injected (ground truth).
    lied_steps: u64,
    /// Tampered samples whose deflated RTT the intake clamp raised.
    clamped_rtts: u64,
    /// Detector events a secured node deferred to the merge-phase
    /// batched sweep, in probe order: `(event, label_malicious)`, with
    /// `VetEvent::Missing` (label unused) holding a coast's position so
    /// the per-node op order matches the scalar interleaving exactly.
    pending: Vec<(VetEvent, bool)>,
}

/// The NPS system simulation.
pub struct NpsSimulation {
    config: ScenarioConfig,
    nps: NpsConfig,
    security: SecurityConfig,
    network: Network,
    hierarchy: Hierarchy,
    /// Effective per-node reference-point sets (Surveyors' sets are
    /// restricted to trusted nodes).
    reference_points: Vec<Vec<usize>>,
    surveyors: BTreeSet<usize>,
    malicious: BTreeSet<usize>,
    participants: Vec<Participant>,
    registry: SurveyorRegistry,
    traces: Vec<TraceRing>,
    /// Count of completed positioning rounds; probe nonces are derived
    /// from `(round, node, probe index)`, independent of execution order.
    round: u64,
    /// Metrics registry + optional run journal; the single source of
    /// truth the [`DetectionReport`] is derived from.
    obs: SimObs,
    rng: SimRng,
    /// Reusable SoA snapshot buffer for each layer round's phase 1 —
    /// flat arrays refilled in place, no steady-state allocation.
    snapshot: CoordSnapshot,
    /// Per-node consecutive probe-failure counts toward each reference
    /// point (fault mode only; empty maps on a clean network).
    probe_failures: Vec<BTreeMap<usize, u32>>,
    /// Nodes whose [`NpsSimulation::arm_detection`] found no live
    /// Surveyor candidate (total outage); retried each round.
    pending_arms: BTreeSet<usize>,
    /// Reusable SoA execution engine for the merge-phase detection
    /// sweep. Transient per layer round: state is gathered from and
    /// scattered back to each node's scalar [`ices_core::Detector`],
    /// which stays the source of truth.
    bank: DetectorBank,
}

/// The probe nonce for `node`'s `k`-th reference-point probe in `round`
/// — a pure function of the triple, so concurrent workers need no
/// shared counter.
fn probe_nonce(round: u64, node: usize, k: usize) -> u64 {
    derive2(derive(streams::NPSP, round), node as u64, k as u64)
}

/// The probe nonce for retry `attempt` of probe `k`. Attempt 0 is
/// exactly [`probe_nonce`] — the clean-network nonce — so an empty fault
/// plan reproduces seed behavior bit for bit; later attempts draw from a
/// disjoint retry stream.
fn retry_nonce(round: u64, node: usize, k: usize, attempt: u32) -> u64 {
    if attempt == 0 {
        probe_nonce(round, node, k)
    } else {
        derive2(
            derive(derive(streams::NPSR, attempt as u64), round),
            node as u64,
            k as u64,
        )
    }
}

impl NpsSimulation {
    /// Build the system with the paper's NPS configuration.
    pub fn new(config: ScenarioConfig) -> Self {
        Self::with_nps_config(config, NpsConfig::paper_default())
    }

    /// Build with explicit NPS parameters (tests use small 2-d spaces).
    ///
    /// # Panics
    /// Panics on invalid configuration or a population too small for the
    /// hierarchy.
    pub fn with_nps_config(config: ScenarioConfig, nps: NpsConfig) -> Self {
        config.validate();
        nps.validate();
        let seed = config.seed;
        let network = match &config.topology {
            TopologyKind::King(kc) => Network::from_king(kc.generate(seed), seed),
            TopologyKind::StreamedKing(kc) => Network::from_king_streamed(kc.clone(), seed),
            TopologyKind::PlanetLab(pc) => Network::from_planetlab(pc.generate(seed), seed),
        };
        let n = network.len();
        let hierarchy = Hierarchy::build(n, &nps, seed);
        let mut rng = SimRng::from_stream(seed, streams::NPSD,0); // "NPSD"

        // Surveyors: every landmark, plus promoted reference points until
        // the configured fraction is met.
        let mut surveyors: BTreeSet<usize> = hierarchy.landmarks().into_iter().collect();
        let want = ((n as f64) * config.surveyors.fraction()).round() as usize;
        let rp_pool: Vec<usize> = (0..n)
            .filter(|&i| hierarchy.role[i] == Role::ReferencePoint)
            .collect();
        if want > surveyors.len() && !rp_pool.is_empty() {
            let extra = (want - surveyors.len()).min(rp_pool.len());
            for idx in sample_indices(&mut rng, rp_pool.len(), extra) {
                surveyors.insert(rp_pool[idx]);
            }
        }

        // Malicious among the rest. The paper's conspirators "behave in a
        // correct and honest way until enough of them become reference
        // points" — their campaign targets the *activation threshold*
        // (5 malicious RPs per layer), not a takeover of every serving
        // slot: place up to threshold+1 malicious nodes into each middle
        // layer's RP slots (budget permitting) and the rest among
        // regular nodes, as in the paper's evaluation.
        let civilians_total = (0..n).filter(|i| !surveyors.contains(i)).count();
        let mal_count =
            (((n as f64) * config.malicious_fraction).round() as usize).min(civilians_total);
        let infiltration_per_layer = ices_attack::nps_collusion::DEFAULT_ACTIVATION_THRESHOLD + 1;
        let mut malicious: BTreeSet<usize> = BTreeSet::new();
        let mut budget = mal_count;
        for l in 1..nps.layers - 1 {
            if budget == 0 {
                break;
            }
            let rp_civilians: Vec<usize> = (0..n)
                .filter(|&i| {
                    !surveyors.contains(&i)
                        && hierarchy.layer[i] == l
                        && hierarchy.role[i] == Role::ReferencePoint
                })
                .collect();
            let take = infiltration_per_layer.min(rp_civilians.len()).min(budget);
            for idx in sample_indices(&mut rng, rp_civilians.len(), take) {
                malicious.insert(rp_civilians[idx]);
            }
            budget -= take;
        }
        let other_civilians: Vec<usize> = (0..n)
            .filter(|i| !surveyors.contains(i) && !malicious.contains(i))
            .collect();
        for idx in sample_indices(
            &mut rng,
            other_civilians.len(),
            budget.min(other_civilians.len()),
        ) {
            malicious.insert(other_civilians[idx]);
        }

        // Effective RP sets: Surveyors position against trusted nodes
        // only — Surveyor reference points from the layer above, topped
        // up with landmarks when short (landmarks are the root of trust).
        let landmarks = hierarchy.landmarks();
        let mut reference_points = hierarchy.reference_points.clone();
        for &s in &surveyors {
            if hierarchy.role[s] == Role::Landmark {
                continue; // already landmarks-only
            }
            let layer = hierarchy.layer[s];
            let mut trusted: Vec<usize> = (0..n)
                .filter(|&i| surveyors.contains(&i) && i != s && hierarchy.layer[i] == layer - 1)
                .collect();
            if trusted.len() < nps.min_rps {
                for &l in &landmarks {
                    if l != s && !trusted.contains(&l) {
                        trusted.push(l);
                    }
                }
            }
            trusted.truncate(nps.rps_per_node);
            reference_points[s] = trusted;
        }

        // §6 variant: normal nodes also position exclusively against
        // Surveyors (a GNP/NPS hybrid, trading accuracy for immunity).
        if config.embed_against_surveyors_only {
            #[allow(clippy::needless_range_loop)] // node is an id, not just an index
            for node in 0..n {
                if surveyors.contains(&node) {
                    continue;
                }
                let layer = hierarchy.layer[node];
                let mut trusted: Vec<usize> = (0..n)
                    .filter(|&i| surveyors.contains(&i) && hierarchy.layer[i] + 1 == layer)
                    .collect();
                if trusted.len() < nps.min_rps {
                    for &l in &landmarks {
                        if !trusted.contains(&l) {
                            trusted.push(l);
                        }
                    }
                }
                trusted.truncate(nps.rps_per_node);
                reference_points[node] = trusted;
            }
        }

        let participants = (0..n)
            .map(|id| Participant::Plain(NpsNode::new(id, nps, seed)))
            .collect();

        Self {
            security: SecurityConfig {
                alpha: config.alpha,
                ..SecurityConfig::paper_default()
            },
            config,
            nps,
            network,
            hierarchy,
            reference_points,
            surveyors,
            malicious,
            participants,
            registry: SurveyorRegistry::new(),
            traces: vec![TraceRing::with_capacity(TRACE_CAP); n],
            round: 0,
            obs: SimObs::new(),
            rng,
            snapshot: CoordSnapshot::new(),
            probe_failures: vec![BTreeMap::new(); n],
            pending_arms: BTreeSet::new(),
            bank: DetectorBank::new(),
        }
    }

    /// Attach a fault plan to the underlying network. The default plan
    /// is empty; see [`ices_netsim::FaultPlan`].
    ///
    /// # Panics
    /// Panics if the plan is invalid.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.network.set_fault_plan(plan);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.participants.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        self.participants.is_empty()
    }

    /// The simulated network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The positioning hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Surveyor ids (landmarks plus promoted reference points).
    pub fn surveyors(&self) -> &BTreeSet<usize> {
        &self.surveyors
    }

    /// Malicious node ids.
    pub fn malicious(&self) -> &BTreeSet<usize> {
        &self.malicious
    }

    /// Honest non-Surveyor node ids.
    pub fn normal_nodes(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|i| !self.surveyors.contains(i) && !self.malicious.contains(i))
            .collect()
    }

    /// Per-node traces of measured relative errors. Each [`TraceRing`]
    /// derefs to a contiguous `&[f64]`, oldest first.
    pub fn traces(&self) -> &[TraceRing] {
        &self.traces
    }

    /// Clear collected traces.
    pub fn clear_traces(&mut self) {
        for t in &mut self.traces {
            t.clear();
        }
    }

    /// The Surveyor registry.
    pub fn registry(&self) -> &SurveyorRegistry {
        &self.registry
    }

    /// A node's current effective reference-point set.
    pub fn reference_points_of(&self, node: usize) -> &[usize] {
        &self.reference_points[node]
    }

    /// Diagnostic: the node's current filter estimate and α-threshold
    /// (NaN for unsecured nodes).
    pub fn detector_state(&self, node: usize) -> (f64, f64) {
        match &self.participants[node] {
            Participant::Secured(s) => {
                let outlook = s.detector().prediction();
                (outlook.predicted, outlook.threshold)
            }
            Participant::Plain(_) => (f64::NAN, f64::NAN),
        }
    }

    /// Detection metrics accumulated so far, derived from the
    /// observability registry (the counters are the primary record;
    /// this assembles the serialized report shape from them).
    pub fn report(&self) -> DetectionReport {
        self.obs.detection_report()
    }

    /// Attach a run journal: every subsequent round emits a counter
    /// delta line, and discrete events (evictions, rejections, filter
    /// refreshes, deferred arms) are recorded as they happen. Journal
    /// emission reads the same registry the report is derived from, so
    /// simulation outputs are bit-identical with or without one.
    pub fn enable_journal(&mut self, journal: Journal) {
        let (nodes, seed) = (self.len(), self.config.seed);
        self.obs.enable_journal(journal, "nps", nodes, seed);
    }

    /// Emit the journal's `summary` line and detach it, returning the
    /// accumulated bytes for in-memory journals (`None` for file
    /// journals, whose bytes are flushed to disk).
    pub fn finish_journal(&mut self) -> Option<Vec<u8>> {
        self.obs.finish_journal()
    }

    /// Whether `node` is currently wrapped in the detection protocol.
    pub fn is_secured(&self, node: usize) -> bool {
        matches!(self.participants[node], Participant::Secured(_))
    }

    /// Nodes whose detection arming is still deferred (Surveyor outage
    /// at arm time and no live candidate since).
    pub fn pending_arms(&self) -> &BTreeSet<usize> {
        &self.pending_arms
    }

    /// A node's current coordinate.
    pub fn coordinate(&self, node: usize) -> &Coordinate {
        self.participants[node].coordinate()
    }

    /// The serving map the adversary observes: each landmark/reference
    /// point mapped to its own layer.
    pub fn serving_map(&self) -> BTreeMap<usize, usize> {
        (0..self.len())
            .filter(|&i| {
                matches!(
                    self.hierarchy.role[i],
                    Role::Landmark | Role::ReferencePoint
                )
            })
            .map(|i| (i, self.hierarchy.layer[i]))
            .collect()
    }

    /// Layer membership of non-serving (normal) nodes, as the adversary
    /// observes it.
    pub fn layer_members(&self) -> BTreeMap<usize, Vec<usize>> {
        let mut m: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for i in 0..self.len() {
            if self.hierarchy.role[i] == Role::Regular {
                m.entry(self.hierarchy.layer[i]).or_default().push(i);
            }
        }
        m
    }

    /// One positioning round for every member of one hierarchy layer,
    /// in two phases: snapshot the whole population, then let each
    /// member probe its reference points, reposition, and settle its
    /// round boundary — in parallel, each node mutating only itself.
    ///
    /// Members' reference points live in strictly lower layers, which no
    /// member of this layer mutates, so the snapshot is identical to the
    /// live state the old sequential sweep observed. The returned
    /// [`RoundEffect`]s merge in node order (traces, confusion counts,
    /// RP replacements — the latter drawing from the driver RNG in the
    /// same order as a sequential sweep).
    fn layer_round(
        &mut self,
        round: u64,
        members: &[usize],
        adversary: &dyn Adversary,
        collect: bool,
    ) {
        // SoA snapshot: flat buffers refilled in place — no per-node
        // allocation to photograph the population.
        {
            let snapshot = &mut self.snapshot;
            snapshot.fill(
                self.participants
                    .iter()
                    .map(|p| (p.coordinate(), p.local_error())),
            );
        }

        let network = &self.network;
        let reference_points = &self.reference_points;
        let registry = &self.registry;
        let snapshot = &self.snapshot;
        let faulty = !network.fault_plan().is_empty();
        let effects = ices_par::par_for_indices(&mut self.participants, members, |node, participant| {
            let mut effect = RoundEffect::default();
            if faulty && !network.node_up(node, round) {
                // Crashed for this epoch: the node skips its round and
                // rejoins warm (coordinate intact) when the epoch turns.
                effect.self_down = true;
                return effect;
            }
            for (k, &rp) in reference_points[node].iter().enumerate() {
                let rtt = if !faulty {
                    network.measure_rtt_smoothed(node, rp, probe_nonce(round, node, k))
                } else {
                    let mut measured = None;
                    if !network.node_up(rp, round) {
                        effect.failed_rps.push((rp, ProbeFate::PeerDown));
                    } else {
                        // Bounded deterministic backoff: immediate
                        // re-probes under fresh retry-stream nonces.
                        let mut fate = ProbeFate::Lost;
                        for attempt in 0..=PROBE_RETRIES {
                            match network.try_measure_rtt_smoothed(
                                node,
                                rp,
                                retry_nonce(round, node, k, attempt),
                                round,
                            ) {
                                ProbeOutcome::Ok(r) => {
                                    measured = Some(r);
                                    if attempt > 0 {
                                        effect.retried_probes += 1;
                                    }
                                    break;
                                }
                                ProbeOutcome::Lost => fate = ProbeFate::Lost,
                                ProbeOutcome::TimedOut => fate = ProbeFate::TimedOut,
                            }
                        }
                        match measured {
                            Some(_) => effect.ok_rps.push(rp),
                            None => effect.failed_rps.push((rp, fate)),
                        }
                    }
                    match measured {
                        Some(r) => r,
                        None => {
                            // Missing sample: a secured node's detector
                            // coasts so its innovation statistics widen
                            // honestly; positioning just sees one fewer
                            // reference point this round. The coast runs
                            // in the merge-phase batched sweep, holding
                            // its probe-order position.
                            if let Participant::Secured(_) = participant {
                                effect.pending.push((VetEvent::Missing, false));
                                effect.coasted_steps += 1;
                            }
                            continue;
                        }
                    }
                };
                // Materialize only the two coordinates this probe
                // touches; the honest path moves the RP coordinate into
                // the sample instead of cloning it a second time.
                let rp_coord = snapshot.coordinate(rp);
                let rp_error = snapshot.error(rp);
                let node_coord = snapshot.coordinate(node);
                let tampered =
                    adversary.intercept(rp, node, round, &rp_coord, rp_error, rtt, &node_coord);
                let label_malicious = tampered.is_some();
                let sample = match tampered {
                    Some(mut t) => {
                        effect.lied_steps += 1;
                        // Intake invariant: tampered RTTs may be delayed
                        // but never deflated below the measurement.
                        if t.clamp_rtt(rtt) {
                            effect.clamped_rtts += 1;
                        }
                        debug_assert!(
                            t.rtt_ms >= rtt,
                            "intake clamp must enforce rtt_ms >= measured rtt"
                        );
                        PeerSample {
                            peer: rp,
                            peer_coord: t.coord,
                            peer_error: t.error,
                            rtt_ms: t.rtt_ms,
                        }
                    }
                    None => PeerSample {
                        peer: rp,
                        peer_coord: rp_coord,
                        peer_error: rp_error,
                        rtt_ms: rtt,
                    },
                };
                match participant {
                    Participant::Plain(n) => {
                        let out = n.apply_step(&sample);
                        effect.recorded.push(out.relative_error);
                    }
                    Participant::Secured(_) => {
                        // Defer the innovation test (and the buffer-on-
                        // accept) to the merge phase: the whole layer's
                        // samples are classified in one DetectorBank
                        // sweep, column by column, which replays this
                        // node's probe-order op sequence exactly.
                        effect.pending.push((VetEvent::Sample(sample), label_malicious));
                    }
                }
            }
            // Reposition from whatever was accepted. Secured nodes defer
            // their round boundary too — their accepted steps have not
            // been applied yet.
            if let Participant::Plain(n) = participant {
                n.finish_round();
            }
            effect
        });

        // Batched detection sweep: replay every deferred detector event
        // through one DetectorBank pass, bit-identical to the scalar
        // per-node calls it replaces (asserted by
        // `ices_core::protocol`'s equivalence suite). Results are
        // written back into each member's RoundEffect before the
        // ordinary merge loop below consumes them.
        let mut effects = effects;
        {
            let mut vet_nodes = Vec::new();
            let mut vet_slots = Vec::new();
            let mut node_events = Vec::new();
            let mut node_labels = Vec::new();
            for (slot, (&node, effect)) in members.iter().zip(effects.iter_mut()).enumerate() {
                if effect.pending.is_empty() {
                    continue;
                }
                let (events, labels): (Vec<VetEvent>, Vec<bool>) =
                    effect.pending.drain(..).unzip();
                vet_nodes.push(node);
                vet_slots.push(slot);
                node_events.push(events);
                node_labels.push(labels);
            }
            if !vet_nodes.is_empty() {
                let mut secured: Vec<&mut SecureNode<NpsNode>> =
                    ices_par::select_disjoint_mut(&mut self.participants, &vet_nodes)
                        .into_iter()
                        .map(|p| match p {
                            Participant::Secured(s) => &mut **s,
                            Participant::Plain(_) => {
                                panic!("only secured nodes defer detector work")
                            }
                        })
                        .collect();
                let all_steps = vet_sequences(&mut self.bank, &mut secured, &node_events);
                for (i, steps) in all_steps.into_iter().enumerate() {
                    let effect = &mut effects[vet_slots[i]];
                    for (k, step) in steps.into_iter().enumerate() {
                        let Some(step) = step else { continue };
                        effect.vetted.push((node_labels[i][k], !step.accepted()));
                        match &step {
                            SecureStep::Accepted { outcome, .. } => {
                                effect.recorded.push(outcome.relative_error);
                            }
                            SecureStep::Reprieved { .. } => {
                                effect.reprieves += 1;
                            }
                            SecureStep::Rejected { .. } => {
                                if let VetEvent::Sample(sample) = &node_events[i][k] {
                                    effect.rejected_rps.push(sample.peer);
                                }
                            }
                        }
                    }
                }
            }
        }

        // Deferred round boundary for secured members, now that the
        // batched sweep has applied their accepted steps: reposition,
        // settle the detector round, and refresh starved filters.
        {
            let mut finish_nodes = Vec::new();
            let mut finish_slots = Vec::new();
            for (slot, (&node, effect)) in members.iter().zip(effects.iter()).enumerate() {
                if effect.self_down {
                    continue;
                }
                if matches!(self.participants[node], Participant::Secured(_)) {
                    finish_nodes.push(node);
                    finish_slots.push(slot);
                }
            }
            if !finish_nodes.is_empty() {
                let boundary = ices_par::par_for_indices(
                    &mut self.participants,
                    &finish_nodes,
                    |_, participant| {
                        let Participant::Secured(s) = participant else {
                            panic!("only secured nodes reach the deferred round boundary")
                        };
                        s.inner_mut().finish_round();
                        let coord = s.inner().coordinate().clone();
                        let mut refreshed = false;
                        let mut stale = false;
                        if s.end_round() == ices_core::protocol::RoundAction::RefreshFilter {
                            // Only Surveyors that are up right now
                            // qualify; with every Surveyor down the node
                            // keeps its stale-but-bounded calibration.
                            // (On a clean network `node_up` is always
                            // true, so this is exactly the unconditional
                            // lookup.)
                            match registry.closest_available_by_coordinate(&coord, |info| {
                                network.node_up(info.id, round)
                            }) {
                                Some(info) => {
                                    let (params, id) = (info.params, info.id);
                                    s.refresh_filter(params, id);
                                    refreshed = true;
                                }
                                None => {
                                    stale = true;
                                }
                            }
                        }
                        (refreshed, stale)
                    },
                );
                for (i, (refreshed, stale)) in boundary.into_iter().enumerate() {
                    let effect = &mut effects[finish_slots[i]];
                    effect.refreshed_filter = refreshed;
                    effect.stale_fallback = stale;
                }
            }
        }

        let journaled = self.obs.journal_enabled();
        for (&node, effect) in members.iter().zip(effects) {
            // Completed probes: every vetted verdict for a secured node,
            // every recorded sample for a plain one (plain nodes have no
            // verdicts; secured nodes record only accepted steps).
            let ok = if effect.vetted.is_empty() {
                effect.recorded.len()
            } else {
                effect.vetted.len()
            };
            self.obs.probes_ok(ok as u64);
            for (label_malicious, flagged) in effect.vetted {
                self.obs.record_confusion(label_malicious, flagged);
            }
            self.obs.reprieves(effect.reprieves);
            for d in effect.recorded {
                if journaled {
                    self.obs.observe_relative_error(d);
                }
                if collect {
                    self.traces[node].push(d);
                }
            }
            for rp in effect.rejected_rps {
                self.replace_reference_point(node, rp);
                self.obs.replacement(node, rp);
            }
            if effect.refreshed_filter {
                self.obs.filter_refresh(node);
            }
            // Fault bookkeeping (all branches dead on a clean network).
            if effect.self_down {
                self.obs.node_down_tick();
            }
            self.obs.retried_probes(effect.retried_probes);
            self.obs.coasted_steps(effect.coasted_steps);
            if effect.lied_steps > 0 {
                self.obs.active_lies(effect.lied_steps);
            }
            if effect.clamped_rtts > 0 {
                self.obs.clamped_rtts(effect.clamped_rtts);
            }
            if effect.stale_fallback {
                self.obs.stale_filter_fallback(node);
            }
            for rp in effect.ok_rps {
                self.probe_failures[node].remove(&rp);
            }
            for (rp, fate) in effect.failed_rps {
                match fate {
                    ProbeFate::Lost => self.obs.lost_probe(),
                    ProbeFate::TimedOut => self.obs.timed_out_probe(),
                    ProbeFate::PeerDown => self.obs.peer_down_probe(),
                }
                let failures = self.probe_failures[node].entry(rp).or_insert(0);
                *failures += 1;
                if *failures >= DEAD_RP_EVICT_FAILURES {
                    self.probe_failures[node].remove(&rp);
                    self.evict_dead_reference_point(node, rp);
                }
            }
        }
        // Slow-drift displacement gauge: set only when the adversary
        // actually drifts, so honest-run journals stay byte-identical.
        let drift = adversary.drift_accumulated_ms(round);
        if drift > 0.0 {
            self.obs.set_drift_ms(drift);
        }
    }

    /// Evict a reference point that failed [`DEAD_RP_EVICT_FAILURES`]
    /// consecutive probes. Surveyors must keep positioning against
    /// trusted nodes only, so their replacement pool is restricted to
    /// Surveyors of the layer above (falling back to landmarks); normal
    /// nodes use the ordinary same-layer replacement path.
    fn evict_dead_reference_point(&mut self, node: usize, dead: usize) {
        self.obs.eviction(node);
        if !self.surveyors.contains(&node) && !self.config.embed_against_surveyors_only {
            self.replace_reference_point(node, dead);
            return;
        }
        let above = self.hierarchy.layer[node].wrapping_sub(1);
        let current: BTreeSet<usize> = self.reference_points[node].iter().copied().collect();
        let pool: Vec<usize> = (0..self.len())
            .filter(|&i| {
                self.surveyors.contains(&i)
                    && (self.hierarchy.layer[i] == above
                        || self.hierarchy.role[i] == Role::Landmark)
                    && !current.contains(&i)
                    && i != node
            })
            .collect();
        if pool.is_empty() {
            return; // No fresh trusted node available: keep the dead RP.
        }
        let candidate = pool[self.rng.random_range(0..pool.len())];
        if let Some(slot) = self.reference_points[node].iter_mut().find(|p| **p == dead) {
            *slot = candidate;
        }
    }

    /// Swap a rejected reference point for another serving node of the
    /// same layer (or keep it if none is available).
    fn replace_reference_point(&mut self, node: usize, rejected: usize) {
        let above = self.hierarchy.layer[node].wrapping_sub(1);
        let current: BTreeSet<usize> = self.reference_points[node].iter().copied().collect();
        let candidates: Vec<usize> = (0..self.len())
            .filter(|&i| {
                self.hierarchy.layer[i] == above
                    && matches!(
                        self.hierarchy.role[i],
                        Role::Landmark | Role::ReferencePoint
                    )
                    && !current.contains(&i)
                    && i != node
            })
            .collect();
        if candidates.is_empty() {
            return;
        }
        let replacement = candidates[self.rng.random_range(0..candidates.len())];
        if let Some(slot) = self.reference_points[node]
            .iter_mut()
            .find(|p| **p == rejected)
        {
            *slot = replacement;
        }
    }

    /// Run `rounds` full positioning rounds: landmarks first, then each
    /// layer in order (so reference points are positioned before the
    /// nodes that depend on them). Within a layer, members run as one
    /// two-phase [`layer_round`](Self::layer_round); the worker count
    /// comes from `ICES_THREADS` / [`ices_par::max_threads`] and never
    /// changes the result.
    pub fn run(&mut self, rounds: usize, adversary: &dyn Adversary, collect: bool) {
        // Layer groups, ascending; ids ascending within each layer.
        let max_layer = self.hierarchy.layer.iter().copied().max().unwrap_or(0);
        let layers: Vec<Vec<usize>> = (0..=max_layer)
            .map(|l| {
                (0..self.len())
                    .filter(|&i| self.hierarchy.layer[i] == l)
                    .collect()
            })
            .collect();
        let start = self.round;
        for _ in 0..rounds {
            let round = self.round;
            self.round += 1;
            self.obs.begin_tick(round);
            // Nodes whose arming was deferred by a Surveyor outage retry
            // before the round proper (no-op — and no RNG draw — unless
            // a deferral actually happened).
            self.retry_pending_arms();
            for members in &layers {
                if !members.is_empty() {
                    self.layer_round(round, members, adversary, collect);
                }
            }
            self.refresh_registry_coordinates();
            if self.obs.journal_enabled() {
                // Journal-only gauge: mean node-local embedding error.
                let n = self.participants.len().max(1) as f64;
                let sum: f64 = self.participants.iter().map(Participant::local_error).sum();
                self.obs.set_mean_local_error(sum / n);
            }
            self.obs.tick_boundary(round);
        }
        self.obs.phase("run", self.round - start);
    }

    /// Run attack-free rounds, collecting traces.
    pub fn run_clean(&mut self, rounds: usize) {
        self.run(rounds, &ices_attack::HonestWorld, true);
    }

    fn refresh_registry_coordinates(&mut self) {
        let updates: Vec<SurveyorInfo> = self
            .registry
            .all()
            .iter()
            .map(|s| SurveyorInfo {
                id: s.id,
                coordinate: self.participants[s.id].coordinate().clone(),
                params: s.params,
            })
            .collect();
        for info in updates {
            self.registry.register(info);
        }
    }

    /// Reset every node's positioning state (the §3.2 "forget and
    /// rejoin" protocol). Traces and calibration are kept.
    pub fn forget_coordinates(&mut self) {
        for p in &mut self.participants {
            match p {
                Participant::Plain(n) => n.reset(),
                Participant::Secured(s) => s.inner_mut().reset(),
            }
        }
    }

    /// EM-calibrate *every* node on its own trace (for the §3.2
    /// validation experiments). Returns outcomes indexed by node.
    pub fn calibrate_all_traces(&self, em: &EmConfig) -> Vec<ices_core::CalibrationOutcome> {
        self.traces
            .iter()
            .map(|t| calibrate(t, StateSpaceParams::em_initial_guess(), em))
            .collect()
    }

    /// EM-calibrate every Surveyor and publish to the registry.
    pub fn calibrate_surveyors(&mut self, em: &EmConfig) {
        let ids: Vec<usize> = self.surveyors.iter().copied().collect();
        for id in ids {
            let outcome = calibrate(&self.traces[id], StateSpaceParams::em_initial_guess(), em);
            self.registry.register(SurveyorInfo {
                id,
                coordinate: self.participants[id].coordinate().clone(),
                params: outcome.params,
            });
        }
        self.obs.phase("calibrate", 0);
    }

    /// Arm detection on every honest non-Surveyor node (closest-of-k
    /// random Surveyor join, as in §4.2). No-op when the scenario
    /// disables detection.
    ///
    /// # Panics
    /// Panics if the registry is empty.
    pub fn arm_detection(&mut self) {
        if !self.config.detection {
            return;
        }
        assert!(
            !self.registry.is_empty(),
            "calibrate Surveyors before arming detection"
        );
        for node in self.normal_nodes() {
            if !self.try_arm_node(node) {
                // Total Surveyor outage at arm time: defer this node's
                // arming to the next round rather than indexing an
                // empty candidate draw.
                self.pending_arms.insert(node);
                self.obs.defer_arm(node);
            }
        }
        self.obs.phase("arm", 0);
    }

    /// Retry every deferred arm. Nodes that secure now count as late
    /// arms; the rest stay pending, each failed retry counting as
    /// another deferral. No-op (and no RNG draw) when nothing is
    /// pending, so runs without deferrals are bit-identical to the
    /// pre-deferral behavior.
    fn retry_pending_arms(&mut self) {
        if self.pending_arms.is_empty() {
            return;
        }
        let pending: Vec<usize> = self.pending_arms.iter().copied().collect();
        for node in pending {
            if self.try_arm_node(node) {
                self.pending_arms.remove(&node);
                self.obs.late_arm(node);
            } else {
                self.obs.defer_arm(node);
            }
        }
    }

    /// Arm one node: sample Surveyor candidates, probe them, adopt the
    /// closest live one's filter (§4.2 join), and wrap the node in a
    /// [`SecureNode`]. Returns `false` — deferring the arm — when the
    /// candidate draw has no live Surveyor at all (total outage).
    fn try_arm_node(&mut self, node: usize) -> bool {
        let faulty = !self.network.fault_plan().is_empty();
        let round = self.round;
        let mut candidates = self.registry.sample(JOIN_PROBE_CANDIDATES, &mut self.rng);
        if faulty {
            // Crashed Surveyors drop out of the candidate race before
            // anything is probed; on a clean network every node is up,
            // so this retain is a no-op and candidate indices (and
            // their join nonces) are unchanged from seed behavior.
            candidates.retain(|s| self.network.node_up(s.id, round));
        }
        if candidates.is_empty() {
            return false;
        }
        let mut best: Option<(usize, f64)> = None;
        for (k, s) in candidates.iter().enumerate() {
            // Join probes draw nonces from their own stream, keyed by
            // (node, candidate index) — disjoint from the positioning
            // rounds' probe nonces.
            let nonce = derive2(streams::NPSJ, node as u64, k as u64);
            if !faulty {
                let rtt = self.network.measure_rtt_smoothed(node, s.id, nonce);
                if best.map(|(_, d)| rtt < d).unwrap_or(true) {
                    best = Some((k, rtt));
                }
            } else {
                match self.network.try_measure_rtt_smoothed(node, s.id, nonce, round) {
                    ProbeOutcome::Ok(rtt) => {
                        if best.map(|(_, d)| rtt < d).unwrap_or(true) {
                            best = Some((k, rtt));
                        }
                    }
                    ProbeOutcome::Lost | ProbeOutcome::TimedOut => {}
                }
            }
        }
        // Every probe lost (heavy loss against live Surveyors): fall
        // back to the first live candidate rather than refusing to arm
        // — a stale choice beats no detector. The guard above makes the
        // index safe: `candidates` is non-empty here by construction.
        let chosen = best
            .map(|(k, _)| &candidates[k])
            // audit:allow(PANIC02): non-empty guard above (see comment)
            .unwrap_or_else(|| &candidates[0]);
        let source = chosen.id;
        let params = chosen.params;
        let placeholder = Participant::Plain(NpsNode::new(node, self.nps, 0));
        let old = std::mem::replace(&mut self.participants[node], placeholder);
        let inner = match old {
            Participant::Plain(v) => v,
            Participant::Secured(_) => panic!("node {node} already secured"),
        };
        let mut secured = SecureNode::new(inner, params, source, self.security);
        // Prime the filter with the node's recent clean history so a
        // converged node is not mistaken for a freshly joining one.
        let trace = &self.traces[node];
        let tail = &trace[trace.len().saturating_sub(PRIME_SAMPLES)..];
        secured.prime(tail);
        self.participants[node] = Participant::Secured(Box::new(secured));
        true
    }

    /// System-accuracy report over honest normal nodes (Fig 15's CDF).
    pub fn accuracy_report(&mut self, pairs_per_node: usize) -> AccuracyReport {
        let nodes = self.normal_nodes();
        let mut all = Vec::new();
        let mut p95 = Vec::new();
        for &node in &nodes {
            let mut errors = Vec::with_capacity(pairs_per_node);
            for _ in 0..pairs_per_node {
                let other = nodes[self.rng.random_range(0..nodes.len())];
                if other == node {
                    continue;
                }
                let est = self.participants[node]
                    .coordinate()
                    .distance(self.participants[other].coordinate());
                let truth = self.network.base_rtt(node, other);
                errors.push((est - truth).abs() / truth);
            }
            if errors.is_empty() {
                continue;
            }
            all.extend_from_slice(&errors);
            p95.push(ices_stats::ecdf::percentile(&errors, 95.0));
        }
        AccuracyReport {
            relative_errors: all,
            p95_per_node: p95,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::SurveyorPlacement;
    use ices_attack::NpsCollusionAttack;
    use ices_coord::Space;

    fn small_nps() -> NpsConfig {
        NpsConfig {
            space: Space::euclidean(2),
            landmarks: 8,
            rps_per_node: 8,
            min_rps: 4,
            solver_max_iter: 200,
            ..NpsConfig::paper_default()
        }
    }

    fn scenario(seed: u64, nodes: usize) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            topology: TopologyKind::small_king(nodes),
            surveyors: SurveyorPlacement::Random { fraction: 0.15 },
            malicious_fraction: 0.25,
            alpha: 0.05,
            detection: true,
            clean_cycles: 4,
            attack_cycles: 3,
            embed_against_surveyors_only: false,
        }
    }

    fn build(seed: u64) -> NpsSimulation {
        NpsSimulation::with_nps_config(scenario(seed, 80), small_nps())
    }

    #[test]
    fn construction_partitions_population() {
        let sim = build(1);
        assert_eq!(sim.len(), 80);
        // All landmarks are surveyors.
        for l in sim.hierarchy().landmarks() {
            assert!(sim.surveyors().contains(&l));
        }
        for m in sim.malicious() {
            assert!(!sim.surveyors().contains(m));
        }
    }

    #[test]
    fn surveyor_rps_are_trusted() {
        let sim = build(2);
        for &s in sim.surveyors() {
            for &rp in &sim.reference_points[s] {
                assert!(
                    sim.surveyors().contains(&rp),
                    "surveyor {s} positions against untrusted {rp}"
                );
            }
        }
    }

    #[test]
    fn clean_run_converges() {
        let mut sim = build(3);
        sim.run_clean(6);
        let report = sim.accuracy_report(20);
        assert!(
            report.median() < 0.3,
            "median accuracy after clean NPS run: {}",
            report.median()
        );
    }

    #[test]
    fn traces_accumulate_per_round() {
        let mut sim = build(4);
        sim.run_clean(2);
        for node in 0..sim.len() {
            assert_eq!(
                sim.traces()[node].len(),
                sim.reference_points[node].len() * 2,
                "node {node}"
            );
        }
    }

    #[test]
    fn calibrate_and_arm() {
        let mut sim = build(5);
        sim.run_clean(4);
        sim.calibrate_surveyors(&EmConfig::default());
        assert_eq!(sim.registry().len(), sim.surveyors().len());
        sim.arm_detection();
        for node in sim.normal_nodes() {
            assert!(matches!(sim.participants[node], Participant::Secured(_)));
        }
    }

    #[test]
    fn collusion_attack_is_mostly_detected() {
        let mut sim = build(6);
        sim.run_clean(5);
        sim.calibrate_surveyors(&EmConfig::default());
        sim.arm_detection();
        let mut attack = NpsCollusionAttack::new(
            sim.malicious().iter().copied(),
            2,   // dims of the test space
            3.0, // drag strength
            0.5,
            9,
        );
        attack.observe_hierarchy(&sim.serving_map(), &sim.layer_members());
        sim.run(3, &attack, false);
        let c = &sim.report().confusion;
        if attack.is_active() && c.positives() > 0 {
            assert!(
                c.tpr() > 0.5,
                "consistent-lie collusion should still be caught: tpr = {}",
                c.tpr()
            );
        }
        // Whether or not the conspiracy activated, honest steps must flow.
        assert!(c.negatives() > 0);
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let mut sim = build(7);
            sim.run_clean(3);
            sim.accuracy_report(10).median()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let clean = || {
            let mut sim = build(8);
            sim.run_clean(3);
            sim.accuracy_report(10).median()
        };
        let explicit_empty = || {
            let mut sim = build(8);
            sim.set_fault_plan(FaultPlan::none());
            sim.run_clean(3);
            sim.accuracy_report(10).median()
        };
        assert_eq!(clean(), explicit_empty());
    }

    #[test]
    fn lossy_network_still_converges_and_counts_faults() {
        let mut sim = build(9);
        sim.set_fault_plan(FaultPlan::lossy(0.1, 0.05));
        sim.run_clean(6);
        let faults = &sim.report().faults;
        assert!(faults.retried_probes > 0, "retries should fire at 15% failure");
        assert!(
            faults.lost_probes + faults.timed_out_probes > 0,
            "some probes should fail terminally"
        );
        let report = sim.accuracy_report(20);
        assert!(
            report.median() < 0.35,
            "NPS should still converge under 15% probe failure, median {}",
            report.median()
        );
    }

    #[test]
    fn churn_crashes_nodes_and_coasts_detectors() {
        use ices_netsim::ChurnModel;
        let mut sim = build(10);
        sim.run_clean(4);
        sim.calibrate_surveyors(&EmConfig::default());
        sim.arm_detection();
        sim.set_fault_plan(FaultPlan::lossy(0.15, 0.05).with_churn(ChurnModel::new(2, 0.2)));
        sim.run(4, &ices_attack::HonestWorld, false);
        let faults = &sim.report().faults;
        assert!(faults.node_down_ticks > 0, "churn should crash some nodes");
        assert!(faults.peer_down_probes > 0, "probes should hit crashed RPs");
        assert!(
            faults.coasted_steps > 0,
            "secured nodes should coast over missing samples"
        );
    }

    #[test]
    fn dead_reference_points_are_evicted() {
        use ices_netsim::ChurnModel;
        // Fewer RPs per node than the layers serve, so dependents have a
        // spare serving node to evict toward.
        let nps = NpsConfig {
            rps_per_node: 4,
            min_rps: 3,
            ..small_nps()
        };
        let mut sim = NpsSimulation::with_nps_config(scenario(11, 80), nps);
        // Pick a serving reference point that is not a landmark and
        // crash it forever: its dependents must evict it.
        let victim = (0..sim.len())
            .find(|&i| sim.hierarchy().role[i] == Role::ReferencePoint)
            .expect("hierarchy has reference points");
        let dependents_before = (0..sim.len())
            .filter(|&n| n != victim && sim.reference_points_of(n).contains(&victim))
            .count();
        assert!(dependents_before > 0, "victim must serve someone");
        sim.set_fault_plan(
            FaultPlan::none().with_node_churn(victim, ChurnModel::new(u64::MAX, 0.999_999)),
        );
        sim.run_clean(6);
        assert!(
            sim.report().faults.evictions > 0,
            "a permanently dead reference point should get evicted"
        );
        // Some dependents may have no spare serving node in the layer
        // above (tiny hierarchy) and keep the dead RP, but everyone with
        // a choice must have moved off it.
        let dependents_after = (0..sim.len())
            .filter(|&n| n != victim && sim.reference_points_of(n).contains(&victim))
            .count();
        assert!(
            dependents_after < dependents_before,
            "eviction should strictly shrink the dead RP's dependents \
             ({dependents_before} -> {dependents_after})"
        );
    }

    #[test]
    fn surveyor_evictions_stay_trusted() {
        use ices_netsim::ChurnModel;
        let mut sim = build(12);
        // Crash one of a Surveyor's trusted reference points.
        let (surveyor, victim) = sim
            .surveyors()
            .iter()
            .find_map(|&s| {
                sim.reference_points_of(s)
                    .iter()
                    .find(|&&rp| sim.hierarchy().role[rp] != Role::Landmark)
                    .map(|&rp| (s, rp))
            })
            .expect("some surveyor has a non-landmark trusted RP");
        let _ = surveyor;
        sim.set_fault_plan(
            FaultPlan::none().with_node_churn(victim, ChurnModel::new(u64::MAX, 0.999_999)),
        );
        sim.run_clean(6);
        // Whatever replacements happened, every Surveyor's RP set must
        // still be trusted-only.
        for &s in sim.surveyors() {
            for &rp in sim.reference_points_of(s) {
                assert!(
                    sim.surveyors().contains(&rp),
                    "surveyor {s} now positions against untrusted {rp}"
                );
            }
        }
    }
}
