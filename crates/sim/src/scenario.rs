//! Scenario configuration shared by the drivers.

use ices_netsim::{KingConfig, PlanetLabConfig};
use serde::{Deserialize, Serialize};

/// Which synthetic substrate to run on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// King-like simulation topology (clean measurement noise), with the
    /// full O(n²) base-RTT matrix materialized.
    King(KingConfig),
    /// The same King model served **streamed**: no matrix is built, every
    /// pair is recomputed on demand from `(seed, min(a,b), max(a,b))`
    /// hashes — bit-identical RTTs to [`TopologyKind::King`] for the same
    /// config/seed in O(n) memory, which is what makes 50k–1M-node
    /// populations constructible.
    StreamedKing(KingConfig),
    /// PlanetLab-like deployment (noisy hosts, pathological nodes).
    PlanetLab(PlanetLabConfig),
}

impl TopologyKind {
    /// Paper-scale King simulation (1740 nodes).
    pub fn king_paper() -> Self {
        Self::King(KingConfig::paper_scale())
    }

    /// Paper-scale PlanetLab deployment (280 nodes).
    pub fn planetlab_paper() -> Self {
        Self::PlanetLab(PlanetLabConfig::paper_scale())
    }

    /// A small topology of either flavor for tests.
    pub fn small_king(nodes: usize) -> Self {
        Self::King(KingConfig::small(nodes))
    }

    /// A streamed King topology of any size (paper structure, O(n)
    /// memory).
    pub fn streamed_king(nodes: usize) -> Self {
        Self::StreamedKing(KingConfig::small(nodes))
    }

    /// A small PlanetLab-like deployment for tests.
    pub fn small_planetlab(nodes: usize) -> Self {
        Self::PlanetLab(PlanetLabConfig::small(nodes))
    }

    /// Node count.
    pub fn nodes(&self) -> usize {
        match self {
            TopologyKind::King(c) | TopologyKind::StreamedKing(c) => c.nodes,
            TopologyKind::PlanetLab(c) => c.nodes,
        }
    }
}

/// How Surveyors are deployed (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SurveyorPlacement {
    /// Chosen uniformly at random — the paper's default, an upper bound
    /// on the population needed.
    Random {
        /// Fraction of the overall population (the paper: 8%).
        fraction: f64,
    },
    /// k-means cluster heads over the latent delay space — the paper's
    /// strategic deployment, representative with ~1%.
    KMeansHeads {
        /// Fraction of the overall population (the paper: 1%).
        fraction: f64,
    },
}

impl SurveyorPlacement {
    /// The fraction of nodes this placement consumes.
    pub fn fraction(&self) -> f64 {
        match self {
            SurveyorPlacement::Random { fraction }
            | SurveyorPlacement::KMeansHeads { fraction } => *fraction,
        }
    }

    /// Validate.
    ///
    /// # Panics
    /// Panics if the fraction is outside `(0, 0.5]`.
    pub fn validate(&self) {
        let f = self.fraction();
        assert!(
            f > 0.0 && f <= 0.5,
            "surveyor fraction must be in (0, 0.5], got {f}"
        );
    }
}

/// A complete scenario description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Master seed driving every random stream of the run.
    pub seed: u64,
    /// The substrate.
    pub topology: TopologyKind,
    /// Surveyor deployment.
    pub surveyors: SurveyorPlacement,
    /// Fraction of (non-Surveyor) nodes under adversary control.
    pub malicious_fraction: f64,
    /// Significance level α of the detection test.
    pub alpha: f64,
    /// Whether the detection protocol is armed (off = the paper's
    /// "detection off" baselines).
    pub detection: bool,
    /// Clean-phase embedding cycles (one cycle = every node visits each
    /// of its peers once).
    pub clean_cycles: usize,
    /// Attack/measurement-phase cycles.
    pub attack_cycles: usize,
    /// The §6 "dedicated Surveyors for embedding" variant: normal nodes
    /// choose *only Surveyors* as neighbors/reference points, trading
    /// embedding accuracy for immunity.
    pub embed_against_surveyors_only: bool,
}

impl ScenarioConfig {
    /// A small, fast scenario for tests.
    pub fn test_default(seed: u64) -> Self {
        Self {
            seed,
            topology: TopologyKind::small_planetlab(60),
            surveyors: SurveyorPlacement::Random { fraction: 0.1 },
            malicious_fraction: 0.2,
            alpha: 0.05,
            detection: true,
            clean_cycles: 8,
            attack_cycles: 4,
            embed_against_surveyors_only: false,
        }
    }

    /// Validate cross-field invariants.
    ///
    /// # Panics
    /// Panics on out-of-range fractions or a zero-length clean phase.
    pub fn validate(&self) {
        self.surveyors.validate();
        assert!(
            (0.0..1.0).contains(&self.malicious_fraction),
            "malicious fraction must be in [0, 1), got {}",
            self.malicious_fraction
        );
        assert!(
            self.alpha > 0.0 && self.alpha < 1.0,
            "alpha must be in (0, 1), got {}",
            self.alpha
        );
        assert!(self.clean_cycles > 0, "need a clean phase to calibrate in");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topologies_have_paper_sizes() {
        assert_eq!(TopologyKind::king_paper().nodes(), 1740);
        assert_eq!(TopologyKind::planetlab_paper().nodes(), 280);
    }

    #[test]
    fn test_default_validates() {
        ScenarioConfig::test_default(1).validate();
    }

    #[test]
    #[should_panic(expected = "surveyor fraction")]
    fn rejects_zero_surveyors() {
        SurveyorPlacement::Random { fraction: 0.0 }.validate();
    }

    #[test]
    #[should_panic(expected = "malicious fraction")]
    fn rejects_full_malice() {
        let mut c = ScenarioConfig::test_default(1);
        c.malicious_fraction = 1.0;
        c.validate();
    }

    #[test]
    fn serde_roundtrip() {
        let c = ScenarioConfig::test_default(4);
        let json = serde_json::to_string(&c).expect("serialize");
        let back: ScenarioConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(c, back);
    }
}
